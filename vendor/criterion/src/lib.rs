//! Offline mini bench harness with a criterion-compatible API.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small slice of the `criterion` API the workspace's benches use
//! (`Criterion`, benchmark groups, `BenchmarkId`, `Bencher::iter`, the
//! `criterion_group!`/`criterion_main!` macros) on top of `std::time`. It is
//! a real harness — every `iter` closure is warmed up and timed — just
//! without criterion's statistics machinery. Swapping in the real criterion
//! later requires no changes to the bench sources.

use std::hint::black_box as bb;
use std::time::{Duration, Instant};

/// Minimum measured wall-clock time per benchmark before reporting.
const TARGET_TIME: Duration = Duration::from_millis(200);
/// Number of warm-up iterations before measurement starts.
const WARMUP_ITERS: u64 = 3;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(value: T) -> T {
    bb(value)
}

/// Timing state handed to `iter` closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            sample_size,
        }
    }

    /// Run `f` repeatedly, recording one timing sample per invocation.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            bb(f());
        }
        let started = Instant::now();
        loop {
            let t0 = Instant::now();
            bb(f());
            self.samples.push(t0.elapsed());
            if self.samples.len() >= self.sample_size && started.elapsed() >= TARGET_TIME {
                break;
            }
            if self.samples.len() >= 4 * self.sample_size {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{name:<48} mean {:>12} min {:>12} ({} samples)",
            format_duration(mean),
            format_duration(min),
            self.samples.len()
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Identifier combining a function name and a parameter, as in criterion.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("sort", 1024)` renders as `sort/1024`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group of benchmarks sharing a sample-size configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the target number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Benchmark a closure that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// End the group (prints nothing extra; exists for API compatibility).
    pub fn finish(self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// A fresh harness.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Open a benchmark group with the default sample size.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmark a closure at the top level.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(20);
        f(&mut b);
        b.report(name);
        self
    }
}

/// Define a bench group function calling each target with a shared harness.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::new();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
