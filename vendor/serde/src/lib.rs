//! Offline stub of the `serde` facade.
//!
//! Re-exports the no-op derive macros from the stub `serde_derive` so that
//! `use serde::{Deserialize, Serialize};` plus `#[derive(...)]` compile
//! without network access. See `vendor/serde_derive` for the rationale.

pub use serde_derive::{Deserialize, Serialize};
