//! Offline stub of `serde_derive`.
//!
//! The build environment has no access to crates.io, and nothing in this
//! workspace actually serialises data yet — the `#[derive(Serialize,
//! Deserialize)]` attributes throughout the codebase only reserve the door
//! for a future wire format. These derive macros therefore expand to nothing;
//! swapping in the real `serde`/`serde_derive` later requires no source
//! changes outside `vendor/`.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
