//! Offline deterministic property-testing shim with a proptest-compatible
//! API.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the slice of `proptest` the workspace's tests use: the `proptest!` macro
//! with `name in strategy` bindings, `prop_assert!`/`prop_assert_eq!`, range
//! strategies over the integer types, tuple strategies,
//! `collection::vec`, the combinators [`Strategy::prop_map`],
//! [`Strategy::prop_filter`] and [`Strategy::prop_flat_map`], `Just`, and a
//! bounded **shrinking** pass that reports a minimal failing input together
//! with the deterministic case number. Sampling is driven by a fixed-seed
//! xorshift generator, so every run explores the same cases — which doubles
//! as a determinism guarantee for the exact-arithmetic tests. Swapping in the
//! real proptest later requires no changes to the test sources.

/// Number of cases each property runs.
pub const CASES: u64 = 256;

/// Upper bound on the number of shrink attempts after a failure; shrinking is
/// best-effort, the original failing input is reported either way.
const MAX_SHRINK_STEPS: usize = 1024;

/// Bound on rejection-sampling attempts inside [`Strategy::prop_filter`].
const MAX_FILTER_ATTEMPTS: usize = 10_000;

/// A source of sampled values: the shim's stand-in for proptest strategies.
pub trait Strategy {
    /// The type of the sampled values.
    type Value;

    /// Draw one value using the given RNG state.
    fn sample(&self, rng: &mut u64) -> Self::Value;

    /// Propose strictly "smaller" candidate values derived from a failing
    /// `value`. The default proposes nothing (no shrinking); range, tuple,
    /// vector and filter strategies override it. Candidates need not fail —
    /// the runner re-executes the property on each.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Map sampled values through `f` (mirrors `proptest`'s `prop_map`).
    /// Mapped strategies do not shrink: the mapping is not invertible.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`, by bounded rejection sampling
    /// (mirrors `prop_filter`). `reason` is reported if the filter rejects
    /// too many samples in a row. Shrink candidates of the inner strategy are
    /// re-checked against the predicate.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Derive a second strategy from each sampled value and sample from it
    /// (mirrors `prop_flat_map`). Flat-mapped strategies do not shrink.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// A strategy that always yields a fixed value (mirrors `proptest`'s `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut u64) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut u64) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut u64) -> S::Value {
        for _ in 0..MAX_FILTER_ATTEMPTS {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected {MAX_FILTER_ATTEMPTS} consecutive samples",
            self.reason
        );
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        self.inner
            .shrink(value)
            .into_iter()
            .filter(|v| (self.pred)(v))
            .collect()
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut u64) -> S2::Value {
        let first = self.inner.sample(rng);
        (self.f)(first).sample(rng)
    }
}

/// Advance the xorshift state and return the raw 64-bit output.
pub fn next_u64(rng: &mut u64) -> u64 {
    let mut x = *rng;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *rng = x;
    x
}

/// Integer shrink candidates: the range minimum, the midpoint towards it and
/// the predecessor — ordered most-aggressive first so greedy shrinking
/// converges in O(log) accepted steps. A macro (not a generic fn) so it works
/// for every integer type without `From<u8>` bounds.
macro_rules! shrink_towards {
    ($start:expr, $value:expr) => {{
        let (start, value) = ($start, $value);
        if value <= start {
            Vec::new()
        } else {
            let mid = start + (value - start) / 2;
            let mut out = vec![start];
            if mid > start && mid < value {
                out.push(mid);
            }
            let pred = value - 1;
            if pred > start && Some(&pred) != out.last() {
                out.push(pred);
            }
            out
        }
    }};
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut u64) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end - self.start) as u128;
                    let offset = (next_u64(rng) as u128) % width;
                    self.start + offset as $ty
                }
                fn shrink(&self, value: &$ty) -> Vec<$ty> {
                    shrink_towards!(self.start, *value)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut u64) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let width = (end - start) as u128 + 1;
                    let offset = (next_u64(rng) as u128) % width;
                    start + offset as $ty
                }
                fn shrink(&self, value: &$ty) -> Vec<$ty> {
                    shrink_towards!(*self.start(), *value)
                }
            }
        )*
    };
}

impl_range_strategy!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+)
            where
                $($name::Value: Clone,)+
            {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut u64) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for candidate in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = candidate;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        )*
    };
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::Strategy;

    /// A strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Vectors with lengths drawn from `len` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut u64) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Structural shrinks first: drop one element (respecting the
            // minimum length), removing from the back first so reported
            // prefixes stay stable.
            if value.len() > self.len.start {
                for i in (0..value.len()).rev() {
                    let mut shorter = value.clone();
                    shorter.remove(i);
                    out.push(shorter);
                }
            }
            // Then element-wise shrinks, one element at a time.
            for (i, v) in value.iter().enumerate() {
                for candidate in self.element.shrink(v) {
                    let mut next = value.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// Everything the `proptest!` macro and its bodies need in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::Just;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assertion macro mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assertion macro mirroring `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// The deterministic per-property seed: derived from the property name only,
/// so every run (and every machine) explores the same case sequence.
pub fn seed_from_name(name: &str) -> u64 {
    0x9E37_79B9_7F4A_7C15
        ^ name
            .bytes()
            .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64))
}

/// Execute one property: sample [`CASES`] values from `strategy`, run `test`
/// on each, and on the first failure shrink the input (bounded re-execution)
/// before panicking with the minimal failing input and the case number.
/// Deterministic: the same property name always replays the same cases.
pub fn run_property<S: Strategy>(name: &str, strategy: &S, test: impl Fn(S::Value))
where
    S::Value: Clone + std::fmt::Debug,
{
    let mut rng = seed_from_name(name);
    for case in 0..CASES {
        let state_before = rng;
        let value = strategy.sample(&mut rng);
        if run_one(&test, value.clone()) {
            continue;
        }
        // Greedy shrink: take the first candidate that still fails, repeat.
        // The default panic hook is silenced for the duration — otherwise
        // every still-failing candidate prints a full panic block and buries
        // the final minimal-input report. (The initial failure above already
        // printed its assertion message and location.)
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut minimal = value.clone();
        let mut steps = 0usize;
        'shrinking: while steps < MAX_SHRINK_STEPS {
            for candidate in strategy.shrink(&minimal) {
                steps += 1;
                if !run_one(&test, candidate.clone()) {
                    minimal = candidate;
                    continue 'shrinking;
                }
                if steps >= MAX_SHRINK_STEPS {
                    break;
                }
            }
            break;
        }
        std::panic::set_hook(prev_hook);
        panic!(
            "property `{name}` failed at case {case}/{CASES} (rng state {state_before:#018x})\n\
             original failing input: {value:?}\n\
             minimal failing input:  {minimal:?}\n\
             (sampling is fixed-seed deterministic: rerunning this test replays the same case)"
        );
    }
}

fn run_one<V>(test: &impl Fn(V), value: V) -> bool {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value))).is_ok()
}

/// Define property tests: each `fn name(arg in strategy, ...) { .. }` becomes
/// a `#[test]` running the body over a deterministic sample of the strategy,
/// with bounded shrinking on failure.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let strategy = ($($strategy,)*);
                $crate::run_property(stringify!($name), &strategy, |($($arg,)*)| $body);
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        let s = (1u64..100, 1u64..100);
        let mut r1 = seed_from_name("x");
        let mut r2 = seed_from_name("x");
        for _ in 0..64 {
            assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
        }
    }

    #[test]
    fn ranges_shrink_towards_start() {
        let s = 3u64..100;
        let c = s.shrink(&50);
        assert!(c.contains(&3));
        assert!(c.iter().all(|&v| (3..50).contains(&v)));
        assert!(s.shrink(&3).is_empty());
    }

    #[test]
    fn filter_keeps_only_matching_values() {
        let s = (0u64..100).prop_filter("even", |v| v % 2 == 0);
        let mut rng = seed_from_name("filter");
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng) % 2, 0);
        }
        // Shrink candidates are filtered too.
        assert!(s.shrink(&40).iter().all(|v| v % 2 == 0));
    }

    #[test]
    fn map_and_flat_map_compose() {
        let s = (1u64..10).prop_map(|n| n * 100);
        let mut rng = seed_from_name("map");
        let v = s.sample(&mut rng);
        assert!((100..1000).contains(&v) && v % 100 == 0);

        // A vector whose length was itself sampled: the classic flat-map use.
        let nested = (1usize..5).prop_flat_map(|n| collection::vec(0u64..10, n..n + 1));
        let mut rng = seed_from_name("flat");
        for _ in 0..50 {
            let v = nested.sample(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn vec_shrink_removes_and_shrinks_elements() {
        let s = collection::vec(0u64..10, 1..8);
        let candidates = s.shrink(&vec![5, 7]);
        assert!(candidates.contains(&vec![5]));
        assert!(candidates.contains(&vec![7]));
        assert!(candidates.contains(&vec![0, 7]));
    }

    #[test]
    fn failing_property_reports_minimal_input() {
        let err = std::panic::catch_unwind(|| {
            run_property("demo_shrink", &(0u64..1000,), |(v,)| {
                assert!(v < 10, "too big");
            });
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("minimal failing input"), "{msg}");
        // Greedy shrinking from any failing value lands on exactly 10, the
        // smallest value violating the property.
        assert!(msg.contains("(10,)"), "{msg}");
    }

    #[test]
    fn just_yields_its_value() {
        let s = Just(42u64);
        let mut rng = 7;
        assert_eq!(s.sample(&mut rng), 42);
        assert!(s.shrink(&42).is_empty());
    }

    proptest! {
        /// The macro still supports multiple bindings and trailing commas.
        #[test]
        fn macro_bindings_work(a in 1u64..5, b in 1u64..5,) {
            prop_assert!(a < 5 && b < 5);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
