//! Offline deterministic property-testing shim with a proptest-compatible
//! API.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the slice of `proptest` the workspace's tests use: the `proptest!` macro
//! with `name in strategy` bindings, `prop_assert!`/`prop_assert_eq!`, range
//! strategies over the integer types, tuple strategies and
//! `collection::vec`. Sampling is driven by a fixed-seed xorshift generator,
//! so every run explores the same cases — which doubles as a determinism
//! guarantee for the exact-arithmetic tests. Swapping in the real proptest
//! later requires no changes to the test sources.

/// Number of cases each property runs.
pub const CASES: u64 = 256;

/// A source of sampled values: the shim's stand-in for proptest strategies.
pub trait Strategy {
    /// The type of the sampled values.
    type Value;
    /// Draw one value using the given RNG state.
    fn sample(&self, rng: &mut u64) -> Self::Value;
}

/// Advance the xorshift state and return the raw 64-bit output.
pub fn next_u64(rng: &mut u64) -> u64 {
    let mut x = *rng;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *rng = x;
    x
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut u64) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end - self.start) as u128;
                    let offset = (next_u64(rng) as u128) % width;
                    self.start + offset as $ty
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut u64) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let width = (end - start) as u128 + 1;
                    let offset = (next_u64(rng) as u128) % width;
                    start + offset as $ty
                }
            }
        )*
    };
}

impl_range_strategy!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut u64) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*
    };
}

impl_tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) }

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::Strategy;

    /// A strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Vectors with lengths drawn from `len` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut u64) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the `proptest!` macro and its bodies need in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assertion macro mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assertion macro mirroring `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { .. }` becomes
/// a `#[test]` running the body over a deterministic sample of the strategy.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                // Seed derived from the test name so different properties
                // explore different (but stable) case sequences.
                let mut rng: u64 = 0x9E37_79B9_7F4A_7C15
                    ^ stringify!($name).bytes().fold(0u64, |h, b| {
                        h.wrapping_mul(31).wrapping_add(b as u64)
                    });
                for _case in 0..$crate::CASES {
                    $( let $arg = $crate::Strategy::sample(&($strategy), &mut rng); )*
                    $body
                }
            }
        )*
    };
}
