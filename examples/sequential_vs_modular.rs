//! Sequential vs modular specification of multi-rate behaviour (paper
//! Section III-A, Figs. 2a–2c).
//!
//! The same cyclic multi-rate application is specified twice: as a sequential
//! program that must spell out the complete schedule (Fig. 2b) and as two
//! concurrent OIL modules (Fig. 2c). The example compares specification
//! sizes, verifies both are deadlock-free and shows how the schedule length
//! explodes with the rate ratio while the modular version stays constant.
//!
//! ```bash
//! cargo run --example sequential_vs_modular
//! ```

use oil::dataflow::rational::gcd;
use oil::dataflow::SdfGraph;
use oil::lang::parse_program;

const SEQUENTIAL: &str = r#"
    mod seq Sched(){
        int x[6], y[6];
        init(out y[0:3]);
        loop{
            f(out x[0:2], y[0:2]);
            g(out y[4:5], x[0:1]);
            f(out x[3:5], y[3:5]);
            g(out y[0:1], x[2:3]);
            g(out y[2:3], x[4:5]);
        } while(1);
    }
"#;

const MODULAR: &str = r#"
    mod seq A(out int a, int b){ loop{ f(out a:3, b:3); } while(1); }
    mod seq B(out int c, int d){ init(out c:4); loop{ g(out c:2, d:2); } while(1); }
    mod par C(){ fifo int x, y; A(out x, y) || B(out y, x) }
"#;

fn statement_count(src: &str) -> usize {
    src.matches(';').count()
}

fn main() {
    // Both forms parse as valid OIL.
    let seq = parse_program(SEQUENTIAL).expect("sequential version parses");
    let par = parse_program(MODULAR).expect("modular version parses");

    println!("== Fig. 2: specifying a 3:2 rate conversion ==");
    println!(
        "sequential schedule (Fig. 2b): {} statements, {} modules",
        statement_count(SEQUENTIAL),
        seq.modules.len()
    );
    println!(
        "modular OIL (Fig. 2c):         {} statements, {} modules",
        statement_count(MODULAR),
        par.modules.len()
    );

    // The underlying task graph is deadlock-free with 4 initial tokens.
    let graph = SdfGraph::rate_converter(3, 3, 2, 2, 4, 1e-6);
    let q = graph.repetition_map().unwrap();
    println!(
        "\nrepetition vector: f fires {}x, g fires {}x per iteration",
        q["f"], q["g"]
    );
    println!(
        "deadlock-free with 4 initial tokens: {}",
        graph.check_deadlock_free().is_ok()
    );
    println!(
        "deadlock-free with 2 initial tokens: {}",
        SdfGraph::rate_converter(3, 3, 2, 2, 2, 1e-6)
            .check_deadlock_free()
            .is_ok()
    );

    // The schedule length the sequential form must encode grows with the
    // rate ratio; the modular specification is always two function calls.
    println!("\nschedule length vs rate ratio (statements per hyperperiod):");
    println!("{:>10} {:>14} {:>10}", "p:q", "sequential", "modular");
    for (p, q) in [(3u64, 2u64), (10, 16), (25, 8), (125, 32), (1024, 729)] {
        let g = gcd(p as u128, q as u128) as u64;
        println!("{:>10} {:>14} {:>10}", format!("{p}:{q}"), p / g + q / g, 2);
    }
}
