//! Profile-guided scheduling, end to end, on the PAL decoder:
//!
//! 1. **Calibrate** — measure every PAL kernel's ns/firing on this host
//!    (`oil::rt::profile`, trimmed-median estimator) and write the
//!    host-fingerprinted `KernelCostModel` artifact to
//!    `pal_cost_model.json`.
//! 2. **Steer** — synthesize the static-order schedule twice, on declared
//!    CTA response times and on the measured costs, and print the
//!    predicted per-worker utilization of each.
//! 3. **Verify** — run the measured-cost schedule with the always-on
//!    metrics registry and print its health line (firing percentiles,
//!    parks, drift verdict): observations steer placement, the replay
//!    proof and the live drift oracle keep it honest.
//!
//! Point a later run at the artifact with `OIL_COST_MODEL=pal_cost_model.json`
//! — `SynthesisConfig::from_env()` picks it up everywhere.

use oil::compiler::rtgraph;
use oil::compiler::schedule::{synthesize, SynthesisConfig};
use oil::rt::{
    execute_staticsched, profile_graph, KernelLibrary, MetricsConfig, ProfileConfig, StaticConfig,
};
use oil::sim::picos;

fn main() {
    let (compiled, _) = oil::pal::analyze_pal().expect("the PAL decoder is schedulable");
    let registry = oil::pal::pal_registry();
    let graph = rtgraph::lower_with_registry(&compiled, &registry);
    let plan = rtgraph::plan(&graph);
    let lib = KernelLibrary::pal();

    // 1. Calibrate.
    println!("calibrating {} PAL kernels…", graph.nodes.len());
    let model = profile_graph(&graph, &lib, &ProfileConfig::default());
    for (function, cost) in &model.entries {
        println!(
            "  {function:<12} {:>10.1} ns/firing  (burst {}, {} repeats)",
            cost.ns_per_firing, cost.burst, cost.samples
        );
    }
    let path = "pal_cost_model.json";
    std::fs::write(path, model.to_json()).expect("write cost model");
    println!(
        "wrote {path} (host {}, fingerprint {:016x})",
        model.host,
        model.fingerprint()
    );

    // 2. Steer the partition with the measurements.
    let workers = 2usize;
    let declared = synthesize(&graph, &plan, workers, &SynthesisConfig::default())
        .expect("declared-cost synthesis");
    let measured = synthesize(
        &graph,
        &plan,
        workers,
        &SynthesisConfig {
            cost_model: Some(model),
            ..SynthesisConfig::default()
        },
    )
    .expect("measured-cost synthesis");
    let pct = |u: &[f64]| -> String {
        u.iter()
            .map(|x| format!("{:.1}%", x * 100.0))
            .collect::<Vec<_>>()
            .join(" / ")
    };
    println!("\npredicted per-worker utilization at {workers} workers:");
    println!("  declared costs: {}", pct(&declared.predicted_utilization));
    println!("  measured costs: {}", pct(&measured.predicted_utilization));

    // 3. Run the measured-cost schedule with metrics on.
    let report = execute_staticsched(
        &graph,
        &measured,
        &lib,
        picos(5e-3),
        &StaticConfig {
            record_values: false,
            warmup_samples: 256,
            metrics: Some(MetricsConfig::default()),
            ..StaticConfig::default()
        },
    );
    let m = report.metrics.as_ref().expect("metrics were enabled");
    println!("\n{}", m.summary_line());
    println!(
        "measured per-worker utilization: {}",
        pct(&m.measured_utilization(report.wall.as_nanos() as u64))
    );
    let snapshot = "pal_metrics.summary.json";
    std::fs::write(snapshot, m.summary_json()).expect("write metrics snapshot");
    println!("wrote {snapshot}");
}
