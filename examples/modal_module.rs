//! Modal (mode-switching) behaviour: the paper's Fig. 4 and Fig. 9 programs.
//!
//! Shows how control statements in the sequential specification become
//! unconditionally executing, guarded tasks (Fig. 4), how while-loops with
//! unknown iteration bounds become nested CTA components (Fig. 9), and that
//! the derived temporal model is analysable despite the data-dependent
//! control flow.
//!
//! ```bash
//! cargo run --example modal_module
//! ```

use oil::compiler::parallelize::describe_loops;
use oil::compiler::{compile, extract_task_graph, CompilerOptions};
use oil::lang::registry::{FunctionRegistry, FunctionSignature};

const FIG4A: &str = r#"
    mod seq M(out int x){
        if(...){ y = g(); }
        else   { y = h(); }
        k(y, out x:2);
    }
"#;

const FIG9A: &str = r#"
    mod seq A(int x, out int o){
        loop{ y = f(x); o = f(y); } while(...);
        loop{ g(x, y, out o); } while(...);
    }
    mod par T(){
        source int s = src() @ 1 kHz;
        sink int t = snk() @ 1 kHz;
        A(s, out t)
    }
"#;

fn registry() -> FunctionRegistry {
    let mut reg = FunctionRegistry::new();
    for f in ["f", "g", "h", "k", "src", "snk"] {
        reg.register(FunctionSignature::pure(f, 1e-5));
    }
    reg
}

fn main() {
    let reg = registry();

    // ---- Fig. 4: guarded tasks ----
    let program = oil::lang::parse_program(FIG4A).unwrap();
    let tg = extract_task_graph(program.module("M").unwrap(), &reg);
    println!("== Fig. 4: parallelization of a modal module ==");
    for t in &tg.tasks {
        println!(
            "  task {:>8} (function {:>2})  guarded: {}",
            t.name, t.function, t.guarded
        );
    }
    println!(
        "  buffer y: {} producers, {} consumers",
        tg.producers(tg.buffer_by_name("y").unwrap()).len(),
        tg.consumers(tg.buffer_by_name("y").unwrap()).len()
    );

    // ---- Fig. 9: while-loops with unknown iteration bounds ----
    let compiled = compile(FIG9A, &reg, &CompilerOptions::default())
        .expect("the modal two-loop program is accepted");
    println!("\n== Fig. 9: module with two data-dependent while-loops ==");
    let a_graph = compiled
        .derived
        .task_graphs
        .iter()
        .flatten()
        .next()
        .unwrap();
    print!("{}", describe_loops(a_graph));
    println!(
        "CTA model: {} components (one per module, loop and task), {} connections",
        compiled.derived.cta.component_count(),
        compiled.derived.cta.connection_count()
    );
    println!("buffer plan:");
    for (name, cap) in compiled
        .buffers
        .channels
        .iter()
        .chain(compiled.buffers.locals.iter())
    {
        println!("  {name}: {cap} values");
    }
    println!(
        "source and sink both run at {:.0} Hz despite the mode switches",
        compiled.channel_rate("s").unwrap()
    );
}
