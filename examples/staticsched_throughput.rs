//! Static-order PAL decoder: compiled schedule replay, measured vs
//! CTA-predicted sink rates.
//!
//! Compiles the paper's PAL decoder (Fig. 11), lowers it to the runtime
//! graph, **synthesises a periodic static-order schedule** from the
//! repetition vector (`oil_compiler::schedule`) and replays it with the
//! real DSP kernels — zero readiness scanning, synchronisation only on the
//! buffers that cross a worker boundary. It prints the schedule shape
//! (period length, crossings per worker count) and, per sink, the
//! CTA-predicted rate next to the measured steady-state wall rate.
//!
//! Run with `cargo run --release --example staticsched_throughput`.

use oil::compiler::{rtgraph, schedule};
use oil::rt::{execute_staticsched, measure, ConformanceVerdict, KernelLibrary, StaticConfig};
use oil::sim::picos;

fn main() {
    let (compiled, analysis) = oil::pal::analyze_pal().expect("the PAL decoder is schedulable");
    let registry = oil::pal::pal_registry();
    let graph = rtgraph::lower_with_registry(&compiled, &registry);
    let plan = rtgraph::plan(&graph);

    println!("PAL decoder, compiled static-order replay");
    println!(
        "  graph: {} nodes, {} buffers, {} sources, {} sinks",
        graph.nodes.len(),
        graph.buffers.len(),
        graph.sources.len(),
        graph.sinks.len()
    );
    for (channel, rate) in ["screen", "speakers"]
        .iter()
        .filter_map(|c| analysis.channel_rates.get(*c).map(|r| (c, r)))
    {
        println!(
            "  CTA:   channel `{channel}` predicted at {} Hz",
            rate.to_f64()
        );
    }

    // 10 ms of virtual signal, executed as fast as the schedule replays.
    let duration = picos(10e-3);
    let threshold = if std::env::var_os("OIL_RT_CONFORMANCE").is_some() {
        measure::conformance_threshold()
    } else {
        0.02
    };
    // Read the fusion toggle once; every synthesis sees the same config.
    let synth = schedule::SynthesisConfig::from_env();
    for workers in [1, 2, 4] {
        let s = schedule::synthesize(&graph, &plan, workers, &synth)
            .expect("the PAL graph is schedulable");
        println!(
            "\n  workers={}: period {} firings in {} steps, {} cross-worker buffer(s), digest {:016x}",
            s.worker_count(),
            s.period_firings(),
            s.period.len(),
            s.cross_buffers.len(),
            s.digest()
        );
        let report = execute_staticsched(
            &graph,
            &s,
            &KernelLibrary::pal(),
            duration,
            &StaticConfig {
                record_values: false,
                warmup_samples: 256,
                trace: false,
                ..StaticConfig::default()
            },
        );
        println!(
            "    {} iterations, {} tokens in {:.2?} ({:.2} M tokens/s)",
            report.iterations,
            report.tokens,
            report.wall,
            report.tokens as f64 / report.wall.as_secs_f64() / 1e6
        );
        for t in &report.throughput {
            match t.measured_hz {
                Some(hz) => println!(
                    "    sink {:<24} predicted {:>12.0} Hz   measured {:>12.0} Hz   ({:.2}x)",
                    t.name,
                    t.predicted_hz,
                    hz,
                    hz / t.predicted_hz
                ),
                None => println!(
                    "    sink {:<24} predicted {:>12.0} Hz   (run too short to measure)",
                    t.name, t.predicted_hz
                ),
            }
        }
        let conformance = report.conformance(threshold);
        match conformance.verdict() {
            ConformanceVerdict::Pass => {}
            ConformanceVerdict::Inconclusive => println!(
                "    rate conformance INCONCLUSIVE (warmup never completed on: {})",
                conformance.inconclusive_sinks().join(", ")
            ),
            ConformanceVerdict::Fail => println!(
                "    rate conformance NOT met at threshold {threshold}:\n      {}",
                conformance.violations().join("\n      ")
            ),
        }
    }
}
