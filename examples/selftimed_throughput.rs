//! Free-running PAL decoder: measured vs CTA-predicted sink rates.
//!
//! Compiles the paper's PAL decoder (Fig. 11), lowers it to the runtime
//! graph, computes the self-timed scheduling plan (repetition-vector
//! batches, serial clusters) and runs it **free-running** — no virtual
//! clock, every task firing as soon as data and space allow — with the real
//! DSP kernels. It then prints, per sink, the CTA-predicted rate next to
//! the measured steady-state wall-clock rate: the paper's temporal
//! guarantee ("the analysis admits this throughput") meeting the hardware
//! ("this machine actually sustains it").
//!
//! Run with `cargo run --release --example selftimed_throughput`.

use oil::compiler::rtgraph;
use oil::rt::{execute_selftimed, measure, KernelLibrary, SelfTimedConfig};
use oil::sim::picos;

fn main() {
    let (compiled, analysis) = oil::pal::analyze_pal().expect("the PAL decoder is schedulable");
    let registry = oil::pal::pal_registry();
    let graph = rtgraph::lower_with_registry(&compiled, &registry);
    let plan = rtgraph::plan(&graph);

    println!("PAL decoder, self-timed free run");
    println!(
        "  graph: {} nodes, {} buffers, {} sources, {} sinks",
        graph.nodes.len(),
        graph.buffers.len(),
        graph.sources.len(),
        graph.sinks.len()
    );
    println!(
        "  plan:  KPN-safe: {}, batches: {:?} (sources {:?})",
        plan.is_kpn_safe(),
        plan.batch.iter().collect::<Vec<_>>(),
        plan.source_batch.iter().collect::<Vec<_>>(),
    );
    for (channel, rate) in ["screen", "speakers"]
        .iter()
        .filter_map(|c| analysis.channel_rates.get(*c).map(|r| (c, r)))
    {
        println!(
            "  CTA:   channel `{channel}` predicted at {} Hz",
            rate.to_f64()
        );
    }

    // 10 ms of virtual signal: 64 000 RF samples, 40 000 display samples,
    // 320 speaker samples — executed as fast as this machine allows.
    let duration = picos(10e-3);
    // The PAL sinks run at MS/s rates against real FIR/resampler
    // arithmetic, so the conformance floor is hardware-bound: 2% of the
    // predicted rate (the regression floor `tests/selftimed_differential.rs`
    // enforces) unless OIL_RT_CONFORMANCE demands more.
    let threshold = if std::env::var_os("OIL_RT_CONFORMANCE").is_some() {
        measure::conformance_threshold()
    } else {
        0.02
    };
    for threads in [1, 2, 4] {
        let report = execute_selftimed(
            &graph,
            &plan,
            &KernelLibrary::pal(),
            duration,
            &SelfTimedConfig {
                threads,
                record_values: false,
                warmup_samples: 256,
                ..SelfTimedConfig::default()
            },
        );
        assert!(!report.deadlocked, "CTA-sized buffers must not deadlock");
        println!(
            "\n  {} worker thread(s): {} tokens in {:.1} ms ({:.2} M tokens/s, {} parks)",
            report.threads,
            report.tokens,
            report.wall.as_secs_f64() * 1e3,
            report.tokens as f64 / report.wall.as_secs_f64() / 1e6,
            report.parks,
        );
        for sink in &report.throughput {
            match sink.measured_hz {
                Some(measured) => println!(
                    "    {:<28} predicted {:>9.0} Hz   measured {:>11.0} Hz   ({:.2}x)",
                    sink.name,
                    sink.predicted_hz,
                    measured,
                    measured / sink.predicted_hz
                ),
                None => println!(
                    "    {:<28} predicted {:>9.0} Hz   (run too short to measure)",
                    sink.name, sink.predicted_hz
                ),
            }
        }
        let conformance = report.conformance(threshold);
        println!(
            "    rate conformance at threshold {:.3}: {}",
            threshold,
            conformance.verdict()
        );
        for v in conformance.violations() {
            println!("      {v}");
        }
        for v in conformance.inconclusive_sinks() {
            println!("      {v}");
        }
    }
}
