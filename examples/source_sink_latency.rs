//! Sources, sinks and latency constraints: the paper's Fig. 6 / Fig. 10
//! program.
//!
//! A 1 kHz source feeds a two-module pipeline feeding a 1 kHz sink, with the
//! requirement that a sample is visible at the sink within 5 ms of entering
//! the system. The example shows the derived buffer capacities, the analysed
//! end-to-end latency, and what happens when the constraint is tightened
//! until it becomes unattainable.
//!
//! ```bash
//! cargo run --example source_sink_latency
//! ```

use oil::compiler::{compile, CompileError, CompilerOptions};
use oil::lang::registry::{FunctionRegistry, FunctionSignature};

fn program(latency_ms: f64) -> String {
    format!(
        r#"
        mod seq B(int a, out int z){{ loop{{ f(a, out z); }} while(1); }}
        mod seq C(int a, int z, out int b){{ loop{{ g(a, z, out b); }} while(1); }}
        mod par A(int a, out int b){{
            fifo int z;
            B(a, out z) || C(a, z, out b)
        }}
        mod par D(){{
            source int x = src() @ 1 kHz;
            sink int y = snk() @ 1 kHz;
            start x {latency_ms} ms before y;
            A(x, out y)
        }}
        "#
    )
}

fn main() {
    let mut registry = FunctionRegistry::new();
    for f in ["f", "g", "src", "snk"] {
        registry.register(FunctionSignature::pure(f, 2e-4));
    }

    println!("== Fig. 6/10: source, sink and a 5 ms latency constraint ==");
    let compiled = compile(&program(5.0), &registry, &CompilerOptions::default())
        .expect("the 5 ms constraint is attainable");
    println!("source rate: {:.0} Hz", compiled.channel_rate("x").unwrap());
    println!("sink rate:   {:.0} Hz", compiled.channel_rate("y").unwrap());
    println!(
        "analysed end-to-end latency: {:.3} ms (bound: 5 ms)",
        compiled.latency_between("x", "y").unwrap() * 1e3
    );
    println!("buffer capacities:");
    for (name, cap) in &compiled.buffers.channels {
        println!("  {name}: {cap} values");
    }

    println!("\nTightening the latency bound:");
    for bound in [5.0, 2.0, 1.0, 0.5, 0.1] {
        match compile(&program(bound), &registry, &CompilerOptions::default()) {
            Ok(c) => println!(
                "  {bound:>4} ms: accepted (latency {:.3} ms, {} buffered values)",
                c.latency_between("x", "y").unwrap() * 1e3,
                c.buffers.total_tokens()
            ),
            Err(CompileError::Temporal(e)) => println!("  {bound:>4} ms: rejected ({e})"),
            Err(e) => println!("  {bound:>4} ms: rejected ({e})"),
        }
    }
}
