//! The PAL video/audio decoder case study (paper Section VI, Figs. 11–12).
//!
//! Compiles the OIL program of Fig. 11, prints the analysis corresponding to
//! Fig. 12 (rates, conversion factors, buffer capacities, audio/video skew),
//! simulates the decoder on the discrete-event substrate and decodes a
//! synthetic composite signal with the native reference implementation.
//!
//! ```bash
//! cargo run --release --example pal_decoder
//! ```

use oil::dsp::generator::dominant_frequency;
use oil::dsp::CompositeSignal;
use oil::pal::{analyze_pal, simulate_pal, NativePalDecoder};

fn main() {
    // ---- temporal analysis (Fig. 12) ----
    let (compiled, analysis) = analyze_pal().expect("the PAL decoder is schedulable");
    println!("== PAL decoder: temporal analysis ==");
    println!(
        "CTA model: {} components, {} connections",
        analysis.cta_components, analysis.cta_connections
    );
    println!("channel rates:");
    for (name, rate) in &analysis.channel_rates {
        println!(
            "  {name:>10}: {:>12.0} samples/s ({rate} exactly)",
            rate.to_f64()
        );
    }
    println!("buffer capacities:");
    for (name, cap) in &analysis.channel_capacities {
        println!("  {name:>10}: {cap} samples");
    }
    println!(
        "latency rf->screen: {:.2} us, rf->speakers: {:.2} us, A/V skew: {:.2} us",
        analysis.latency_rf_to_screen_seconds() * 1e6,
        analysis.latency_rf_to_speakers_seconds() * 1e6,
        analysis.av_skew_seconds() * 1e6
    );
    println!("generated task modules: {}", compiled.generated.len());

    // ---- simulated execution ----
    let report = simulate_pal(2e-3).expect("simulation runs");
    println!("\n== PAL decoder: 2 ms simulated execution ==");
    println!(
        "display throughput:  {:>12.0} samples/s (declared 4 MS/s)",
        report.screen_rate
    );
    println!(
        "speaker throughput:  {:>12.0} samples/s (declared 32 kS/s)",
        report.speaker_rate
    );
    println!(
        "deadline misses: {}, source overflows: {}",
        report.metrics.total_misses(),
        report.metrics.total_overflows()
    );

    // ---- functional reference path ----
    let mut decoder = NativePalDecoder::default();
    let mut signal = CompositeSignal::pal_default();
    let rf = signal.block(320_000); // 50 ms of RF at 6.4 MS/s
    let out = decoder.decode(&rf);
    let tone = dominant_frequency(&out.audio[out.audio.len() / 2..], 32_000.0);
    println!("\n== PAL decoder: native signal path ==");
    println!("video samples: {} (4 MS/s)", out.video.len());
    println!("audio samples: {} (32 kS/s)", out.audio.len());
    println!("recovered audio tone: {tone:.0} Hz (transmitted: 1000 Hz)");
}
