//! Traced PAL decoder: one Perfetto-loadable trace per engine.
//!
//! Compiles the paper's PAL decoder (Fig. 11), runs it with tracing
//! enabled on all three engines — the deterministic calendar replay, the
//! free-running self-timed engine and the compiled static-order engine —
//! and writes each run's Chrome trace-event JSON next to the workspace
//! root:
//!
//! ```text
//! pal_calendar.trace.json
//! pal_selftimed.trace.json
//! pal_staticsched.trace.json
//! ```
//!
//! Load any of them at <https://ui.perfetto.dev> (or `chrome://tracing`):
//! one track per worker, firing spans labelled with the kernel/unit name,
//! park/backpressure/seam events in place. The printed summary shows the
//! telemetry the CTA lets us check at runtime — ring high-water marks
//! against proven capacities and measured sink rates against predicted
//! rates (wall-clock conformance applies to the free-running engines; the
//! calendar engine replays virtual time, so only its ring telemetry is
//! shown).
//!
//! Run with `OIL_RT_TRACE=1 cargo run --release --example trace_pal`
//! (tracing is forced on here regardless, so the variable is optional —
//! it exists for binaries that default to untraced runs).

use oil::compiler::{rtgraph, schedule};
use oil::rt::{
    execute, execute_selftimed, execute_staticsched, measure, ConformanceVerdict, KernelLibrary,
    RateConformance, RtConfig, SelfTimedConfig, StaticConfig, TraceReport,
};
use oil::sim::picos;

/// Write the Perfetto trace, print the one-line telemetry summary and the
/// conformance verdict (when the engine measures wall-clock rates).
fn report_engine(engine: &str, tr: &TraceReport, conformance: Option<&RateConformance>) {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("pal_{engine}.trace.json"));
    match std::fs::write(&path, tr.chrome_trace_json()) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("  could not write {}: {e}", path.display()),
    }
    println!(
        "  telemetry: parks={} ring_highwater_max={} backpressure_wait_ns={} \
         seam_latency_observed_ns={} rings_within_capacity={}",
        tr.park_count(),
        tr.ring_highwater_max(),
        tr.backpressure_wait_ns(),
        tr.seam_latency_observed_ns(),
        tr.rings_within_capacity()
    );
    match conformance {
        None => println!("  conformance: n/a (virtual-time replay)"),
        Some(c) => {
            println!("  conformance: {}", c.verdict());
            let lines = match c.verdict() {
                ConformanceVerdict::Pass => Vec::new(),
                ConformanceVerdict::Fail => c.violations(),
                ConformanceVerdict::Inconclusive => c.inconclusive_sinks(),
            };
            for l in lines {
                println!("    {l}");
            }
        }
    }
}

fn main() {
    let (compiled, analysis) = oil::pal::analyze_pal().expect("the PAL decoder is schedulable");
    let registry = oil::pal::pal_registry();
    let graph = rtgraph::lower_with_registry(&compiled, &registry);
    let plan = rtgraph::plan(&graph);
    let duration = picos(10e-3);
    let threads = 2;
    let threshold = if std::env::var_os("OIL_RT_CONFORMANCE").is_some() {
        measure::conformance_threshold()
    } else if cfg!(debug_assertions) {
        0.005
    } else {
        0.02
    };

    println!("PAL decoder, traced on every engine ({threads} workers, 10 ms virtual)");
    for (channel, rate) in ["screen", "speakers"]
        .iter()
        .filter_map(|c| analysis.channel_rates.get(*c).map(|r| (c, r)))
    {
        println!(
            "  CTA: channel `{channel}` predicted at {} Hz",
            rate.to_f64()
        );
    }

    println!("\ncalendar:");
    let report = execute(
        &graph,
        &KernelLibrary::pal(),
        duration,
        &RtConfig {
            threads,
            record_values: false,
            trace: true,
            ..RtConfig::default()
        },
    );
    let tr = report.trace_report.as_ref().expect("tracing was enabled");
    report_engine("calendar", tr, None);

    println!("\nselftimed:");
    let report = execute_selftimed(
        &graph,
        &plan,
        &KernelLibrary::pal(),
        duration,
        &SelfTimedConfig {
            threads,
            record_values: false,
            warmup_samples: 256,
            trace: true,
            ..SelfTimedConfig::default()
        },
    );
    let conformance = report.conformance(threshold);
    let tr = report.trace_report.as_ref().expect("tracing was enabled");
    report_engine("selftimed", tr, Some(&conformance));

    println!("\nstaticsched:");
    let synth = schedule::SynthesisConfig::from_env();
    let s =
        schedule::synthesize(&graph, &plan, threads, &synth).expect("the PAL graph is schedulable");
    let report = execute_staticsched(
        &graph,
        &s,
        &KernelLibrary::pal(),
        duration,
        &StaticConfig {
            record_values: false,
            warmup_samples: 256,
            trace: true,
            ..StaticConfig::default()
        },
    );
    let conformance = report.conformance(threshold);
    let tr = report.trace_report.as_ref().expect("tracing was enabled");
    report_engine("staticsched", tr, Some(&conformance));

    // The machine-readable summary of the static-order run — the same
    // content as the Perfetto trace, aggregated (firing histograms, ring
    // high-water vs capacity, compile phases, conformance verdict).
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("pal_staticsched.summary.json");
    match std::fs::write(&path, tr.summary_json(Some(&conformance))) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
