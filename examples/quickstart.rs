//! Quickstart: compile and analyse the paper's Fig. 2c rate-conversion
//! program.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use oil::compiler::{compile, CompilerOptions};
use oil::lang::registry::{FunctionRegistry, FunctionSignature};

const PROGRAM: &str = r#"
    // Module A produces three values of x and consumes three of y per iteration.
    mod seq A(out int a, int b){
        loop{ f(out a:3, b:3); } while(1);
    }
    // Module B consumes two values of x and produces two of y per iteration,
    // with four initial values written before the loop starts.
    mod seq B(out int c, int d){
        init(out c:4);
        loop{ g(out c:2, d:2); } while(1);
    }
    // The parallel composition: the schedule of f and g is *not* encoded in
    // the program; module B simply executes 1.5x as often as module A.
    mod par C(){
        fifo int x, y;
        A(out x, y) || B(out y, x)
    }
"#;

fn main() {
    // 1. Describe the coordinated functions (side-effect free, with
    //    worst-case response times) to the compiler.
    let mut registry = FunctionRegistry::new();
    registry.register(FunctionSignature::pure("f", 1e-6));
    registry.register(FunctionSignature::pure("g", 1e-6));
    registry.register(FunctionSignature::pure("init", 1e-7));

    // 2. Compile: parse, analyse, extract task graphs, derive the CTA model,
    //    size buffers and generate task code.
    let compiled = compile(PROGRAM, &registry, &CompilerOptions::default())
        .expect("the rate-conversion program is accepted");

    println!("== Fig. 2c rate conversion ==");
    println!(
        "leaf module instances: {}",
        compiled.analyzed.graph.instances.len()
    );
    println!(
        "CTA model: {} components, {} connections",
        compiled.derived.cta.component_count(),
        compiled.derived.cta.connection_count()
    );
    println!(
        "token rate on x: {:.0} tokens/s",
        compiled.channel_rate("x").unwrap()
    );
    println!(
        "token rate on y: {:.0} tokens/s",
        compiled.channel_rate("y").unwrap()
    );
    println!("buffer capacities:");
    for (name, cap) in &compiled.buffers.channels {
        println!("  {name}: {cap} values");
    }
    println!("\ngenerated task code for module A:\n");
    println!("{}", compiled.generated[0].module_source);
}
