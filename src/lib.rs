//! Umbrella crate for the OIL toolchain.
//!
//! This crate re-exports the individual workspace crates under one roof so
//! that examples, integration tests and downstream users can depend on a
//! single `oil` package:
//!
//! * [`lang`] — lexer, parser, AST and semantic analysis of OIL programs.
//! * [`dataflow`] — task graphs, SDF/CSDF/HSDF models and exact baseline
//!   analyses.
//! * [`cta`] — the Compositional Temporal Analysis model and its
//!   polynomial-time algorithms (consistency, buffer sizing, latency checks).
//! * [`compiler`] — derivation of task graphs and CTA models from OIL
//!   programs, buffer sizing and task code generation.
//! * [`sim`] — a discrete-event multi-core simulator used as the execution
//!   substrate (processors, ring interconnect, circular buffers, periodic
//!   sources/sinks).
//! * [`rt`] — the multi-threaded runtimes executing compiled task graphs on
//!   real OS threads: the calendar engine (trace-equivalent to the
//!   simulator, `tests/runtime_differential.rs`) and the self-timed
//!   free-running engine (value/rate-conformant,
//!   `tests/selftimed_differential.rs`).
//! * [`dsp`] — the signal-processing kernels coordinated by the example
//!   programs (filters, mixers, resamplers, signal generators).
//! * [`pal`] — the PAL video/audio decoder case study from the paper.
//! * [`gen`] — seeded random workload generation for the differential
//!   harness (`tests/differential.rs`) that cross-checks CTA against the
//!   exact dataflow baselines.
//!
//! See `README.md` for a tour and `DESIGN.md` for the mapping from the paper's
//! figures and claims to modules and benchmarks.

pub use oil_compiler as compiler;
pub use oil_cta as cta;
pub use oil_dataflow as dataflow;
pub use oil_dsp as dsp;
pub use oil_gen as gen;
pub use oil_lang as lang;
pub use oil_pal as pal;
pub use oil_rt as rt;
pub use oil_sim as sim;
