//! Shared workload generators for the benchmark harness.
//!
//! Every bench target regenerates one of the paper's figures or quantifies
//! one of its complexity claims; see `EXPERIMENTS.md` for the mapping. The
//! generators here build parameterised OIL programs and dataflow graphs so
//! the benches can sweep problem sizes.

use oil_dataflow::SdfGraph;
use oil_lang::registry::{FunctionRegistry, FunctionSignature};

/// A registry with the generic single-letter kernels used by the synthetic
/// workloads, each with `response_time` seconds of work.
pub fn bench_registry(response_time: f64) -> FunctionRegistry {
    let mut reg = FunctionRegistry::new();
    for f in ["f", "g", "h", "k", "init", "src", "snk"] {
        reg.register(FunctionSignature::pure(f, response_time));
    }
    reg
}

/// The paper's Fig. 2c rate-conversion program.
pub fn fig2c_source() -> &'static str {
    r#"
    mod seq A(out int a, int b){ loop{ f(out a:3, b:3); } while(1); }
    mod seq B(out int c, int d){ init(out c:4); loop{ g(out c:2, d:2); } while(1); }
    mod par C(){ fifo int x, y; A(out x, y) || B(out y, x) }
    "#
}

/// The paper's Fig. 6 program (source, sink, nested module, 5 ms latency).
pub fn fig6_source() -> &'static str {
    r#"
    mod seq B(int a, out int z){ loop{ f(a, out z); } while(1); }
    mod seq C(int a, int z, out int b){ loop{ g(a, z, out b); } while(1); }
    mod par A(int a, out int b){ fifo int z; B(a, out z) || C(a, z, out b) }
    mod par D(){
        source int x = src() @ 1 kHz;
        sink int y = snk() @ 1 kHz;
        start x 5 ms before y;
        A(x, out y)
    }
    "#
}

/// Generate an OIL pipeline of `stages` single-rate modules between a source
/// and a sink running at `rate_hz`.
pub fn pipeline_source(stages: usize, rate_hz: f64) -> String {
    let mut s = String::new();
    s.push_str("mod seq W(int a, out int b){ loop{ f(a, out b); } while(1); }\n");
    s.push_str("mod par Top(){\n");
    for i in 0..stages.saturating_sub(1) {
        s.push_str(&format!("    fifo int m{i};\n"));
    }
    s.push_str(&format!("    source int x = src() @ {rate_hz} Hz;\n"));
    s.push_str(&format!("    sink int y = snk() @ {rate_hz} Hz;\n"));
    if stages == 1 {
        s.push_str("    W(x, out y)\n");
    } else {
        s.push_str("    W(x, out m0)");
        for i in 1..stages {
            let input = format!("m{}", i - 1);
            let output = if i == stages - 1 {
                "out y".to_string()
            } else {
                format!("out m{i}")
            };
            s.push_str(&format!(" || W({input}, {output})"));
        }
        s.push('\n');
    }
    s.push_str("}\n");
    s
}

/// A two-actor multi-rate cycle with the given production/consumption rates
/// and initial tokens, as used by the exact-vs-polynomial scaling benchmark.
/// Larger `p`/`c` values blow up the state space and the HSDF expansion while
/// the CTA model size stays constant.
pub fn multirate_cycle(p: u64, c: u64, initial: u64) -> SdfGraph {
    SdfGraph::rate_converter(p, p, c, c, initial, 1e-6)
}

/// The equivalent CTA model of [`multirate_cycle`]: two components whose
/// ports are related by gamma = p/c, with the initial tokens as a negative
/// rate-dependent delay. Its size does not depend on `p` and `c`.
pub fn multirate_cycle_cta(p: u64, c: u64, initial: u64) -> oil_cta::CtaModel {
    use oil_cta::{CtaModel, Rational};
    let mut m = CtaModel::new();
    let f = m.add_component("f", None);
    let g = m.add_component("g", None);
    let rho = Rational::new(1, 1_000_000);
    let f_out = m.add_port(f, "out", Some(rho.recip()));
    let g_in = m.add_port(g, "in", Some(rho.recip()));
    let granularity = Rational::from_int(c as i128) - Rational::new(c as i128, p as i128);
    m.connect(
        f_out,
        g_in,
        rho,
        granularity,
        Rational::new(p as i128, c as i128),
    );
    m.connect_buffer(
        "by",
        g_in,
        f_out,
        rho,
        Rational::from_int(-(initial as i128)),
        Rational::new(c as i128, p as i128),
    );
    m
}

/// Length (number of statements) of the flat single-appearance schedule a
/// sequential specification needs for a `p`:`q` rate conversion (Fig. 2b
/// style): `p + q` calls per hyperperiod after reduction by the gcd.
pub fn sequential_schedule_length(p: u64, q: u64) -> u64 {
    let g = oil_dataflow::rational::gcd(p as u128, q as u128) as u64;
    p / g + q / g
}

#[cfg(test)]
mod tests {
    use super::*;
    use oil_compiler::{compile, CompilerOptions};

    #[test]
    fn generated_pipeline_compiles() {
        for stages in [1, 2, 5] {
            let src = pipeline_source(stages, 1000.0);
            let compiled = compile(&src, &bench_registry(1e-6), &CompilerOptions::default())
                .unwrap_or_else(|e| panic!("pipeline with {stages} stages failed: {e}"));
            assert_eq!(compiled.analyzed.graph.instances.len(), stages);
        }
    }

    #[test]
    fn fig_sources_compile() {
        let reg = bench_registry(1e-6);
        assert!(compile(fig2c_source(), &reg, &CompilerOptions::default()).is_ok());
        assert!(compile(fig6_source(), &reg, &CompilerOptions::default()).is_ok());
    }

    #[test]
    fn multirate_cycle_models_agree_on_feasibility() {
        let sdf = multirate_cycle(3, 2, 4);
        assert!(sdf.check_deadlock_free().is_ok());
        let cta = multirate_cycle_cta(3, 2, 4);
        assert!(cta.consistency_at_maximal_rates().is_ok());
    }

    #[test]
    fn schedule_length_grows_with_coprime_rates() {
        assert_eq!(sequential_schedule_length(3, 2), 5);
        assert_eq!(sequential_schedule_length(4, 2), 3);
        assert_eq!(sequential_schedule_length(25, 1), 26);
        assert!(sequential_schedule_length(127, 128) > sequential_schedule_length(4, 4));
    }
}
