//! Scenario sweep: the differential regression engine as a benchmark.
//!
//! Sweeps batches of seeded random scenarios (see `oil-gen`) through the
//! polynomial CTA analyses and through the exact exponential baselines,
//! timing each side. This quantifies, on *random* instances rather than the
//! paper's hand-picked figures, the cost gap the paper claims — and it is the
//! same code path the `tests/differential.rs` harness runs, so its timings
//! predict the harness's budget consumption as later PRs scale the sweep up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oil_dataflow::hsdf::HsdfGraph;
use oil_dataflow::statespace::analyze_self_timed_budgeted;
use oil_gen::{MultiRateScenario, PairScenario, ProgramScenario, RingScenario};

const BATCH: u64 = 50;

fn print_sweep_profile() {
    let mut live_rings = 0u32;
    let mut consistent = 0u32;
    let mut live_pairs = 0u32;
    for seed in 0..BATCH {
        if RingScenario::generate(seed).total_tokens() > 0 {
            live_rings += 1;
        }
        if MultiRateScenario::generate(seed).sdf().is_consistent() {
            consistent += 1;
        }
        let pair = PairScenario::generate(seed);
        if pair.sdf(pair.capacity).check_deadlock_free().is_ok() {
            live_pairs += 1;
        }
    }
    println!("\n[sweep] profile over {BATCH} seeds per class:");
    println!("  rings:     {live_rings}/{BATCH} live");
    println!("  multirate: {consistent}/{BATCH} rate-consistent");
    println!("  pairs:     {live_pairs}/{BATCH} deadlock-free");
}

fn bench_scenario_sweep(c: &mut Criterion) {
    print_sweep_profile();

    let mut group = c.benchmark_group("scenario_sweep");
    group.sample_size(10);

    // Rings: polynomial CTA vs the two exponential baselines on one batch.
    group.bench_function(BenchmarkId::new("rings", "cta_maximal_rates"), |b| {
        b.iter(|| {
            (0..BATCH)
                .filter(|&s| RingScenario::generate(s).cta().maximal_rates().is_ok())
                .count()
        })
    });
    group.bench_function(BenchmarkId::new("rings", "exact_state_space"), |b| {
        b.iter(|| {
            (0..BATCH)
                .filter(|&s| {
                    analyze_self_timed_budgeted(&RingScenario::generate(s).sdf(), 100_000, 100_000)
                        .is_ok()
                })
                .count()
        })
    });
    group.bench_function(BenchmarkId::new("rings", "exact_hsdf_ratio"), |b| {
        b.iter(|| {
            (0..BATCH)
                .filter(|&s| {
                    let ring = RingScenario::generate(s);
                    HsdfGraph::expand(&ring.sdf())
                        .ok()
                        .and_then(|h| {
                            h.maximum_cycle_ratio_exact_with(&ring.hsdf_durations_exact())
                        })
                        .is_some()
                })
                .count()
        })
    });

    // Multi-rate topologies: verdict agreement per batch.
    group.bench_function(BenchmarkId::new("multirate", "cta_consistency"), |b| {
        b.iter(|| {
            (0..BATCH)
                .filter(|&s| {
                    MultiRateScenario::generate(s)
                        .cta(1000)
                        .check_consistency()
                        .is_ok()
                })
                .count()
        })
    });
    group.bench_function(BenchmarkId::new("multirate", "repetition_vector"), |b| {
        b.iter(|| {
            (0..BATCH)
                .filter(|&s| {
                    MultiRateScenario::generate(s)
                        .sdf()
                        .repetition_vector()
                        .is_ok()
                })
                .count()
        })
    });

    // Full pipeline: generation + compilation of random OIL programs.
    group.bench_function(BenchmarkId::new("programs", "generate_and_compile"), |b| {
        use oil_compiler::{compile, CompilerOptions};
        b.iter(|| {
            (0..8u64)
                .filter(|&s| {
                    let sc = ProgramScenario::generate(s);
                    compile(&sc.source, &sc.registry, &CompilerOptions::default()).is_ok()
                })
                .count()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_scenario_sweep);
criterion_main!(benches);
