//! E8 — Figs. 11 and 12: the PAL decoder case study.
//!
//! Regenerates the paper's case-study result: the PAL decoder expressed in
//! OIL is accepted by the temporal analysis, its channels run at 6.4 MS/s,
//! 4 MS/s, 256 kS/s and 32 kS/s with the conversion factors 10/16, 1/25 and
//! 1/8, buffer capacities are computed, the audio/video skew is zero and a
//! simulated execution meets every constraint. The benchmarks measure the
//! cost of compiling/analysing the decoder and of simulating it.

use criterion::{criterion_group, criterion_main, Criterion};
use oil_dsp::CompositeSignal;
use oil_pal::{analyze_pal, simulate_pal, NativePalDecoder};

fn print_pal_report() {
    let (compiled, analysis) = analyze_pal().unwrap();
    println!("\n[Fig.11/12 / E8] PAL decoder analysis");
    println!(
        "  CTA model: {} components, {} connections",
        analysis.cta_components, analysis.cta_connections
    );
    println!("  channel rates (paper: rf 6.4 MS/s, vid 4 MS/s, aud 256 kS/s, speakers 32 kS/s):");
    for (name, rate) in &analysis.channel_rates {
        println!("    {name:>10}: {:>12.0} samples/s", rate.to_f64());
    }
    println!(
        "  conversion factors: vid/mvs = {} (10/16), aud/mas = {} (1/25), spk/aud = {} (1/8)",
        analysis.channel_rates["vid"] / analysis.channel_rates["mvs"],
        analysis.channel_rates["aud"] / analysis.channel_rates["mas"],
        analysis.channel_rates["speakers"] / analysis.channel_rates["aud"]
    );
    println!("  buffer capacities:");
    for (name, cap) in &analysis.channel_capacities {
        println!("    {name:>10}: {cap} samples");
    }
    println!(
        "  latency rf->screen {:.3} us, rf->speakers {:.3} us, skew {:.3} us",
        analysis.latency_rf_to_screen_seconds() * 1e6,
        analysis.latency_rf_to_speakers_seconds() * 1e6,
        analysis.av_skew_seconds() * 1e6
    );
    println!("  generated task modules: {}", compiled.generated.len());

    let report = simulate_pal(1e-3).unwrap();
    println!(
        "  simulation (1 ms): screen {:.0} S/s, speakers {:.0} S/s, misses {}, overflows {}",
        report.screen_rate,
        report.speaker_rate,
        report.metrics.total_misses(),
        report.metrics.total_overflows()
    );
}

fn bench_pal(c: &mut Criterion) {
    print_pal_report();

    let mut group = c.benchmark_group("pal_decoder");
    group.sample_size(10);

    group.bench_function("analyze", |b| b.iter(|| analyze_pal().unwrap()));
    group.bench_function("simulate_1ms", |b| b.iter(|| simulate_pal(1e-3).unwrap()));
    group.bench_function("native_decode_10ms", |b| {
        let mut signal = CompositeSignal::pal_default();
        let rf = signal.block(64_000);
        b.iter(|| {
            let mut decoder = NativePalDecoder::default();
            decoder.decode(&rf)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pal);
criterion_main!(benches);
