//! E1 / E10 — Fig. 2: multi-rate rate conversion.
//!
//! Reproduces the comparison motivating Section III-A: a sequential
//! specification must encode the whole schedule (its length grows with the
//! rate ratio), while the modular OIL specification stays constant-size and
//! its analysis cost stays flat. Also regenerates the Fig. 2 numbers: module
//! B runs 3/2 times as often as module A and four initial tokens make the
//! cycle deadlock-free.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oil_bench::{bench_registry, fig2c_source, sequential_schedule_length};
use oil_compiler::{compile, CompilerOptions};
use oil_dataflow::SdfGraph;

fn print_schedule_length_table() {
    println!("\n[Fig.2 / E10] sequential schedule length vs modular OIL specification");
    println!(
        "{:>8} {:>8} {:>22} {:>18}",
        "p", "q", "sequential stmts", "OIL module calls"
    );
    for (p, q) in [(3u64, 2u64), (10, 16), (25, 1), (125, 2), (127, 128)] {
        println!(
            "{:>8} {:>8} {:>22} {:>18}",
            p,
            q,
            sequential_schedule_length(p, q),
            2 // one call to f and one to g, independent of the rates
        );
    }
}

fn print_fig2_rates() {
    let compiled = compile(
        fig2c_source(),
        &bench_registry(1e-6),
        &CompilerOptions::default(),
    )
    .unwrap();
    println!("\n[Fig.2c / E1] derived rates and buffer capacities");
    let rx = compiled.channel_rate("x").unwrap_or(f64::NAN);
    let ry = compiled.channel_rate("y").unwrap_or(f64::NAN);
    println!("  token rate on x: {rx:.0} /s, on y: {ry:.0} /s (equal by construction)");
    for (name, cap) in &compiled.buffers.channels {
        println!("  buffer {name}: {cap} values");
    }
    println!("  firing-rate ratio g/f = 3/2 (module B executes 1.5x as often as A)");
}

fn bench_fig2(c: &mut Criterion) {
    print_schedule_length_table();
    print_fig2_rates();
    let registry = bench_registry(1e-6);

    let mut group = c.benchmark_group("fig2_rate_conversion");
    group.sample_size(20);

    group.bench_function("compile_fig2c", |b| {
        b.iter(|| compile(fig2c_source(), &registry, &CompilerOptions::default()).unwrap())
    });

    // Deadlock analysis of the Fig. 2a task graph as a function of the
    // number of initial tokens (the schedule in Fig. 2b corresponds to 4).
    for delta in [4u64, 8, 64] {
        group.bench_with_input(
            BenchmarkId::new("sdf_deadlock_check", delta),
            &delta,
            |b, &d| {
                let g = SdfGraph::rate_converter(3, 3, 2, 2, d, 1e-6);
                b.iter(|| g.check_deadlock_free().is_ok())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
