//! E11 / E12 / ablations — black-box composition and design choices.
//!
//! * **Black-box composition (E11)**: a library module is analysed once,
//!   hidden behind its rate/latency interface, and composed into an
//!   application — compared against re-analysing the flat model.
//! * **Buffer sizing vs exact search**: the CTA capacities (sufficient,
//!   polynomial) compared with the minimal capacities found by state-space
//!   search on the dataflow model.
//! * **Guarded-task parallelization (E12)**: compile time of modal programs
//!   as the number of modes grows (every branch becomes an unconditionally
//!   executing task).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oil_bench::bench_registry;
use oil_compiler::{compile, CompilerOptions};
use oil_cta::{hide_component, CtaModel, Rational};
use oil_dataflow::statespace::analyze_self_timed;
use oil_dataflow::SdfGraph;

/// A library component with `stages` internal processing steps.
fn library_model(stages: usize) -> CtaModel {
    let max = Some(Rational::from_int(100_000));
    let us = Rational::new(1, 1_000_000);
    let zero = Rational::ZERO;
    let mut m = CtaModel::new();
    let lib = m.add_component("lib", None);
    let input = m.add_port(lib, "in", max);
    let output = m.add_port(lib, "out", max);
    let mut prev = input;
    for i in 0..stages {
        let p = m.add_port(lib, format!("s{i}"), max);
        m.connect(prev, p, us, zero, Rational::ONE);
        prev = p;
    }
    m.connect(prev, output, us, zero, Rational::ONE);
    // Environment connections so `in`/`out` stay interface ports.
    let env = m.add_component("env", None);
    let src = m.add_required_rate_port(env, "src", Rational::from_int(10_000));
    let snk = m.add_port(env, "snk", max);
    m.connect(src, input, zero, zero, Rational::ONE);
    m.connect(output, snk, zero, zero, Rational::ONE);
    m
}

/// An OIL program with `modes` alternative branches inside one module.
fn modal_program(modes: usize) -> String {
    let mut body = String::new();
    body.push_str("switch(a) ");
    for m in 0..modes {
        body.push_str(&format!("case {m} {{ f(a, out b); }} "));
    }
    body.push_str("default { g(a, out b); }");
    format!(
        "mod seq M(int a, out int b){{ loop{{ {body} }} while(1); }}\n\
         mod par T(){{ source int x = src() @ 1 kHz; sink int y = snk() @ 1 kHz; M(x, out y) }}"
    )
}

fn print_buffer_sizing_comparison() {
    println!("\n[ablation] CTA sufficient capacities vs exact minimum (two-actor cycle)");
    println!(
        "{:>8} {:>20} {:>20}",
        "rates", "exact max tokens", "CTA capacity"
    );
    for &(p, q) in &[(3u64, 2u64), (5, 4), (10, 16)] {
        let tokens = 2 * p.max(q);
        let sdf = SdfGraph::rate_converter(p, p, q, q, tokens, 1e-6);
        let exact = analyze_self_timed(&sdf, 100_000).unwrap();
        let cta = oil_bench::multirate_cycle_cta(p, q, tokens);
        let sized = oil_cta::size_buffers(&cta).unwrap();
        println!(
            "{:>8} {:>20} {:>20}",
            format!("{p}:{q}"),
            exact.max_tokens_per_edge.iter().max().unwrap(),
            sized.capacities.values().max().copied().unwrap_or(tokens)
        );
    }
}

fn bench_ablation(c: &mut Criterion) {
    print_buffer_sizing_comparison();
    let registry = bench_registry(1e-6);

    let mut group = c.benchmark_group("ablation");
    group.sample_size(15);

    // E11: analysing a composition with the library as a black box vs flat.
    for stages in [4usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("flat_analysis", stages),
            &stages,
            |b, &s| {
                let m = library_model(s);
                b.iter(|| m.check_consistency().unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("blackbox_analysis", stages),
            &stages,
            |b, &s| {
                let m = library_model(s);
                let lib = m.component_by_name("lib").unwrap();
                // Hiding happens once, at library-release time.
                let hidden = hide_component(&m, lib).unwrap();
                b.iter(|| hidden.check_consistency().unwrap())
            },
        );
    }
    group.bench_function("hide_library_64", |b| {
        let m = library_model(64);
        let lib = m.component_by_name("lib").unwrap();
        b.iter(|| hide_component(&m, lib).unwrap())
    });

    // E12: modal programs — compile time as the number of modes grows.
    for modes in [2usize, 8, 32] {
        let src = modal_program(modes);
        group.bench_with_input(BenchmarkId::new("modal_compile", modes), &src, |b, src| {
            b.iter(|| compile(src, &registry, &CompilerOptions::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
