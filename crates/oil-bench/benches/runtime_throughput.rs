//! Runtime throughput: the execution engines head to head.
//!
//! Four engines over three workloads, each executed over a fixed virtual
//! horizon while the wall clock is measured:
//!
//! * **sim** — the discrete-event simulator: token origins only, no kernel
//!   work, no threads. The scheduling-overhead floor.
//! * **calendar** — `oil-rt::exec` at 1/2/4 worker threads: real kernels,
//!   but every firing serialises through the virtual-clock calendar (the
//!   price of bit-identical traces). Expected to scale *negatively*: more
//!   threads add handoff cost to a scheduler-bound loop.
//! * **selftimed** — `oil-rt::selftimed` at 1/2/4 worker threads: real
//!   kernels, no clock, tasks fire whenever data and space allow with
//!   repetition-vector batching.
//! * **staticsched** — `oil-rt::staticsched` at 1/2/4 workers: each worker
//!   replays the compiled periodic firing list (`oil_compiler::schedule`)
//!   with zero readiness scanning; runs of consecutive firings execute as
//!   single blocked kernel calls.
//!
//! Workloads:
//!
//! * **pal** — the PAL decoder with its real DSP kernels (Fig. 11): one RF
//!   source at 6.4 MS/s through mixers, filters and resamplers to the
//!   display and speaker sinks;
//! * **sdr** — an FM-receiver-style chain (wideband source → decimator →
//!   demod mixer → audio resampler → sink) with real DSP kernels, the
//!   `ProgramScenario::generate_sdr` topology at radio-ish rates;
//! * **wide** — eight independent chains with deliberately heavy FIR
//!   kernels (2047 taps), the shape where kernel work dominates scheduling
//!   and worker threads pay off.
//!
//! Results are printed and written to `BENCH_runtime.json` at the workspace
//! root under **schema v8**: one record per (workload, engine_mode,
//! threads), each carrying the host parallelism measured *at that row's
//! execution* (`std::thread::available_parallelism()` can change under
//! cgroup pressure mid-run), a `"degraded": true` flag whenever
//! `threads > host_parallelism` — so 2/4-thread numbers taken on a 1-core
//! host are never silently mistaken for parallel scaling — the
//! schedule-fusion counters of the static-order rows (`runs_fused`,
//! `rings_elided`, `fused_chain_len_max`; zero on the other engines),
//! `engine_actual` (v5): the engine that really produced the row,
//! `transition_firings` (v6): modal firings spent draining a mode-switch
//! seam (0 on non-modal and union-advance workloads), the runtime-trace
//! telemetry columns (v7) — `park_count`, `ring_highwater_max`,
//! `backpressure_wait_ns`, `seam_latency_observed_ns` — and (new in v8):
//!
//! * `telemetry_source` — where those four columns came from: `"inline"`
//!   when the row itself ran traced (`OIL_RT_TRACE=1`), `"companion"` when
//!   a short traced companion run at the smoke horizon supplied them (the
//!   headline rows run untraced, and schema v7's constant zeros taught
//!   nothing), `"none"` on the sim rows;
//! * `cost_model_hash` — the fingerprint of the `KernelCostModel` that
//!   steered a static-order row's partition (`OIL_COST_MODEL`), or null;
//! * `predicted_utilization` / `measured_utilization` — per-worker
//!   utilization: predicted by synthesis from its cost vector, measured by
//!   the metrics registry (`OIL_RT_METRICS=1`; empty when metrics are off);
//! * `drift` — the registry's CTA-drift verdict for the row
//!   (`ok`/`degrading`/`violated`, `none` with metrics off);
//!
//! plus a top-level `cost_model` provenance object (hash, host, entry
//! count) when a model steered the run. A traced row (inline or companion)
//! that dropped events prints a `WARNING:` line — a saturated buffer must
//! not silently truncate the evidence.
//! A requested staticsched row whose synthesis is rejected falls back to
//! selftimed **loudly** — `engine_actual` records it, a `FALLBACK:` line is
//! printed, and the smoke run fails — never a mislabelled number.
//!
//! `cargo bench -p oil-bench --bench runtime_throughput -- --test` runs a
//! smoke-sized horizon (CI). `--floor-pal-staticsched <tokens/s>` makes the
//! run fail when the PAL static-order single-worker row falls below the
//! given throughput — the CI regression floor for the fused engine.
//! `--compare <baseline.json>` fails the run when any non-degraded engine
//! row regresses more than 25% in tokens/wall-second against the same
//! non-degraded row of a committed baseline (sim rows are reference, not
//! gated).

use oil_compiler::rtgraph::{self, RtGraph};
use oil_compiler::schedule::{FusionStats, ScheduleError, SynthesisConfig};
use oil_compiler::{compile, schedule, CompilerOptions};
use oil_dsp::{Decimator, FirFilter, Mixer, RationalResampler};
use oil_lang::registry::{FunctionRegistry, FunctionSignature};
use oil_rt::{
    env_metrics, env_trace, execute, execute_selftimed, execute_staticsched, DriftVerdict, Kernel,
    KernelLibrary, MetricsConfig, MetricsReport, RtConfig, SelfTimedConfig, StaticConfig,
    TraceReport,
};
use oil_sim::{build_simulation_from_graph, picos, SimulationConfig};
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    workload: &'static str,
    engine_mode: &'static str,
    /// The engine that actually produced this row. Differs from
    /// `engine_mode` only when a requested staticsched row fell back to
    /// selftimed because synthesis rejected the graph — recorded loudly
    /// instead of silently mislabelling the number (schema v5).
    engine_actual: &'static str,
    threads: usize,
    virtual_s: f64,
    wall_ms: f64,
    tokens: u64,
    tokens_per_wall_s: f64,
    /// Host parallelism observed when this row ran.
    host_parallelism: usize,
    /// Schedule-fusion counters (zero for every engine but staticsched).
    fusion: FusionStats,
    /// Modal firings spent draining a mode-switch seam (schema v6; 0 for
    /// non-modal workloads and for engines without seam accounting).
    transition_firings: u64,
    /// Where the four telemetry columns below came from (schema v8):
    /// `"inline"` (this row ran traced), `"companion"` (a short traced run
    /// at the smoke horizon), or `"none"` (sim rows).
    telemetry_source: &'static str,
    /// Runtime-trace telemetry (schema v7): condvar + ring parks.
    park_count: u64,
    /// Highest ring occupancy observed after a push.
    ring_highwater_max: usize,
    /// Nanoseconds blocked on ring backpressure.
    backpressure_wait_ns: u64,
    /// Longest observed mode-switch seam span.
    seam_latency_observed_ns: u64,
    /// Fingerprint of the cost model that steered this static-order row's
    /// partition (schema v8; None off staticsched or without a model).
    cost_model_hash: Option<u64>,
    /// Synthesis-predicted per-worker utilization (staticsched rows only).
    predicted_utilization: Vec<f64>,
    /// Metrics-measured per-worker utilization (empty with metrics off).
    measured_utilization: Vec<f64>,
    /// The metrics registry's drift verdict for this row (`none` when
    /// metrics are off).
    drift: &'static str,
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The v7 telemetry quadruple of a row.
fn trace_fields(tr: &TraceReport) -> (u64, usize, u64, u64) {
    (
        tr.park_count(),
        tr.ring_highwater_max(),
        tr.backpressure_wait_ns(),
        tr.seam_latency_observed_ns(),
    )
}

/// A saturated trace buffer silently truncates the evidence; say so.
fn warn_drops(label: &str, tr: &TraceReport) {
    if tr.dropped > 0 {
        eprintln!(
            "WARNING: {label}: traced run dropped {} event(s) — telemetry \
             under-counts; raise the horizon or lower the worker count",
            tr.dropped
        );
    }
}

/// Telemetry for one engine row: from the row's own trace when tracing is
/// on, else from a traced companion run at the smoke horizon (schema v7
/// emitted constant zeros here).
fn telemetry(
    label: &str,
    inline: Option<&TraceReport>,
    companion: impl FnOnce() -> Option<TraceReport>,
) -> (&'static str, u64, usize, u64, u64) {
    if let Some(tr) = inline {
        warn_drops(label, tr);
        let (p, h, b, s) = trace_fields(tr);
        return ("inline", p, h, b, s);
    }
    match companion() {
        Some(tr) => {
            warn_drops(&format!("{label} (companion)"), &tr);
            let (p, h, b, s) = trace_fields(&tr);
            ("companion", p, h, b, s)
        }
        None => ("none", 0, 0, 0, 0),
    }
}

fn drift_tag(m: Option<&MetricsReport>) -> &'static str {
    match m.map(|m| &m.verdict) {
        None => "none",
        Some(DriftVerdict::Ok) => "ok",
        Some(DriftVerdict::Degrading { .. }) => "degrading",
        Some(DriftVerdict::Violated { .. }) => "violated",
    }
}

fn measured_utilization(m: Option<&MetricsReport>, wall: std::time::Duration) -> Vec<f64> {
    m.map(|m| m.measured_utilization(wall.as_nanos() as u64))
        .unwrap_or_default()
}

fn pal_graph() -> RtGraph {
    let (compiled, _) = oil_pal::analyze_pal().expect("PAL decoder is schedulable");
    rtgraph::lower_with_registry(&compiled, &oil_pal::pal_registry())
}

/// The SDR chain: a fixed `generate_sdr`-shaped program at radio-ish rates
/// (512 kHz wideband → ÷8 decimation → mixer demod → 2:3 resample → 96 kHz
/// sink), bound to real DSP kernels.
fn sdr_graph() -> (RtGraph, KernelLibrary) {
    const WIDEBAND: f64 = 512_000.0;
    let src = r#"
        mod seq Decim(int a, out int b){ loop{ f0(a:8, out b); } while(1); }
        mod seq Demod(int a, out int b){ loop{ f1(a, out b); } while(1); }
        mod seq Resamp(int a, out int b){ loop{ f2(a:2, out b:3); } while(1); }
        mod par Top(){
            fifo int ifs, af;
            source int x = src() @ 512 kHz;
            sink int y = snk() @ 96 kHz;
            Decim(x, out ifs) || Demod(ifs, out af) || Resamp(af, out y)
        }
    "#;
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSignature::pure("f0", 1e-5)); // fires at 64 kHz
    reg.register(FunctionSignature::pure("f1", 1e-5));
    reg.register(FunctionSignature::pure("f2", 2e-5)); // fires at 32 kHz
    reg.register(FunctionSignature::pure("src", 1e-7));
    reg.register(FunctionSignature::pure("snk", 1e-7));
    let compiled = compile(src, &reg, &CompilerOptions::default()).expect("sdr program");
    let graph = rtgraph::lower(&compiled);

    let mut lib = KernelLibrary::new();
    lib.register(
        "f0",
        Box::new(|| Kernel::Decimate(Decimator::new(8, WIDEBAND, 63))),
    );
    lib.register(
        "f1",
        Box::new(|| Kernel::Mix(Mixer::new(16_000.0, WIDEBAND / 8.0))),
    );
    lib.register(
        "f2",
        Box::new(|| Kernel::Resample(RationalResampler::new(3, 2, WIDEBAND / 8.0, 63))),
    );
    (graph, lib)
}

/// Eight independent source → filter → sink chains at 4 kHz: wide enough
/// that firings overlap, with kernels heavy enough that the pool matters.
fn wide_graph() -> (RtGraph, KernelLibrary) {
    const CHAINS: usize = 8;
    let mut src = String::new();
    let _ = writeln!(
        src,
        "mod seq S(int a, out int b){{ loop{{ heavy(a, out b); }} while(1); }}"
    );
    let _ = writeln!(src, "mod par Top(){{");
    for i in 0..CHAINS {
        let _ = writeln!(src, "    source int x{i} = src() @ 4 kHz;");
        let _ = writeln!(src, "    sink int y{i} = snk() @ 4 kHz;");
    }
    let calls: Vec<String> = (0..CHAINS).map(|i| format!("S(x{i}, out y{i})")).collect();
    let _ = writeln!(src, "    {}\n}}", calls.join(" || "));

    let mut reg = FunctionRegistry::new();
    // The declared response time (75% of the period) is the virtual-time
    // budget; the wall-clock kernel below costs real microseconds.
    reg.register(FunctionSignature::pure("heavy", 1.875e-4));
    reg.register(FunctionSignature::pure("src", 1e-7));
    reg.register(FunctionSignature::pure("snk", 1e-7));
    let compiled = compile(&src, &reg, &CompilerOptions::default()).expect("wide program");
    let graph = rtgraph::lower(&compiled);

    let mut lib = KernelLibrary::new();
    lib.register(
        "heavy",
        Box::new(|| Kernel::Fir(FirFilter::low_pass(200.0, 4_000.0, 2047))),
    );
    (graph, lib)
}

const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

#[allow(clippy::too_many_arguments)]
fn bench_workload(
    rows: &mut Vec<Row>,
    workload: &'static str,
    graph: &RtGraph,
    lib: &KernelLibrary,
    virtual_s: f64,
    companion_s: f64,
    synth: &SynthesisConfig,
    trace: bool,
    metrics: Option<MetricsConfig>,
) {
    // Simulator floor (token origins only, no kernels, no trace recording).
    let mut net = build_simulation_from_graph(graph);
    let started = Instant::now();
    let sim_metrics = net.run(
        picos(virtual_s),
        &SimulationConfig {
            cores: 0,
            warmup_ticks: 64,
        },
    );
    let wall = started.elapsed();
    // Same currency as the runtime reports — values actually pushed into
    // buffers — so every row is directly comparable.
    let tokens = sim_metrics.tokens_written;
    rows.push(Row {
        workload,
        engine_mode: "sim",
        engine_actual: "sim",
        threads: 1,
        virtual_s,
        wall_ms: wall.as_secs_f64() * 1e3,
        tokens,
        tokens_per_wall_s: tokens as f64 / wall.as_secs_f64(),
        host_parallelism: host_parallelism(),
        fusion: FusionStats::default(),
        transition_firings: 0,
        telemetry_source: "none",
        park_count: 0,
        ring_highwater_max: 0,
        backpressure_wait_ns: 0,
        seam_latency_observed_ns: 0,
        cost_model_hash: None,
        predicted_utilization: Vec::new(),
        measured_utilization: Vec::new(),
        drift: "none",
    });

    for threads in THREAD_SWEEP {
        let run = |trace: bool, horizon: f64| {
            execute(
                graph,
                lib,
                picos(horizon),
                &RtConfig {
                    threads,
                    warmup_ticks: 64,
                    record_traces: false,
                    record_values: false,
                    trace,
                    metrics,
                },
            )
        };
        let report = run(trace, virtual_s);
        assert!(
            report.meets_real_time_constraints(),
            "{workload}: calendar engine missed constraints at {threads} threads"
        );
        let label = format!("{workload} calendar@{threads}");
        let (telemetry_source, park_count, ring_highwater_max, backpressure, seam) =
            telemetry(&label, report.trace_report.as_ref(), || {
                run(true, companion_s).trace_report
            });
        rows.push(Row {
            workload,
            engine_mode: "calendar",
            engine_actual: "calendar",
            threads,
            virtual_s,
            wall_ms: report.wall.as_secs_f64() * 1e3,
            tokens: report.tokens,
            tokens_per_wall_s: report.tokens as f64 / report.wall.as_secs_f64(),
            host_parallelism: host_parallelism(),
            fusion: FusionStats::default(),
            transition_firings: 0,
            telemetry_source,
            park_count,
            ring_highwater_max,
            backpressure_wait_ns: backpressure,
            seam_latency_observed_ns: seam,
            cost_model_hash: None,
            predicted_utilization: Vec::new(),
            measured_utilization: measured_utilization(report.metrics.as_ref(), report.wall),
            drift: drift_tag(report.metrics.as_ref()),
        });
    }

    let plan = rtgraph::plan(graph);
    for threads in THREAD_SWEEP {
        let run = |trace: bool, horizon: f64| {
            execute_selftimed(
                graph,
                &plan,
                lib,
                picos(horizon),
                &SelfTimedConfig {
                    threads,
                    record_values: false,
                    trace,
                    metrics,
                    ..SelfTimedConfig::default()
                },
            )
        };
        let report = run(trace, virtual_s);
        assert!(
            !report.deadlocked,
            "{workload}: self-timed engine deadlocked at {threads} threads"
        );
        let label = format!("{workload} selftimed@{threads}");
        let (telemetry_source, telemetry_parks, ring_highwater_max, backpressure, seam) =
            telemetry(&label, report.trace_report.as_ref(), || {
                run(true, companion_s).trace_report
            });
        rows.push(Row {
            workload,
            engine_mode: "selftimed",
            engine_actual: "selftimed",
            threads,
            virtual_s,
            wall_ms: report.wall.as_secs_f64() * 1e3,
            tokens: report.tokens,
            tokens_per_wall_s: report.tokens as f64 / report.wall.as_secs_f64(),
            host_parallelism: host_parallelism(),
            fusion: FusionStats::default(),
            transition_firings: 0,
            telemetry_source,
            // The self-timed engine counts parks unconditionally; the
            // row's own count beats the companion's shorter horizon.
            park_count: if telemetry_source == "inline" {
                telemetry_parks
            } else {
                report.parks
            },
            ring_highwater_max,
            backpressure_wait_ns: backpressure,
            seam_latency_observed_ns: seam,
            cost_model_hash: None,
            predicted_utilization: Vec::new(),
            measured_utilization: measured_utilization(report.metrics.as_ref(), report.wall),
            drift: drift_tag(report.metrics.as_ref()),
        });
    }

    for workers in THREAD_SWEEP {
        match schedule::synthesize(graph, &plan, workers, synth) {
            Ok(schedule) => {
                let run = |trace: bool, horizon: f64| {
                    execute_staticsched(
                        graph,
                        &schedule,
                        lib,
                        picos(horizon),
                        &StaticConfig {
                            record_values: false,
                            trace,
                            metrics,
                            ..StaticConfig::default()
                        },
                    )
                };
                let report = run(trace, virtual_s);
                let label = format!("{workload} staticsched@{workers}");
                let (telemetry_source, park_count, ring_highwater_max, backpressure, seam) =
                    telemetry(&label, report.trace_report.as_ref(), || {
                        run(true, companion_s).trace_report
                    });
                rows.push(Row {
                    workload,
                    engine_mode: "staticsched",
                    engine_actual: "staticsched",
                    threads: report.threads,
                    virtual_s,
                    wall_ms: report.wall.as_secs_f64() * 1e3,
                    tokens: report.tokens,
                    tokens_per_wall_s: report.tokens as f64 / report.wall.as_secs_f64(),
                    host_parallelism: host_parallelism(),
                    fusion: report.fusion,
                    transition_firings: report.transition_firings,
                    telemetry_source,
                    park_count,
                    ring_highwater_max,
                    backpressure_wait_ns: backpressure,
                    seam_latency_observed_ns: seam,
                    cost_model_hash: schedule.cost_model_hash,
                    predicted_utilization: schedule.predicted_utilization.clone(),
                    measured_utilization: measured_utilization(
                        report.metrics.as_ref(),
                        report.wall,
                    ),
                    drift: drift_tag(report.metrics.as_ref()),
                });
            }
            Err(e @ ScheduleError::NonUniformCluster { .. }) => {
                // The graph admits no static-order schedule (not even
                // per-mode ones): fall back to the self-timed engine and
                // say so — the row records the engine actually used and
                // the smoke run fails on it.
                eprintln!(
                    "WARNING: {workload}: staticsched@{workers} fell back to \
                     selftimed: {e}"
                );
                let run = |trace: bool, horizon: f64| {
                    execute_selftimed(
                        graph,
                        &plan,
                        lib,
                        picos(horizon),
                        &SelfTimedConfig {
                            threads: workers,
                            record_values: false,
                            trace,
                            metrics,
                            ..SelfTimedConfig::default()
                        },
                    )
                };
                let report = run(trace, virtual_s);
                let label = format!("{workload} staticsched@{workers} (fallback)");
                let (telemetry_source, telemetry_parks, ring_highwater_max, backpressure, seam) =
                    telemetry(&label, report.trace_report.as_ref(), || {
                        run(true, companion_s).trace_report
                    });
                rows.push(Row {
                    workload,
                    engine_mode: "staticsched",
                    engine_actual: "selftimed",
                    threads: report.threads,
                    virtual_s,
                    wall_ms: report.wall.as_secs_f64() * 1e3,
                    tokens: report.tokens,
                    tokens_per_wall_s: report.tokens as f64 / report.wall.as_secs_f64(),
                    host_parallelism: host_parallelism(),
                    fusion: FusionStats::default(),
                    transition_firings: report.transition_firings,
                    telemetry_source,
                    park_count: if telemetry_source == "inline" {
                        telemetry_parks
                    } else {
                        report.parks
                    },
                    ring_highwater_max,
                    backpressure_wait_ns: backpressure,
                    seam_latency_observed_ns: seam,
                    cost_model_hash: None,
                    predicted_utilization: Vec::new(),
                    measured_utilization: measured_utilization(
                        report.metrics.as_ref(),
                        report.wall,
                    ),
                    drift: drift_tag(report.metrics.as_ref()),
                });
            }
            Err(e) => panic!("{workload}: schedule synthesis at {workers} workers: {e}"),
        }
    }
}

fn utilization_json(u: &[f64]) -> String {
    let mut s = String::from("[");
    for (i, x) in u.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{x:.4}");
    }
    s.push(']');
    s
}

/// Pull the value of `key` out of a one-line schema-v7/v8 row. Scalar
/// fields only (the array fields are emitted after every scalar).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

struct BaselineRow {
    workload: String,
    engine_mode: String,
    threads: usize,
    virtual_s: f64,
    tokens_per_wall_s: f64,
    degraded: bool,
}

/// Parse the committed BENCH_runtime.json (one row per line, as this
/// binary writes it — schema v7 or v8). A hand-rolled reader: the vendored
/// serde is a stub.
fn parse_baseline(raw: &str) -> Vec<BaselineRow> {
    raw.lines()
        .filter_map(|line| {
            let workload = field(line, "workload")?.to_string();
            Some(BaselineRow {
                workload,
                engine_mode: field(line, "engine_mode")?.to_string(),
                threads: field(line, "threads")?.parse().ok()?,
                virtual_s: field(line, "virtual_seconds")?.parse().ok()?,
                tokens_per_wall_s: field(line, "tokens_per_wall_second")?.parse().ok()?,
                degraded: field(line, "degraded")? == "true",
            })
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    // CI regression floor for the fused static-order engine: the run fails
    // when the PAL staticsched single-worker row drops below this many
    // tokens per wall-second.
    let floor_pal_staticsched: Option<f64> = args
        .iter()
        .position(|a| a == "--floor-pal-staticsched")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .expect("--floor-pal-staticsched takes a tokens/s number")
        });
    let compare_path: Option<String> = args.iter().position(|a| a == "--compare").map(|i| {
        args.get(i + 1)
            .cloned()
            .expect("--compare takes a baseline JSON path")
    });
    // Read the baseline up front — this run overwrites BENCH_runtime.json
    // at the workspace root, and comparing against our own fresh output
    // would make the gate vacuous.
    let baseline: Option<(String, Vec<BaselineRow>)> = compare_path.map(|path| {
        // Cargo runs bench binaries from the package dir; accept a path
        // relative to the workspace root too (where this binary writes).
        let resolved = if std::path::Path::new(&path).exists() {
            std::path::PathBuf::from(&path)
        } else {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../../")
                .join(&path)
        };
        let raw = std::fs::read_to_string(&resolved)
            .unwrap_or_else(|e| panic!("--compare: cannot read {path}: {e}"));
        let rows = parse_baseline(&raw);
        assert!(
            !rows.is_empty(),
            "--compare: no benchmark rows found in {path}"
        );
        (path, rows)
    });
    let (pal_s, sdr_s, wide_s) = if smoke {
        (1e-3, 0.05, 0.1)
    } else {
        (10e-3, 1.0, 2.0)
    };
    // Traced companions always run at the smoke horizon: telemetry shape,
    // not throughput, is what they report.
    let (pal_c, sdr_c, wide_c) = (1e-3, 0.05, 0.1);

    // The one place the fusion/cost-model toggles read the environment:
    // every synthesis below sees the same immutable config.
    let synth = SynthesisConfig::from_env();
    // Tracing is opt-in (OIL_RT_TRACE=1); the regression floor is always
    // gated on an untraced run, so the four telemetry columns of the
    // headline rows come from traced companion runs instead. Metrics are
    // equally opt-in (OIL_RT_METRICS=1) and ride the headline rows — the
    // registry is designed to be left on.
    let trace = env_trace();
    let metrics = env_metrics();

    let mut rows = Vec::new();
    let pal = pal_graph();
    bench_workload(
        &mut rows,
        "pal",
        &pal,
        &KernelLibrary::pal(),
        pal_s,
        pal_c,
        &synth,
        trace,
        metrics,
    );
    let (sdr, sdr_lib) = sdr_graph();
    bench_workload(
        &mut rows, "sdr", &sdr, &sdr_lib, sdr_s, sdr_c, &synth, trace, metrics,
    );
    let (wide, wide_lib) = wide_graph();
    bench_workload(
        &mut rows, "wide", &wide, &wide_lib, wide_s, wide_c, &synth, trace, metrics,
    );

    println!(
        "\n{:<8} {:<12} {:<12} {:>7} {:>10} {:>12} {:>12} {:>16} {:>6}",
        "workload",
        "engine",
        "actual",
        "threads",
        "virtual s",
        "wall ms",
        "tokens",
        "tokens/wall-s",
        "host"
    );
    for r in &rows {
        println!(
            "{:<8} {:<12} {:<12} {:>7} {:>10.4} {:>12.2} {:>12} {:>16.0} {:>6}",
            r.workload,
            r.engine_mode,
            r.engine_actual,
            r.threads,
            r.virtual_s,
            r.wall_ms,
            r.tokens,
            r.tokens_per_wall_s,
            r.host_parallelism
        );
    }

    // One line of runtime telemetry per engine row when the run is smoke-
    // sized — the CI leg's quick look at scheduler health without opening
    // the Perfetto trace.
    if smoke {
        for r in rows.iter().filter(|r| r.engine_mode != "sim") {
            println!(
                "telemetry[{}]: {} {}@{} parks={} ring_highwater_max={} \
                 backpressure_wait_ns={} seam_latency_observed_ns={} drift={}",
                r.telemetry_source,
                r.workload,
                r.engine_actual,
                r.threads,
                r.park_count,
                r.ring_highwater_max,
                r.backpressure_wait_ns,
                r.seam_latency_observed_ns,
                r.drift
            );
        }
    }

    // Machine-readable results at the workspace root (schema v8: see the
    // module docs for the field-by-field history). One row per line — the
    // `--compare` reader and external tooling rely on it.
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema_version\": 8,");
    match synth.cost_model.as_ref() {
        Some(m) => {
            let _ = writeln!(
                json,
                "  \"cost_model\": {{\"hash\": \"{:016x}\", \"host\": \"{}\", \
                 \"functions\": {}}},",
                m.fingerprint(),
                m.host,
                m.entries.len()
            );
        }
        None => {
            let _ = writeln!(json, "  \"cost_model\": null,");
        }
    }
    let _ = writeln!(json, "  \"benchmarks\": [");
    for (i, r) in rows.iter().enumerate() {
        let degraded = r.threads > r.host_parallelism;
        let cost_model_hash = match r.cost_model_hash {
            Some(h) => format!("\"{h:016x}\""),
            None => "null".to_string(),
        };
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"engine_mode\": \"{}\", \
             \"engine_actual\": \"{}\", \"threads\": {}, \
             \"virtual_seconds\": {}, \"wall_ms\": {:.3}, \"tokens\": {}, \
             \"tokens_per_wall_second\": {:.0}, \"host_parallelism\": {}, \
             \"degraded\": {}, \"runs_fused\": {}, \"rings_elided\": {}, \
             \"fused_chain_len_max\": {}, \"transition_firings\": {}, \
             \"telemetry_source\": \"{}\", \"park_count\": {}, \
             \"ring_highwater_max\": {}, \"backpressure_wait_ns\": {}, \
             \"seam_latency_observed_ns\": {}, \"cost_model_hash\": {}, \
             \"drift\": \"{}\", \"predicted_utilization\": {}, \
             \"measured_utilization\": {}}}{}",
            r.workload,
            r.engine_mode,
            r.engine_actual,
            r.threads,
            r.virtual_s,
            r.wall_ms,
            r.tokens,
            r.tokens_per_wall_s,
            r.host_parallelism,
            degraded,
            r.fusion.runs_fused,
            r.fusion.rings_elided,
            r.fusion.fused_chain_len_max,
            r.transition_firings,
            r.telemetry_source,
            r.park_count,
            r.ring_highwater_max,
            r.backpressure_wait_ns,
            r.seam_latency_observed_ns,
            cost_model_hash,
            r.drift,
            utilization_json(&r.predicted_utilization),
            utilization_json(&r.measured_utilization),
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_runtime.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }

    // A requested engine must be the engine that ran: any fallback row is
    // loud, and fatal under `--test` (the CI smoke leg).
    let fallbacks: Vec<&Row> = rows
        .iter()
        .filter(|r| r.engine_mode != r.engine_actual)
        .collect();
    for r in &fallbacks {
        eprintln!(
            "FALLBACK: {} {}@{} actually ran on {}",
            r.workload, r.engine_mode, r.threads, r.engine_actual
        );
    }
    if smoke && !fallbacks.is_empty() {
        eprintln!(
            "FAIL: {} requested staticsched row(s) silently fell back to selftimed",
            fallbacks.len()
        );
        std::process::exit(1);
    }

    if let Some(floor) = floor_pal_staticsched {
        let row = rows
            .iter()
            .find(|r| r.workload == "pal" && r.engine_mode == "staticsched" && r.threads == 1)
            .expect("the PAL staticsched@1 row exists");
        if row.tokens_per_wall_s < floor {
            eprintln!(
                "FAIL: PAL staticsched@1 throughput {:.0} tokens/s is below the \
                 regression floor {floor:.0}",
                row.tokens_per_wall_s
            );
            std::process::exit(1);
        }
        println!(
            "PAL staticsched@1 throughput {:.0} tokens/s clears the floor {floor:.0}",
            row.tokens_per_wall_s
        );
    }

    // Regression gate against a committed baseline: a non-degraded engine
    // row that lost more than 25% of its tokens/wall-second against the
    // same non-degraded baseline row fails the run. Degraded rows
    // (threads > host cores, either side) carry no signal and are
    // skipped, as are rows the baseline lacks (new workloads/engines) and
    // the sim rows — the no-kernel floor is a single-shot millisecond
    // measurement whose run-to-run swing exceeds the gate's threshold
    // (the scenario_sweep bench times the simulator properly).
    if let Some((path, baseline)) = baseline {
        let mut regressions = 0usize;
        let mut compared = 0usize;
        for r in rows
            .iter()
            .filter(|r| r.engine_mode != "sim" && r.threads <= r.host_parallelism)
        {
            // virtual_seconds is part of the key: a smoke-horizon row
            // against a full-horizon baseline (or vice versa) measures
            // fixed-cost amortisation, not a regression.
            let Some(b) = baseline.iter().find(|b| {
                b.workload == r.workload
                    && b.engine_mode == r.engine_mode
                    && b.threads == r.threads
                    && b.virtual_s == r.virtual_s
            }) else {
                continue;
            };
            if b.degraded || b.tokens_per_wall_s <= 0.0 {
                continue;
            }
            compared += 1;
            let ratio = r.tokens_per_wall_s / b.tokens_per_wall_s;
            if ratio < 0.75 {
                regressions += 1;
                eprintln!(
                    "REGRESSION: {} {}@{}: {:.0} tokens/s is {:.0}% of the \
                     baseline {:.0}",
                    r.workload,
                    r.engine_mode,
                    r.threads,
                    r.tokens_per_wall_s,
                    ratio * 100.0,
                    b.tokens_per_wall_s
                );
            }
        }
        // A gate that compared nothing proved nothing — refuse to pass
        // vacuously (horizon mismatch, all-degraded baseline, renamed
        // workloads all land here).
        if compared == 0 {
            eprintln!(
                "FAIL: --compare matched no baseline row (same workload, engine, \
                 threads and virtual horizon, both sides non-degraded) in {path}"
            );
            std::process::exit(1);
        }
        if regressions > 0 {
            eprintln!("FAIL: {regressions} non-degraded row(s) regressed >25% vs {path}");
            std::process::exit(1);
        }
        println!("bench-compare: {compared} row(s) compared, none regressed >25% vs {path}");
    }
}
