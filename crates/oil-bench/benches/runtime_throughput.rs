//! Runtime throughput: the execution engines head to head.
//!
//! Four engines over three workloads, each executed over a fixed virtual
//! horizon while the wall clock is measured:
//!
//! * **sim** — the discrete-event simulator: token origins only, no kernel
//!   work, no threads. The scheduling-overhead floor.
//! * **calendar** — `oil-rt::exec` at 1/2/4 worker threads: real kernels,
//!   but every firing serialises through the virtual-clock calendar (the
//!   price of bit-identical traces). Expected to scale *negatively*: more
//!   threads add handoff cost to a scheduler-bound loop.
//! * **selftimed** — `oil-rt::selftimed` at 1/2/4 worker threads: real
//!   kernels, no clock, tasks fire whenever data and space allow with
//!   repetition-vector batching.
//! * **staticsched** — `oil-rt::staticsched` at 1/2/4 workers: each worker
//!   replays the compiled periodic firing list (`oil_compiler::schedule`)
//!   with zero readiness scanning; runs of consecutive firings execute as
//!   single blocked kernel calls.
//!
//! Workloads:
//!
//! * **pal** — the PAL decoder with its real DSP kernels (Fig. 11): one RF
//!   source at 6.4 MS/s through mixers, filters and resamplers to the
//!   display and speaker sinks;
//! * **sdr** — an FM-receiver-style chain (wideband source → decimator →
//!   demod mixer → audio resampler → sink) with real DSP kernels, the
//!   `ProgramScenario::generate_sdr` topology at radio-ish rates;
//! * **wide** — eight independent chains with deliberately heavy FIR
//!   kernels (2047 taps), the shape where kernel work dominates scheduling
//!   and worker threads pay off.
//!
//! Results are printed and written to `BENCH_runtime.json` at the workspace
//! root under **schema v7**: one record per (workload, engine_mode,
//! threads), each carrying the host parallelism measured *at that row's
//! execution* (`std::thread::available_parallelism()` can change under
//! cgroup pressure mid-run), a `"degraded": true` flag whenever
//! `threads > host_parallelism` — so 2/4-thread numbers taken on a 1-core
//! host are never silently mistaken for parallel scaling — the
//! schedule-fusion counters of the static-order rows (`runs_fused`,
//! `rings_elided`, `fused_chain_len_max`; zero on the other engines),
//! `engine_actual` (v5): the engine that really produced the row,
//! `transition_firings` (v6): modal firings spent draining a mode-switch
//! seam (0 on non-modal and union-advance workloads), and (new in v7) the
//! runtime-trace telemetry of each row — `park_count`,
//! `ring_highwater_max`, `backpressure_wait_ns`,
//! `seam_latency_observed_ns` — populated when `OIL_RT_TRACE=1` enables
//! the tracer and 0 otherwise (except `park_count`, which the self-timed
//! engine counts unconditionally).
//! A requested staticsched row whose synthesis is rejected falls back to
//! selftimed **loudly** — `engine_actual` records it, a `FALLBACK:` line is
//! printed, and the smoke run fails — never a mislabelled number.
//!
//! `cargo bench -p oil-bench --bench runtime_throughput -- --test` runs a
//! smoke-sized horizon (CI). `--floor-pal-staticsched <tokens/s>` makes the
//! run fail when the PAL static-order single-worker row falls below the
//! given throughput — the CI regression floor for the fused engine.

use oil_compiler::rtgraph::{self, RtGraph};
use oil_compiler::schedule::{FusionStats, ScheduleError, SynthesisConfig};
use oil_compiler::{compile, schedule, CompilerOptions};
use oil_dsp::{Decimator, FirFilter, Mixer, RationalResampler};
use oil_lang::registry::{FunctionRegistry, FunctionSignature};
use oil_rt::{
    env_trace, execute, execute_selftimed, execute_staticsched, Kernel, KernelLibrary, RtConfig,
    SelfTimedConfig, StaticConfig, TraceReport,
};
use oil_sim::{build_simulation_from_graph, picos, SimulationConfig};
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    workload: &'static str,
    engine_mode: &'static str,
    /// The engine that actually produced this row. Differs from
    /// `engine_mode` only when a requested staticsched row fell back to
    /// selftimed because synthesis rejected the graph — recorded loudly
    /// instead of silently mislabelling the number (schema v5).
    engine_actual: &'static str,
    threads: usize,
    virtual_s: f64,
    wall_ms: f64,
    tokens: u64,
    tokens_per_wall_s: f64,
    /// Host parallelism observed when this row ran.
    host_parallelism: usize,
    /// Schedule-fusion counters (zero for every engine but staticsched).
    fusion: FusionStats,
    /// Modal firings spent draining a mode-switch seam (schema v6; 0 for
    /// non-modal workloads and for engines without seam accounting).
    transition_firings: u64,
    /// Runtime-trace telemetry (schema v7): condvar + ring parks. 0 with
    /// tracing off, except on selftimed rows (counted unconditionally).
    park_count: u64,
    /// Highest ring occupancy observed after a push (0 with tracing off).
    ring_highwater_max: usize,
    /// Nanoseconds blocked on ring backpressure (0 with tracing off).
    backpressure_wait_ns: u64,
    /// Longest observed mode-switch seam span (0 with tracing off).
    seam_latency_observed_ns: u64,
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The v7 telemetry quadruple of a row, all zeros when tracing is off.
fn trace_fields(tr: Option<&TraceReport>) -> (u64, usize, u64, u64) {
    tr.map_or((0, 0, 0, 0), |t| {
        (
            t.park_count(),
            t.ring_highwater_max(),
            t.backpressure_wait_ns(),
            t.seam_latency_observed_ns(),
        )
    })
}

fn pal_graph() -> RtGraph {
    let (compiled, _) = oil_pal::analyze_pal().expect("PAL decoder is schedulable");
    rtgraph::lower_with_registry(&compiled, &oil_pal::pal_registry())
}

/// The SDR chain: a fixed `generate_sdr`-shaped program at radio-ish rates
/// (512 kHz wideband → ÷8 decimation → mixer demod → 2:3 resample → 96 kHz
/// sink), bound to real DSP kernels.
fn sdr_graph() -> (RtGraph, KernelLibrary) {
    const WIDEBAND: f64 = 512_000.0;
    let src = r#"
        mod seq Decim(int a, out int b){ loop{ f0(a:8, out b); } while(1); }
        mod seq Demod(int a, out int b){ loop{ f1(a, out b); } while(1); }
        mod seq Resamp(int a, out int b){ loop{ f2(a:2, out b:3); } while(1); }
        mod par Top(){
            fifo int ifs, af;
            source int x = src() @ 512 kHz;
            sink int y = snk() @ 96 kHz;
            Decim(x, out ifs) || Demod(ifs, out af) || Resamp(af, out y)
        }
    "#;
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSignature::pure("f0", 1e-5)); // fires at 64 kHz
    reg.register(FunctionSignature::pure("f1", 1e-5));
    reg.register(FunctionSignature::pure("f2", 2e-5)); // fires at 32 kHz
    reg.register(FunctionSignature::pure("src", 1e-7));
    reg.register(FunctionSignature::pure("snk", 1e-7));
    let compiled = compile(src, &reg, &CompilerOptions::default()).expect("sdr program");
    let graph = rtgraph::lower(&compiled);

    let mut lib = KernelLibrary::new();
    lib.register(
        "f0",
        Box::new(|| Kernel::Decimate(Decimator::new(8, WIDEBAND, 63))),
    );
    lib.register(
        "f1",
        Box::new(|| Kernel::Mix(Mixer::new(16_000.0, WIDEBAND / 8.0))),
    );
    lib.register(
        "f2",
        Box::new(|| Kernel::Resample(RationalResampler::new(3, 2, WIDEBAND / 8.0, 63))),
    );
    (graph, lib)
}

/// Eight independent source → filter → sink chains at 4 kHz: wide enough
/// that firings overlap, with kernels heavy enough that the pool matters.
fn wide_graph() -> (RtGraph, KernelLibrary) {
    const CHAINS: usize = 8;
    let mut src = String::new();
    let _ = writeln!(
        src,
        "mod seq S(int a, out int b){{ loop{{ heavy(a, out b); }} while(1); }}"
    );
    let _ = writeln!(src, "mod par Top(){{");
    for i in 0..CHAINS {
        let _ = writeln!(src, "    source int x{i} = src() @ 4 kHz;");
        let _ = writeln!(src, "    sink int y{i} = snk() @ 4 kHz;");
    }
    let calls: Vec<String> = (0..CHAINS).map(|i| format!("S(x{i}, out y{i})")).collect();
    let _ = writeln!(src, "    {}\n}}", calls.join(" || "));

    let mut reg = FunctionRegistry::new();
    // The declared response time (75% of the period) is the virtual-time
    // budget; the wall-clock kernel below costs real microseconds.
    reg.register(FunctionSignature::pure("heavy", 1.875e-4));
    reg.register(FunctionSignature::pure("src", 1e-7));
    reg.register(FunctionSignature::pure("snk", 1e-7));
    let compiled = compile(&src, &reg, &CompilerOptions::default()).expect("wide program");
    let graph = rtgraph::lower(&compiled);

    let mut lib = KernelLibrary::new();
    lib.register(
        "heavy",
        Box::new(|| Kernel::Fir(FirFilter::low_pass(200.0, 4_000.0, 2047))),
    );
    (graph, lib)
}

const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

fn bench_workload(
    rows: &mut Vec<Row>,
    workload: &'static str,
    graph: &RtGraph,
    lib: &KernelLibrary,
    virtual_s: f64,
    synth: &SynthesisConfig,
    trace: bool,
) {
    // Simulator floor (token origins only, no kernels, no trace recording).
    let mut net = build_simulation_from_graph(graph);
    let started = Instant::now();
    let metrics = net.run(
        picos(virtual_s),
        &SimulationConfig {
            cores: 0,
            warmup_ticks: 64,
        },
    );
    let wall = started.elapsed();
    // Same currency as the runtime reports — values actually pushed into
    // buffers — so every row is directly comparable.
    let tokens = metrics.tokens_written;
    rows.push(Row {
        workload,
        engine_mode: "sim",
        engine_actual: "sim",
        threads: 1,
        virtual_s,
        wall_ms: wall.as_secs_f64() * 1e3,
        tokens,
        tokens_per_wall_s: tokens as f64 / wall.as_secs_f64(),
        host_parallelism: host_parallelism(),
        fusion: FusionStats::default(),
        transition_firings: 0,
        park_count: 0,
        ring_highwater_max: 0,
        backpressure_wait_ns: 0,
        seam_latency_observed_ns: 0,
    });

    for threads in THREAD_SWEEP {
        let report = execute(
            graph,
            lib,
            picos(virtual_s),
            &RtConfig {
                threads,
                warmup_ticks: 64,
                record_traces: false,
                record_values: false,
                trace,
            },
        );
        assert!(
            report.meets_real_time_constraints(),
            "{workload}: calendar engine missed constraints at {threads} threads"
        );
        let (park_count, ring_highwater_max, backpressure_wait_ns, seam_latency_observed_ns) =
            trace_fields(report.trace_report.as_ref());
        rows.push(Row {
            workload,
            engine_mode: "calendar",
            engine_actual: "calendar",
            threads,
            virtual_s,
            wall_ms: report.wall.as_secs_f64() * 1e3,
            tokens: report.tokens,
            tokens_per_wall_s: report.tokens as f64 / report.wall.as_secs_f64(),
            host_parallelism: host_parallelism(),
            fusion: FusionStats::default(),
            transition_firings: 0,
            park_count,
            ring_highwater_max,
            backpressure_wait_ns,
            seam_latency_observed_ns,
        });
    }

    let plan = rtgraph::plan(graph);
    for threads in THREAD_SWEEP {
        let report = execute_selftimed(
            graph,
            &plan,
            lib,
            picos(virtual_s),
            &SelfTimedConfig {
                threads,
                record_values: false,
                trace,
                ..SelfTimedConfig::default()
            },
        );
        assert!(
            !report.deadlocked,
            "{workload}: self-timed engine deadlocked at {threads} threads"
        );
        let (_, ring_highwater_max, backpressure_wait_ns, seam_latency_observed_ns) =
            trace_fields(report.trace_report.as_ref());
        rows.push(Row {
            workload,
            engine_mode: "selftimed",
            engine_actual: "selftimed",
            threads,
            virtual_s,
            wall_ms: report.wall.as_secs_f64() * 1e3,
            tokens: report.tokens,
            tokens_per_wall_s: report.tokens as f64 / report.wall.as_secs_f64(),
            host_parallelism: host_parallelism(),
            fusion: FusionStats::default(),
            transition_firings: 0,
            // The self-timed engine counts parks unconditionally.
            park_count: report.parks,
            ring_highwater_max,
            backpressure_wait_ns,
            seam_latency_observed_ns,
        });
    }

    for workers in THREAD_SWEEP {
        match schedule::synthesize(graph, &plan, workers, synth) {
            Ok(schedule) => {
                let report = execute_staticsched(
                    graph,
                    &schedule,
                    lib,
                    picos(virtual_s),
                    &StaticConfig {
                        record_values: false,
                        trace,
                        ..StaticConfig::default()
                    },
                );
                let (
                    park_count,
                    ring_highwater_max,
                    backpressure_wait_ns,
                    seam_latency_observed_ns,
                ) = trace_fields(report.trace_report.as_ref());
                rows.push(Row {
                    workload,
                    engine_mode: "staticsched",
                    engine_actual: "staticsched",
                    threads: report.threads,
                    virtual_s,
                    wall_ms: report.wall.as_secs_f64() * 1e3,
                    tokens: report.tokens,
                    tokens_per_wall_s: report.tokens as f64 / report.wall.as_secs_f64(),
                    host_parallelism: host_parallelism(),
                    fusion: report.fusion,
                    transition_firings: report.transition_firings,
                    park_count,
                    ring_highwater_max,
                    backpressure_wait_ns,
                    seam_latency_observed_ns,
                });
            }
            Err(e @ ScheduleError::NonUniformCluster { .. }) => {
                // The graph admits no static-order schedule (not even
                // per-mode ones): fall back to the self-timed engine and
                // say so — the row records the engine actually used and
                // the smoke run fails on it.
                eprintln!(
                    "WARNING: {workload}: staticsched@{workers} fell back to                      selftimed: {e}"
                );
                let report = execute_selftimed(
                    graph,
                    &plan,
                    lib,
                    picos(virtual_s),
                    &SelfTimedConfig {
                        threads: workers,
                        record_values: false,
                        trace,
                        ..SelfTimedConfig::default()
                    },
                );
                let (_, ring_highwater_max, backpressure_wait_ns, seam_latency_observed_ns) =
                    trace_fields(report.trace_report.as_ref());
                rows.push(Row {
                    workload,
                    engine_mode: "staticsched",
                    engine_actual: "selftimed",
                    threads: report.threads,
                    virtual_s,
                    wall_ms: report.wall.as_secs_f64() * 1e3,
                    tokens: report.tokens,
                    tokens_per_wall_s: report.tokens as f64 / report.wall.as_secs_f64(),
                    host_parallelism: host_parallelism(),
                    fusion: FusionStats::default(),
                    transition_firings: report.transition_firings,
                    park_count: report.parks,
                    ring_highwater_max,
                    backpressure_wait_ns,
                    seam_latency_observed_ns,
                });
            }
            Err(e) => panic!("{workload}: schedule synthesis at {workers} workers: {e}"),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    // CI regression floor for the fused static-order engine: the run fails
    // when the PAL staticsched single-worker row drops below this many
    // tokens per wall-second.
    let floor_pal_staticsched: Option<f64> = args
        .iter()
        .position(|a| a == "--floor-pal-staticsched")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .expect("--floor-pal-staticsched takes a tokens/s number")
        });
    let (pal_s, sdr_s, wide_s) = if smoke {
        (1e-3, 0.05, 0.1)
    } else {
        (10e-3, 1.0, 2.0)
    };

    // The one place the fusion toggle reads the environment: every
    // synthesis below sees the same immutable config.
    let synth = SynthesisConfig::from_env();
    // Tracing is opt-in (OIL_RT_TRACE=1); the regression floor is always
    // gated on an untraced run, so the four telemetry columns read 0 there.
    let trace = env_trace();

    let mut rows = Vec::new();
    let pal = pal_graph();
    bench_workload(
        &mut rows,
        "pal",
        &pal,
        &KernelLibrary::pal(),
        pal_s,
        &synth,
        trace,
    );
    let (sdr, sdr_lib) = sdr_graph();
    bench_workload(&mut rows, "sdr", &sdr, &sdr_lib, sdr_s, &synth, trace);
    let (wide, wide_lib) = wide_graph();
    bench_workload(&mut rows, "wide", &wide, &wide_lib, wide_s, &synth, trace);

    println!(
        "\n{:<8} {:<12} {:<12} {:>7} {:>10} {:>12} {:>12} {:>16} {:>6}",
        "workload",
        "engine",
        "actual",
        "threads",
        "virtual s",
        "wall ms",
        "tokens",
        "tokens/wall-s",
        "host"
    );
    for r in &rows {
        println!(
            "{:<8} {:<12} {:<12} {:>7} {:>10.4} {:>12.2} {:>12} {:>16.0} {:>6}",
            r.workload,
            r.engine_mode,
            r.engine_actual,
            r.threads,
            r.virtual_s,
            r.wall_ms,
            r.tokens,
            r.tokens_per_wall_s,
            r.host_parallelism
        );
    }

    // One line of runtime telemetry per engine row when tracing is on —
    // the smoke leg's quick look at scheduler health without opening the
    // Perfetto trace. All four columns are 0 on untraced runs (except
    // selftimed park counts, which the engine tallies unconditionally).
    if smoke {
        for r in rows.iter().filter(|r| r.engine_mode != "sim") {
            println!(
                "telemetry: {} {}@{} parks={} ring_highwater_max={} \
                 backpressure_wait_ns={} seam_latency_observed_ns={}",
                r.workload,
                r.engine_actual,
                r.threads,
                r.park_count,
                r.ring_highwater_max,
                r.backpressure_wait_ns,
                r.seam_latency_observed_ns
            );
        }
    }

    // Machine-readable results at the workspace root (schema v7: v6's
    // fusion counters, `engine_actual` and `transition_firings` plus the
    // four trace-telemetry columns — park counts, the worst ring
    // high-water mark, total backpressure wait and observed seam latency.
    // All four are 0 when tracing is disabled).
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema_version\": 7,");
    let _ = writeln!(json, "  \"benchmarks\": [");
    for (i, r) in rows.iter().enumerate() {
        let degraded = r.threads > r.host_parallelism;
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"engine_mode\": \"{}\", \
             \"engine_actual\": \"{}\", \"threads\": {}, \
             \"virtual_seconds\": {}, \"wall_ms\": {:.3}, \"tokens\": {}, \
             \"tokens_per_wall_second\": {:.0}, \"host_parallelism\": {}, \
             \"degraded\": {}, \"runs_fused\": {}, \"rings_elided\": {}, \
             \"fused_chain_len_max\": {}, \"transition_firings\": {}, \
             \"park_count\": {}, \"ring_highwater_max\": {}, \
             \"backpressure_wait_ns\": {}, \"seam_latency_observed_ns\": {}}}{}",
            r.workload,
            r.engine_mode,
            r.engine_actual,
            r.threads,
            r.virtual_s,
            r.wall_ms,
            r.tokens,
            r.tokens_per_wall_s,
            r.host_parallelism,
            degraded,
            r.fusion.runs_fused,
            r.fusion.rings_elided,
            r.fusion.fused_chain_len_max,
            r.transition_firings,
            r.park_count,
            r.ring_highwater_max,
            r.backpressure_wait_ns,
            r.seam_latency_observed_ns,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_runtime.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }

    // A requested engine must be the engine that ran: any fallback row is
    // loud, and fatal under `--test` (the CI smoke leg).
    let fallbacks: Vec<&Row> = rows
        .iter()
        .filter(|r| r.engine_mode != r.engine_actual)
        .collect();
    for r in &fallbacks {
        eprintln!(
            "FALLBACK: {} {}@{} actually ran on {}",
            r.workload, r.engine_mode, r.threads, r.engine_actual
        );
    }
    if smoke && !fallbacks.is_empty() {
        eprintln!(
            "FAIL: {} requested staticsched row(s) silently fell back to selftimed",
            fallbacks.len()
        );
        std::process::exit(1);
    }

    if let Some(floor) = floor_pal_staticsched {
        let row = rows
            .iter()
            .find(|r| r.workload == "pal" && r.engine_mode == "staticsched" && r.threads == 1)
            .expect("the PAL staticsched@1 row exists");
        if row.tokens_per_wall_s < floor {
            eprintln!(
                "FAIL: PAL staticsched@1 throughput {:.0} tokens/s is below the \
                 regression floor {floor:.0}",
                row.tokens_per_wall_s
            );
            std::process::exit(1);
        }
        println!(
            "PAL staticsched@1 throughput {:.0} tokens/s clears the floor {floor:.0}",
            row.tokens_per_wall_s
        );
    }
}
