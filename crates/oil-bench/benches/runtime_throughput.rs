//! Runtime throughput: the execution engines head to head.
//!
//! Three engines over two workloads, each executed over a fixed virtual
//! horizon while the wall clock is measured:
//!
//! * **sim** — the discrete-event simulator: token origins only, no kernel
//!   work, no threads. The scheduling-overhead floor.
//! * **calendar** — `oil-rt::exec` at 1/2/4 worker threads: real kernels,
//!   but every firing serialises through the virtual-clock calendar (the
//!   price of bit-identical traces). Expected to scale *negatively*: more
//!   threads add handoff cost to a scheduler-bound loop.
//! * **selftimed** — `oil-rt::selftimed` at 1/2/4 worker threads: real
//!   kernels, no clock, tasks fire whenever data and space allow with
//!   repetition-vector batching.
//!
//! Workloads:
//!
//! * **pal** — the PAL decoder with its real DSP kernels (Fig. 11): one RF
//!   source at 6.4 MS/s through mixers, filters and resamplers to the
//!   display and speaker sinks;
//! * **wide** — eight independent chains with deliberately heavy FIR
//!   kernels (2047 taps), the shape where kernel work dominates scheduling
//!   and worker threads pay off.
//!
//! Results are printed and written to `BENCH_runtime.json` at the workspace
//! root under schema v2: one record per (workload, engine_mode, threads)
//! with `host_parallelism` recorded so scaling numbers can be read in
//! context (a single-core host cannot show parallel speed-up for any
//! engine).
//!
//! `cargo bench -p oil-bench --bench runtime_throughput -- --test` runs a
//! smoke-sized horizon (CI).

use oil_compiler::rtgraph::{self, RtGraph};
use oil_compiler::{compile, CompilerOptions};
use oil_dsp::FirFilter;
use oil_lang::registry::{FunctionRegistry, FunctionSignature};
use oil_rt::{execute, execute_selftimed, Kernel, KernelLibrary, RtConfig, SelfTimedConfig};
use oil_sim::{build_simulation_from_graph, picos, SimulationConfig};
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    workload: &'static str,
    engine_mode: &'static str,
    threads: usize,
    virtual_s: f64,
    wall_ms: f64,
    tokens: u64,
    tokens_per_wall_s: f64,
}

fn pal_graph() -> RtGraph {
    let (compiled, _) = oil_pal::analyze_pal().expect("PAL decoder is schedulable");
    rtgraph::lower_with_registry(&compiled, &oil_pal::pal_registry())
}

/// Eight independent source → filter → sink chains at 4 kHz: wide enough
/// that firings overlap, with kernels heavy enough that the pool matters.
fn wide_graph() -> (RtGraph, KernelLibrary) {
    const CHAINS: usize = 8;
    let mut src = String::new();
    let _ = writeln!(
        src,
        "mod seq S(int a, out int b){{ loop{{ heavy(a, out b); }} while(1); }}"
    );
    let _ = writeln!(src, "mod par Top(){{");
    for i in 0..CHAINS {
        let _ = writeln!(src, "    source int x{i} = src() @ 4 kHz;");
        let _ = writeln!(src, "    sink int y{i} = snk() @ 4 kHz;");
    }
    let calls: Vec<String> = (0..CHAINS).map(|i| format!("S(x{i}, out y{i})")).collect();
    let _ = writeln!(src, "    {}\n}}", calls.join(" || "));

    let mut reg = FunctionRegistry::new();
    // The declared response time (75% of the period) is the virtual-time
    // budget; the wall-clock kernel below costs real microseconds.
    reg.register(FunctionSignature::pure("heavy", 1.875e-4));
    reg.register(FunctionSignature::pure("src", 1e-7));
    reg.register(FunctionSignature::pure("snk", 1e-7));
    let compiled = compile(&src, &reg, &CompilerOptions::default()).expect("wide program");
    let graph = rtgraph::lower(&compiled);

    let mut lib = KernelLibrary::new();
    lib.register(
        "heavy",
        Box::new(|| Kernel::Fir(FirFilter::low_pass(200.0, 4_000.0, 2047))),
    );
    (graph, lib)
}

const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

fn bench_workload(
    rows: &mut Vec<Row>,
    workload: &'static str,
    graph: &RtGraph,
    lib: &KernelLibrary,
    virtual_s: f64,
) {
    // Simulator floor (token origins only, no kernels, no trace recording).
    let mut net = build_simulation_from_graph(graph);
    let started = Instant::now();
    let metrics = net.run(
        picos(virtual_s),
        &SimulationConfig {
            cores: 0,
            warmup_ticks: 64,
        },
    );
    let wall = started.elapsed();
    // Same currency as the runtime reports — values actually pushed into
    // buffers — so every row is directly comparable.
    let tokens = metrics.tokens_written;
    rows.push(Row {
        workload,
        engine_mode: "sim",
        threads: 1,
        virtual_s,
        wall_ms: wall.as_secs_f64() * 1e3,
        tokens,
        tokens_per_wall_s: tokens as f64 / wall.as_secs_f64(),
    });

    for threads in THREAD_SWEEP {
        let report = execute(
            graph,
            lib,
            picos(virtual_s),
            &RtConfig {
                threads,
                warmup_ticks: 64,
                record_traces: false,
            },
        );
        assert!(
            report.meets_real_time_constraints(),
            "{workload}: calendar engine missed constraints at {threads} threads"
        );
        rows.push(Row {
            workload,
            engine_mode: "calendar",
            threads,
            virtual_s,
            wall_ms: report.wall.as_secs_f64() * 1e3,
            tokens: report.tokens,
            tokens_per_wall_s: report.tokens as f64 / report.wall.as_secs_f64(),
        });
    }

    let plan = rtgraph::plan(graph);
    for threads in THREAD_SWEEP {
        let report = execute_selftimed(
            graph,
            &plan,
            lib,
            picos(virtual_s),
            &SelfTimedConfig {
                threads,
                record_values: false,
                ..SelfTimedConfig::default()
            },
        );
        assert!(
            !report.deadlocked,
            "{workload}: self-timed engine deadlocked at {threads} threads"
        );
        rows.push(Row {
            workload,
            engine_mode: "selftimed",
            threads,
            virtual_s,
            wall_ms: report.wall.as_secs_f64() * 1e3,
            tokens: report.tokens,
            tokens_per_wall_s: report.tokens as f64 / report.wall.as_secs_f64(),
        });
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let (pal_s, wide_s) = if smoke { (1e-3, 0.1) } else { (10e-3, 2.0) };

    let mut rows = Vec::new();
    let pal = pal_graph();
    bench_workload(&mut rows, "pal", &pal, &KernelLibrary::pal(), pal_s);
    let (wide, wide_lib) = wide_graph();
    bench_workload(&mut rows, "wide", &wide, &wide_lib, wide_s);

    println!(
        "\n{:<8} {:<10} {:>7} {:>10} {:>12} {:>12} {:>16}",
        "workload", "engine", "threads", "virtual s", "wall ms", "tokens", "tokens/wall-s"
    );
    for r in &rows {
        println!(
            "{:<8} {:<10} {:>7} {:>10.4} {:>12.2} {:>12} {:>16.0}",
            r.workload,
            r.engine_mode,
            r.threads,
            r.virtual_s,
            r.wall_ms,
            r.tokens,
            r.tokens_per_wall_s
        );
    }

    // Machine-readable results at the workspace root (schema v2: engine
    // rows carry an explicit mode + thread count; v1 had a fused
    // "oil-rt/N" engine string and no schema marker).
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema_version\": 2,");
    let _ = writeln!(json, "  \"host_parallelism\": {host},");
    let _ = writeln!(json, "  \"benchmarks\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"engine_mode\": \"{}\", \"threads\": {}, \
             \"virtual_seconds\": {}, \"wall_ms\": {:.3}, \"tokens\": {}, \
             \"tokens_per_wall_second\": {:.0}}}{}",
            r.workload,
            r.engine_mode,
            r.threads,
            r.virtual_s,
            r.wall_ms,
            r.tokens,
            r.tokens_per_wall_s,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_runtime.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
