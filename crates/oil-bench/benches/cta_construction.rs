//! E4 / E5 / E6 — Figs. 7, 8 and 9: CTA component construction.
//!
//! Regenerates the constructions of Section V-B: the single-rate component of
//! Fig. 7, the multi-rate component of Fig. 8 (printing the (ε, φ, γ) table
//! of Fig. 8c) and the two-while-loop module of Fig. 9, and measures the cost
//! of deriving and checking them.

use criterion::{criterion_group, criterion_main, Criterion};
use oil_bench::bench_registry;
use oil_compiler::{compile, derive_cta_model, CompilerOptions};
use oil_cta::{CtaModel, Rational};

/// Fig. 8: an actor consuming 4 tokens and producing 2 per firing.
fn fig8_component() -> CtaModel {
    let rho = Rational::new(1, 1_000_000);
    let (pi, psi) = (Rational::from_int(2), Rational::from_int(4));
    let zero = Rational::ZERO;
    let mut m = CtaModel::new();
    let w = m.add_component("wg", None);
    let p0 = m.add_port(w, "p0", Some(psi / rho));
    let p1 = m.add_port(w, "p1", Some(psi / rho));
    let p2 = m.add_port(w, "p2", Some(pi / rho));
    let p3 = m.add_port(w, "p3", Some(pi / rho));
    // The six connections of Fig. 8c.
    m.connect(p0, p1, rho, Rational::from_int(3), Rational::ONE);
    m.connect(p0, p2, rho, psi - psi / pi, Rational::new(2, 4));
    m.connect(p0, p3, zero, zero, Rational::new(2, 4));
    m.connect(p3, p0, zero, zero, Rational::new(4, 2));
    m.connect(p3, p1, rho, Rational::new(3, 2), Rational::new(4, 2));
    m.connect(p3, p2, rho, Rational::ONE, Rational::ONE);
    m
}

fn print_fig8c_table() {
    let m = fig8_component();
    println!("\n[Fig.8c / E5] delays and transfer rate ratios of the multi-rate component");
    println!(
        "{:>12} {:>10} {:>10} {:>8}",
        "connection", "eps", "phi", "gamma"
    );
    for c in &m.connections {
        println!(
            "{:>12} {:>10.1e} {:>10} {:>8}",
            format!("({}, {})", c.from, c.to),
            c.epsilon.to_f64(),
            c.phi.to_string(),
            c.gamma
        );
    }
}

const FIG9A: &str = r#"
    mod seq A(int x, out int o){
        loop{ y = f(x); o = f(y); } while(...);
        loop{ g(x, y, out o); } while(...);
    }
    mod par T(){
        source int s = src() @ 1 kHz;
        sink int t = snk() @ 1 kHz;
        A(s, out t)
    }
"#;

fn bench_cta_construction(c: &mut Criterion) {
    print_fig8c_table();
    let registry = bench_registry(1e-7);

    {
        let compiled = compile(FIG9A, &registry, &CompilerOptions::default()).unwrap();
        println!("\n[Fig.9 / E6] CTA model of the two-while-loop module");
        println!(
            "  components: {}, connections: {}, sized buffers: {}",
            compiled.derived.cta.component_count(),
            compiled.derived.cta.connection_count(),
            compiled.buffers.total_tokens()
        );
    }

    let mut group = c.benchmark_group("cta_construction");
    group.sample_size(30);

    group.bench_function("fig7_single_rate_consistency", |b| {
        let rho = Rational::new(1, 500_000);
        let zero = Rational::ZERO;
        let mut m = CtaModel::new();
        let w = m.add_component("wf", None);
        let bx = m.add_port(w, "bx", Some(rho.recip()));
        let by = m.add_port(w, "by", Some(rho.recip()));
        let bz = m.add_port(w, "bz", Some(rho.recip()));
        m.connect(bx, by, zero, zero, Rational::ONE);
        m.connect(by, bx, zero, zero, Rational::ONE);
        m.connect(bx, bz, rho, zero, Rational::ONE);
        m.connect(by, bz, rho, zero, Rational::ONE);
        b.iter(|| m.check_consistency().unwrap())
    });

    group.bench_function("fig8_multi_rate_consistency", |b| {
        let m = fig8_component();
        b.iter(|| m.check_consistency().unwrap())
    });

    group.bench_function("fig9_derive_and_size", |b| {
        let analyzed = oil_lang::frontend(FIG9A, &registry).unwrap();
        b.iter(|| {
            let derived = derive_cta_model(&analyzed, &registry);
            oil_cta::size_buffers(&derived.cta).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cta_construction);
criterion_main!(benches);
