//! E9 — polynomial CTA analysis vs exponential exact dataflow analysis.
//!
//! The paper's central complexity claim (Sections I, II, V): CTA consistency
//! and buffer sizing run in polynomial time, whereas exact dataflow analyses
//! (state-space exploration, HSDF expansion) blow up with the rate ratios.
//! This bench sweeps the rate ratio of a two-actor multi-rate cycle: the CTA
//! model's size and analysis time stay flat while the exact analyses grow
//! with the rates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oil_bench::{multirate_cycle, multirate_cycle_cta};
use oil_dataflow::hsdf::HsdfGraph;
use oil_dataflow::statespace::analyze_self_timed;

fn print_scaling_table() {
    println!("\n[E9] model sizes for a p:q multi-rate cycle (CTA stays constant)");
    println!(
        "{:>8} {:>16} {:>16} {:>16}",
        "p:q", "HSDF nodes", "state space", "CTA ports"
    );
    for &(p, q) in &[(3u64, 2u64), (9, 8), (27, 16), (81, 64)] {
        let sdf = multirate_cycle(p, q, 2 * p.max(q));
        let hsdf = HsdfGraph::expand(&sdf).unwrap();
        let exact = analyze_self_timed(&sdf, 100_000).unwrap();
        let cta = multirate_cycle_cta(p, q, 2 * p.max(q));
        println!(
            "{:>8} {:>16} {:>16} {:>16}",
            format!("{p}:{q}"),
            hsdf.node_count(),
            exact.states_explored,
            cta.port_count()
        );
    }
}

fn bench_scaling(c: &mut Criterion) {
    print_scaling_table();

    let mut group = c.benchmark_group("scaling_poly_vs_exact");
    group.sample_size(10);

    for &(p, q) in &[(3u64, 2u64), (9, 8), (27, 16), (81, 64)] {
        let tokens = 2 * p.max(q);
        let label = format!("{p}x{q}");

        group.bench_with_input(
            BenchmarkId::new("cta_consistency", &label),
            &(p, q),
            |b, &(p, q)| {
                let m = multirate_cycle_cta(p, q, tokens);
                b.iter(|| m.consistency_at_maximal_rates().unwrap())
            },
        );

        group.bench_with_input(
            BenchmarkId::new("exact_state_space", &label),
            &(p, q),
            |b, &(p, q)| {
                let g = multirate_cycle(p, q, tokens);
                b.iter(|| analyze_self_timed(&g, 100_000).unwrap())
            },
        );

        group.bench_with_input(
            BenchmarkId::new("hsdf_expansion_mcm", &label),
            &(p, q),
            |b, &(p, q)| {
                let g = multirate_cycle(p, q, tokens);
                b.iter(|| {
                    let h = HsdfGraph::expand(&g).unwrap();
                    h.maximum_cycle_mean()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
