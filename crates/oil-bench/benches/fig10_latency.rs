//! E2 / E3 / E7 — Figs. 3, 4, 6 and 10: sources, sinks, modal modules and
//! latency constraints.
//!
//! Regenerates the Fig. 6/10 program analysis (1 kHz source and sink, 5 ms
//! end-to-end constraint, buffer capacities -δ/r), the Fig. 4 parallelization
//! of a modal module and a sweep of the latency bound showing where the
//! constraint becomes unattainable (the Fig. 3 refinement argument: the
//! periodic source/sink constraints must hold whichever mode is active).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oil_bench::{bench_registry, fig6_source, pipeline_source};
use oil_compiler::{compile, extract_task_graph, CompilerOptions};
use oil_lang::parse_program;

fn print_fig10_report() {
    let registry = bench_registry(1e-5);
    let compiled = compile(fig6_source(), &registry, &CompilerOptions::default()).unwrap();
    println!("\n[Fig.6/10 / E7] source-sink program with a 5 ms latency constraint");
    println!(
        "  source rate: {:.0} Hz",
        compiled.channel_rate("x").unwrap()
    );
    println!(
        "  sink rate:   {:.0} Hz",
        compiled.channel_rate("y").unwrap()
    );
    println!(
        "  end-to-end latency bound: {:.3} ms (constraint: 5 ms)",
        compiled.latency_between("x", "y").unwrap() * 1e3
    );
    for (name, cap) in &compiled.buffers.channels {
        println!("  buffer {name}: {cap} values");
    }

    // Latency sweep: find the region where the constraint becomes infeasible.
    println!("  latency-bound sweep (1 kHz, three-task pipeline, 10 us tasks):");
    for bound_ms in [0.01f64, 0.05, 0.5, 5.0] {
        let src = fig6_source().replace("5 ms", &format!("{bound_ms} ms"));
        let feasible = compile(&src, &registry, &CompilerOptions::default()).is_ok();
        println!(
            "    bound {bound_ms:>6.2} ms -> {}",
            if feasible { "accepted" } else { "rejected" }
        );
    }
}

fn print_fig4_report() {
    let registry = bench_registry(1e-6);
    let program = parse_program(
        "mod seq M(out int x){ if(...){ y = g(); } else { y = h(); } k(y, out x:2); }",
    )
    .unwrap();
    let tg = extract_task_graph(program.module("M").unwrap(), &registry);
    println!("\n[Fig.4 / E3] parallelization of the modal module M");
    println!(
        "  tasks: {} (guarded: {})",
        tg.tasks.len(),
        tg.tasks.iter().filter(|t| t.guarded).count()
    );
    println!(
        "  buffers: {} (y with {} producers, x written {} values/firing)",
        tg.buffers.len(),
        tg.producers(tg.buffer_by_name("y").unwrap()).len(),
        tg.tasks.iter().last().unwrap().writes[0].count
    );
}

fn bench_latency(c: &mut Criterion) {
    print_fig10_report();
    print_fig4_report();
    let registry = bench_registry(1e-5);

    let mut group = c.benchmark_group("fig10_latency");
    group.sample_size(20);

    group.bench_function("compile_fig6", |b| {
        b.iter(|| compile(fig6_source(), &registry, &CompilerOptions::default()).unwrap())
    });

    // E2: cost of verifying that periodic sources and sinks stay satisfied as
    // the pipeline (and therefore the number of while-loop components) grows.
    for stages in [2usize, 8, 32] {
        let src = pipeline_source(stages, 1000.0);
        group.bench_with_input(
            BenchmarkId::new("pipeline_compile", stages),
            &src,
            |b, src| b.iter(|| compile(src, &registry, &CompilerOptions::default()).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_latency);
criterion_main!(benches);
