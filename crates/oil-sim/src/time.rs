//! Conversions between seconds and the simulator's picosecond time base.
//!
//! The execution engines (`oil-sim` and `oil-rt`) run on an integer
//! picosecond clock ([`Picos`]), while the analyses upstream work in exact
//! rational seconds. The conversions here are exact until the final
//! quantisation onto the picosecond grid and **checked**: an overflow or a
//! demand for exactness that the value cannot meet is an error, never a
//! silently wrong number. The historical `f64` helpers
//! ([`crate::picos`]/[`crate::seconds`]) survive as convenience wrappers
//! around the rational path.

use crate::network::Picos;
use oil_dataflow::Rational;

/// Picoseconds per second (`10^12`).
pub const PICOS_PER_SECOND: i128 = 1_000_000_000_000;

/// Why a time value could not be converted to the picosecond grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeError {
    /// The value in picoseconds does not fit the 128-bit intermediate or the
    /// 64-bit [`Picos`] result.
    Overflow,
    /// Simulation time is non-negative; a negative duration has no place on
    /// the clock.
    Negative,
    /// The exact conversion was requested but the value is not an integer
    /// number of picoseconds.
    Inexact,
}

impl std::fmt::Display for TimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimeError::Overflow => write!(f, "time value overflows the picosecond clock"),
            TimeError::Negative => write!(f, "time value is negative"),
            TimeError::Inexact => write!(f, "time value is not a whole number of picoseconds"),
        }
    }
}

impl std::error::Error for TimeError {}

/// Convert exact rational seconds to picoseconds, requiring the result to be
/// a non-negative integer on the picosecond grid.
pub fn picos_exact(seconds: Rational) -> Result<Picos, TimeError> {
    let ps = seconds
        .checked_mul(Rational::from_int(PICOS_PER_SECOND))
        .ok_or(TimeError::Overflow)?;
    if ps.is_negative() {
        return Err(TimeError::Negative);
    }
    if ps.denom() != 1 {
        return Err(TimeError::Inexact);
    }
    Picos::try_from(ps.numer()).map_err(|_| TimeError::Overflow)
}

/// Convert exact rational seconds to the nearest picosecond (ties round up,
/// matching `f64::round` on the non-negative range), erroring on negative
/// values and overflow.
pub fn picos_nearest(seconds: Rational) -> Result<Picos, TimeError> {
    let ps = seconds
        .checked_mul(Rational::from_int(PICOS_PER_SECOND))
        .ok_or(TimeError::Overflow)?;
    if ps.is_negative() {
        return Err(TimeError::Negative);
    }
    let (num, den) = (ps.numer(), ps.denom());
    let q = num / den;
    let r = num % den;
    // Round half up without computing `2 * r` (which could overflow `i128`
    // for denominators near the type's limit).
    let rounded = if r >= den - r { q + 1 } else { q };
    Picos::try_from(rounded).map_err(|_| TimeError::Overflow)
}

/// Convert picoseconds back to exact rational seconds (always representable:
/// every `u64` fits an `i128` numerator).
pub fn seconds_exact(p: Picos) -> Rational {
    Rational::new(p as i128, PICOS_PER_SECOND)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_conversions() {
        assert_eq!(picos_exact(Rational::new(1, 1000)), Ok(1_000_000_000));
        assert_eq!(picos_exact(Rational::new(1, 6_400_000)), Ok(156_250));
        assert_eq!(picos_exact(Rational::ZERO), Ok(0));
        // 1/3 s is not an integer number of picoseconds.
        assert_eq!(picos_exact(Rational::new(1, 3)), Err(TimeError::Inexact));
        assert_eq!(
            picos_exact(Rational::new(-1, 1000)),
            Err(TimeError::Negative)
        );
        assert_eq!(
            picos_exact(Rational::from_int(i128::MAX / 2)),
            Err(TimeError::Overflow)
        );
    }

    #[test]
    fn nearest_rounds_half_up() {
        // 1/3 s = 333_333_333_333.33.. ps rounds down.
        assert_eq!(picos_nearest(Rational::new(1, 3)), Ok(333_333_333_333));
        // 2/3 s = 666_666_666_666.66.. ps rounds up.
        assert_eq!(picos_nearest(Rational::new(2, 3)), Ok(666_666_666_667));
        // Exactly half a picosecond rounds up.
        assert_eq!(picos_nearest(Rational::new(1, 2 * PICOS_PER_SECOND)), Ok(1));
        assert_eq!(
            picos_nearest(Rational::new(-1, 3)),
            Err(TimeError::Negative)
        );
    }

    proptest! {
        /// Exact round trip over the full `Picos` range: the rational path
        /// loses nothing.
        #[test]
        fn rational_round_trip_is_lossless(p in 0u64..u64::MAX) {
            prop_assert_eq!(picos_exact(seconds_exact(p)), Ok(p));
            prop_assert_eq!(picos_nearest(seconds_exact(p)), Ok(p));
        }

        /// The f64 convenience wrappers round-trip wherever `f64` can still
        /// resolve single picoseconds: below 2^12 seconds the unit in the
        /// last place of `p / 1e12` is under one picosecond, so
        /// nearest-rounding recovers `p` exactly. (Beyond that the loss is
        /// inherent to `f64` — the rational path above has no such bound.)
        #[test]
        fn f64_wrappers_round_trip_at_picosecond_resolution(p in 0u64..4_096_000_000_000_000) {
            prop_assert_eq!(crate::picos(crate::seconds(p)), p);
        }
    }
}
