//! The simulated task network and the discrete-event engine.

use crate::trace::{BufferTrace, ExecutionTrace};
use oil_dataflow::define_index_type;
use oil_dataflow::index::{Idx, IndexVec};
use oil_dataflow::taskgraph::ports_satisfied;
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, VecDeque};

/// Simulation time in picoseconds.
pub type Picos = u64;

define_index_type! {
    /// A buffer of the simulated network.
    pub struct SimBufferId = "sb";
}

define_index_type! {
    /// A task node of the simulated network.
    pub struct SimNodeId = "sn";
}

define_index_type! {
    /// A time-triggered source of the simulated network.
    pub struct SimSourceId = "ssrc";
}

define_index_type! {
    /// A time-triggered sink of the simulated network.
    pub struct SimSinkId = "ssnk";
}

/// A bounded circular buffer in the simulated network. Tokens carry the
/// timestamp of the source sample they originate from so end-to-end latency
/// can be measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimBuffer {
    /// Buffer name (channel or `<instance>.<variable>`).
    pub name: String,
    /// Capacity in values.
    pub capacity: usize,
    /// Values currently present, with their origin timestamps.
    tokens: VecDeque<Picos>,
    /// Highest occupancy observed.
    pub max_occupancy: usize,
    /// Total values ever written.
    pub total_written: u64,
}

impl SimBuffer {
    fn new(name: String, capacity: usize) -> Self {
        SimBuffer {
            name,
            capacity,
            tokens: VecDeque::new(),
            max_occupancy: 0,
            total_written: 0,
        }
    }

    fn occupancy(&self) -> usize {
        self.tokens.len()
    }

    fn space(&self) -> usize {
        self.capacity.saturating_sub(self.tokens.len())
    }

    fn push(&mut self, origin: Picos, count: usize) {
        for _ in 0..count {
            self.tokens.push_back(origin);
        }
        self.total_written += count as u64;
        self.max_occupancy = self.max_occupancy.max(self.tokens.len());
    }

    fn pop(&mut self, count: usize) -> Option<Picos> {
        let mut oldest = None;
        for _ in 0..count {
            let t = self.tokens.pop_front()?;
            oldest = Some(oldest.map_or(t, |o: Picos| o.min(t)));
        }
        oldest
    }
}

/// A task node of the simulated network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimNode {
    /// Node name (task or black-box instance).
    pub name: String,
    /// Response time of one firing, in picoseconds.
    pub response_time: Picos,
    /// `(buffer, values per firing)` read at the start of a firing.
    pub reads: Vec<(SimBufferId, usize)>,
    /// `(buffer, values per firing)` written at the end of a firing.
    pub writes: Vec<(SimBufferId, usize)>,
    /// Processor this node is mapped to.
    pub core: usize,
    /// Number of completed firings.
    pub firings: u64,
}

/// A time-triggered source feeding one or more buffers at a fixed period.
/// Multi-reader channels are realised as one destination buffer per reader;
/// every tick delivers the sample to each destination (a broadcast, matching
/// dataflow semantics where every reader sees every token).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimSource {
    /// Source name.
    pub name: String,
    /// Destination buffers (one per reader of the source channel).
    pub buffers: Vec<SimBufferId>,
    /// Period in picoseconds.
    pub period: Picos,
    /// Samples delivered (counted per destination).
    pub produced: u64,
    /// Ticks at which a destination buffer was full (a real system would
    /// lose the sample; the CTA buffer sizing guarantees this never
    /// happens). Counted per full destination.
    pub overflows: u64,
}

/// A time-triggered sink draining a buffer at a fixed period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimSink {
    /// Sink name.
    pub name: String,
    /// Buffer the sink consumes from.
    pub buffer: SimBufferId,
    /// Period in picoseconds.
    pub period: Picos,
    /// Samples consumed.
    pub consumed: u64,
    /// Ticks at which no data was available (deadline misses).
    pub misses: u64,
    /// Total ticks elapsed (including warm-up).
    pub ticks: u64,
    /// Number of start-up ticks to ignore before counting misses (the
    /// pipeline needs to fill once; the CTA offsets predict this time).
    pub warmup_ticks: u64,
    /// Observed end-to-end latencies (origin timestamp to consumption), in
    /// picoseconds.
    pub latencies: Vec<Picos>,
}

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Number of processors; nodes are assigned round-robin. `0` means one
    /// processor per node (fully parallel, the assumption of the CTA model).
    pub cores: usize,
    /// Sink ticks ignored before misses are counted (pipeline warm-up).
    pub warmup_ticks: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            cores: 0,
            warmup_ticks: 4,
        }
    }
}

/// The simulated network: buffers, task nodes, sources and sinks.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimNetwork {
    /// All buffers.
    pub buffers: IndexVec<SimBufferId, SimBuffer>,
    /// All task nodes.
    pub nodes: IndexVec<SimNodeId, SimNode>,
    /// All sources.
    pub sources: IndexVec<SimSourceId, SimSource>,
    /// All sinks.
    pub sinks: IndexVec<SimSinkId, SimSink>,
}

/// Results of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimMetrics {
    /// Simulated time, in picoseconds.
    pub end_time: Picos,
    /// Per sink: (name, consumed, misses, max latency in seconds).
    pub sinks: Vec<(String, u64, u64, f64)>,
    /// Per source: (name, produced, overflows).
    pub sources: Vec<(String, u64, u64)>,
    /// Per buffer: (name, capacity, max occupancy).
    pub buffers: Vec<(String, usize, usize)>,
    /// Per node: (name, firings).
    pub node_firings: Vec<(String, u64)>,
    /// Total values ever written across all buffers (the token count the
    /// runtime's throughput reports are compared against).
    pub tokens_written: u64,
}

impl SimMetrics {
    /// Total deadline misses over all sinks.
    pub fn total_misses(&self) -> u64 {
        self.sinks.iter().map(|(_, _, m, _)| m).sum()
    }

    /// Total source overflows.
    pub fn total_overflows(&self) -> u64 {
        self.sources.iter().map(|(_, _, o)| o).sum()
    }

    /// Measured throughput of a sink in samples per second.
    pub fn sink_throughput(&self, name: &str) -> Option<f64> {
        let (_, consumed, _, _) = self.sinks.iter().find(|(n, ..)| n.contains(name))?;
        Some(*consumed as f64 / (self.end_time as f64 / 1e12))
    }

    /// Worst observed end-to-end latency into a sink, in seconds.
    pub fn sink_max_latency(&self, name: &str) -> Option<f64> {
        self.sinks
            .iter()
            .find(|(n, ..)| n.contains(name))
            .map(|(_, _, _, l)| *l)
    }

    /// True if no sink missed a deadline and no source overflowed.
    pub fn meets_real_time_constraints(&self) -> bool {
        self.total_misses() == 0 && self.total_overflows() == 0
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    SourceTick(SimSourceId),
    SinkTick(SimSinkId),
    NodeComplete(SimNodeId),
}

impl EventKind {
    /// The documented tie-breaking rule for events at the same instant:
    /// **sources deliver first, completing nodes commit second, sinks
    /// consume last**, and within a kind, lower ids go first. The rule is
    /// *structural* — it depends only on (time, kind, id), never on the
    /// order events happened to be inserted into the queue — which is what
    /// makes the simulation replayable by an independent engine (`oil-rt`)
    /// and insensitive to queue-population order
    /// (`tests/determinism.rs::sim_traces_are_insensitive_to_event_insertion_order`).
    fn rank(self) -> (u8, usize) {
        match self {
            EventKind::SourceTick(i) => (0, i.index()),
            EventKind::NodeComplete(i) => (1, i.index()),
            EventKind::SinkTick(i) => (2, i.index()),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: Picos,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (time, rank) (BinaryHeap is a max-heap, so reverse).
        other
            .time
            .cmp(&self.time)
            .then(other.kind.rank().cmp(&self.kind.rank()))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl SimNetwork {
    /// Add a buffer, returning its index.
    pub fn add_buffer(
        &mut self,
        name: impl Into<String>,
        capacity: usize,
        initial_tokens: usize,
    ) -> SimBufferId {
        let mut b = SimBuffer::new(name.into(), capacity.max(initial_tokens).max(1));
        b.push(0, initial_tokens);
        self.buffers.push(b)
    }

    /// Add a task node, returning its index.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        response_time: Picos,
        reads: Vec<(SimBufferId, usize)>,
        writes: Vec<(SimBufferId, usize)>,
    ) -> SimNodeId {
        let core = self.nodes.len();
        self.nodes.push(SimNode {
            name: name.into(),
            response_time,
            reads,
            writes,
            core,
            firings: 0,
        })
    }

    /// Add a time-triggered source feeding a single buffer.
    pub fn add_source(
        &mut self,
        name: impl Into<String>,
        buffer: SimBufferId,
        period: Picos,
    ) -> SimSourceId {
        self.add_source_fanout(name, vec![buffer], period)
    }

    /// Add a time-triggered source broadcasting to several buffers (one per
    /// reader of a multi-reader source channel).
    pub fn add_source_fanout(
        &mut self,
        name: impl Into<String>,
        buffers: Vec<SimBufferId>,
        period: Picos,
    ) -> SimSourceId {
        self.sources.push(SimSource {
            name: name.into(),
            buffers,
            period,
            produced: 0,
            overflows: 0,
        })
    }

    /// Add a time-triggered sink.
    pub fn add_sink(
        &mut self,
        name: impl Into<String>,
        buffer: SimBufferId,
        period: Picos,
    ) -> SimSinkId {
        self.sinks.push(SimSink {
            name: name.into(),
            buffer,
            period,
            consumed: 0,
            misses: 0,
            ticks: 0,
            warmup_ticks: 0,
            latencies: Vec::new(),
        })
    }

    /// Run the simulation for `duration` picoseconds.
    pub fn run(&mut self, duration: Picos, config: &SimulationConfig) -> SimMetrics {
        self.run_impl(duration, config, false, None).0
    }

    /// As [`SimNetwork::run`], additionally recording the per-buffer token
    /// trace (see [`crate::trace`]): the origin timestamp of every token
    /// pushed into every buffer, in push order.
    pub fn run_traced(
        &mut self,
        duration: Picos,
        config: &SimulationConfig,
    ) -> (SimMetrics, ExecutionTrace) {
        let (metrics, trace) = self.run_impl(duration, config, true, None);
        (metrics, trace.expect("trace recording was requested"))
    }

    /// As [`SimNetwork::run_traced`], but populating the initial event queue
    /// in the order given by `tick_order` — a permutation of
    /// `0..sources+sinks` where values `< sources` name source ticks and the
    /// rest name sink ticks. Because event ordering is structural
    /// ([`EventKind::rank`]), the insertion order must not influence the
    /// trace; `tests/determinism.rs` pins that property.
    pub fn run_traced_with_tick_order(
        &mut self,
        duration: Picos,
        config: &SimulationConfig,
        tick_order: &[usize],
    ) -> (SimMetrics, ExecutionTrace) {
        let (metrics, trace) = self.run_impl(duration, config, true, Some(tick_order));
        (metrics, trace.expect("trace recording was requested"))
    }

    fn run_impl(
        &mut self,
        duration: Picos,
        config: &SimulationConfig,
        record: bool,
        tick_order: Option<&[usize]>,
    ) -> (SimMetrics, Option<ExecutionTrace>) {
        // Processor assignment.
        let cores = if config.cores == 0 {
            self.nodes.len().max(1)
        } else {
            config.cores
        };
        for (i, n) in self.nodes.iter_mut().enumerate() {
            n.core = i % cores;
        }
        for s in &mut self.sinks {
            s.warmup_ticks = config.warmup_ticks;
        }

        // Trace recording: per-buffer push log, seeded with the tokens
        // already present (initial tokens, origin 0).
        let mut pushes: IndexVec<SimBufferId, Vec<Picos>> = IndexVec::new();
        if record {
            for b in &self.buffers {
                pushes.push(b.tokens.iter().copied().collect());
            }
        }

        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        // Initial ticks, by default sources then sinks in id order; a test
        // hook may permute the insertion order (the structural event
        // ordering makes this unobservable).
        let initial: Vec<Event> = self
            .sources
            .iter_enumerated()
            .map(|(i, s)| Event {
                time: s.period,
                kind: EventKind::SourceTick(i),
            })
            .chain(self.sinks.iter_enumerated().map(|(i, s)| Event {
                time: s.period,
                kind: EventKind::SinkTick(i),
            }))
            .collect();
        match tick_order {
            None => heap.extend(initial),
            Some(order) => {
                assert_eq!(
                    order.len(),
                    initial.len(),
                    "tick_order must be a permutation"
                );
                heap.extend(order.iter().map(|&i| initial[i]));
            }
        }

        // Core and node state.
        let mut core_busy_until: Vec<Picos> = vec![0; cores];
        let mut node_busy: IndexVec<SimNodeId, bool> = IndexVec::from_elem(false, self.nodes.len());
        // Origin timestamp carried by the firing in flight.
        let mut node_origin: IndexVec<SimNodeId, Picos> = IndexVec::from_elem(0, self.nodes.len());
        let mut now: Picos = 0;

        // Try to start every node that can fire at `now`.
        macro_rules! start_ready_nodes {
            () => {
                loop {
                    let mut progressed = false;
                    for ni in self.nodes.indices() {
                        if node_busy[ni] {
                            continue;
                        }
                        let node = &self.nodes[ni];
                        if core_busy_until[node.core] > now {
                            continue;
                        }
                        let inputs_ready =
                            ports_satisfied(&node.reads, |b| self.buffers[b].occupancy());
                        let outputs_ready =
                            ports_satisfied(&node.writes, |b| self.buffers[b].space());
                        if inputs_ready && outputs_ready {
                            let reads = node.reads.clone();
                            let mut origin = now;
                            for (b, c) in reads {
                                if let Some(o) = self.buffers[b].pop(c) {
                                    origin = origin.min(o);
                                }
                            }
                            let node = &mut self.nodes[ni];
                            node_origin[ni] = origin;
                            node_busy[ni] = true;
                            let complete = now + node.response_time;
                            core_busy_until[node.core] = complete;
                            heap.push(Event {
                                time: complete,
                                kind: EventKind::NodeComplete(ni),
                            });
                            progressed = true;
                        }
                    }
                    if !progressed {
                        break;
                    }
                }
            };
        }

        start_ready_nodes!();

        while let Some(ev) = heap.pop() {
            if ev.time > duration {
                break;
            }
            now = ev.time;
            match ev.kind {
                EventKind::SourceTick(i) => {
                    // Broadcast: every destination buffer (one per reader)
                    // receives the sample; a full destination drops it and
                    // counts an overflow. Indexed iteration — this is the
                    // hottest event in the loop; cloning the destination
                    // list per tick would allocate millions of times per
                    // sweep.
                    for d in 0..self.sources[i].buffers.len() {
                        let buffer = self.sources[i].buffers[d];
                        if self.buffers[buffer].space() >= 1 {
                            self.buffers[buffer].push(now, 1);
                            self.sources[i].produced += 1;
                            if record {
                                pushes[buffer].push(now);
                            }
                        } else {
                            self.sources[i].overflows += 1;
                        }
                    }
                    let next = now + self.sources[i].period;
                    heap.push(Event {
                        time: next,
                        kind: EventKind::SourceTick(i),
                    });
                }
                EventKind::SinkTick(i) => {
                    let buffer = self.sinks[i].buffer;
                    let tick_number = self.sinks[i].ticks;
                    self.sinks[i].ticks += 1;
                    if self.buffers[buffer].occupancy() >= 1 {
                        let origin = self.buffers[buffer].pop(1).unwrap_or(now);
                        self.sinks[i].consumed += 1;
                        self.sinks[i].latencies.push(now.saturating_sub(origin));
                    } else if tick_number >= self.sinks[i].warmup_ticks {
                        self.sinks[i].misses += 1;
                    }
                    let next = now + self.sinks[i].period;
                    heap.push(Event {
                        time: next,
                        kind: EventKind::SinkTick(i),
                    });
                }
                EventKind::NodeComplete(ni) => {
                    node_busy[ni] = false;
                    let writes = self.nodes[ni].writes.clone();
                    let origin = node_origin[ni];
                    for (b, c) in writes {
                        self.buffers[b].push(origin, c);
                        if record {
                            for _ in 0..c {
                                pushes[b].push(origin);
                            }
                        }
                    }
                    self.nodes[ni].firings += 1;
                }
            }
            start_ready_nodes!();
        }

        let metrics = SimMetrics {
            end_time: duration,
            sinks: self
                .sinks
                .iter()
                .map(|s| {
                    let max_latency = s.latencies.iter().copied().max().unwrap_or(0) as f64 / 1e12;
                    (s.name.clone(), s.consumed, s.misses, max_latency)
                })
                .collect(),
            sources: self
                .sources
                .iter()
                .map(|s| (s.name.clone(), s.produced, s.overflows))
                .collect(),
            buffers: self
                .buffers
                .iter()
                .map(|b| (b.name.clone(), b.capacity, b.max_occupancy))
                .collect(),
            node_firings: self
                .nodes
                .iter()
                .map(|n| (n.name.clone(), n.firings))
                .collect(),
            tokens_written: self.buffers.iter().map(|b| b.total_written).sum(),
        };
        let trace = record.then(|| ExecutionTrace {
            buffers: self
                .buffers
                .iter_enumerated()
                .map(|(i, b)| BufferTrace {
                    name: b.name.clone(),
                    pushes: std::mem::take(&mut pushes[i]),
                })
                .collect(),
            sources: self
                .sources
                .iter()
                .map(|s| (s.name.clone(), s.produced, s.overflows))
                .collect(),
            sinks: self
                .sinks
                .iter()
                .map(|s| (s.name.clone(), s.consumed, s.misses))
                .collect(),
        });
        (metrics, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::picos;

    /// source (1 kHz) -> node (0.1 ms) -> sink (1 kHz), buffers of 4.
    fn simple_chain(node_rt: f64) -> SimNetwork {
        let mut net = SimNetwork::default();
        let bin = net.add_buffer("in", 4, 0);
        let bout = net.add_buffer("out", 4, 0);
        net.add_node("work", picos(node_rt), vec![(bin, 1)], vec![(bout, 1)]);
        net.add_source("src", bin, picos(1e-3));
        net.add_sink("snk", bout, picos(1e-3));
        net
    }

    #[test]
    fn chain_meets_constraints_when_fast_enough() {
        let mut net = simple_chain(1e-4);
        let metrics = net.run(picos(0.5), &SimulationConfig::default());
        assert!(metrics.meets_real_time_constraints(), "{metrics:?}");
        let thr = metrics.sink_throughput("snk").unwrap();
        assert!((thr - 1000.0).abs() < 20.0, "throughput {thr}");
        assert!(metrics.sink_max_latency("snk").unwrap() <= 2.5e-3);
    }

    #[test]
    fn chain_misses_deadlines_when_too_slow() {
        // The node needs 3 ms per sample but samples arrive every 1 ms.
        let mut net = simple_chain(3e-3);
        let metrics = net.run(picos(0.5), &SimulationConfig::default());
        assert!(metrics.total_misses() > 0 || metrics.total_overflows() > 0);
        assert!(!metrics.meets_real_time_constraints());
    }

    #[test]
    fn multi_rate_node_fires_at_reduced_rate() {
        // A decimator by 4: reads 4, writes 1; sink at 250 Hz.
        let mut net = SimNetwork::default();
        let bin = net.add_buffer("in", 8, 0);
        let bout = net.add_buffer("out", 4, 0);
        net.add_node("decim", picos(1e-4), vec![(bin, 4)], vec![(bout, 1)]);
        net.add_source("src", bin, picos(1e-3));
        net.add_sink("snk", bout, picos(4e-3));
        let metrics = net.run(picos(1.0), &SimulationConfig::default());
        assert!(metrics.meets_real_time_constraints(), "{metrics:?}");
        let firings = metrics.node_firings[0].1;
        assert!((200..=260).contains(&firings), "firings {firings}");
    }

    #[test]
    fn undersized_buffer_causes_overflow() {
        let mut net = SimNetwork::default();
        let bin = net.add_buffer("in", 1, 0);
        let bout = net.add_buffer("out", 1, 0);
        net.add_node("work", picos(5e-3), vec![(bin, 1)], vec![(bout, 1)]);
        net.add_source("src", bin, picos(1e-3));
        net.add_sink("snk", bout, picos(1e-3));
        let metrics = net.run(picos(0.2), &SimulationConfig::default());
        assert!(metrics.total_overflows() > 0);
    }

    #[test]
    fn initial_tokens_let_consumers_start_immediately() {
        let mut net = SimNetwork::default();
        let b = net.add_buffer("pre", 8, 4);
        let bout = net.add_buffer("out", 8, 0);
        net.add_node("cons", picos(1e-4), vec![(b, 4)], vec![(bout, 1)]);
        net.add_sink("snk", bout, picos(1e-2));
        let metrics = net.run(picos(0.05), &SimulationConfig::default());
        assert_eq!(metrics.node_firings[0].1, 1);
        assert_eq!(metrics.buffers[0].2, 4); // max occupancy of the pre-filled buffer
    }

    #[test]
    fn limited_cores_serialise_execution() {
        // Two independent chains; with one core the two nodes share it.
        let mut net = SimNetwork::default();
        let b1 = net.add_buffer("in1", 8, 0);
        let o1 = net.add_buffer("out1", 8, 0);
        let b2 = net.add_buffer("in2", 8, 0);
        let o2 = net.add_buffer("out2", 8, 0);
        net.add_node("n1", picos(0.6e-3), vec![(b1, 1)], vec![(o1, 1)]);
        net.add_node("n2", picos(0.6e-3), vec![(b2, 1)], vec![(o2, 1)]);
        net.add_source("s1", b1, picos(1e-3));
        net.add_source("s2", b2, picos(1e-3));
        net.add_sink("k1", o1, picos(1e-3));
        net.add_sink("k2", o2, picos(1e-3));

        let parallel = net.clone().run(
            picos(0.3),
            &SimulationConfig {
                cores: 0,
                warmup_ticks: 4,
            },
        );
        assert!(parallel.meets_real_time_constraints(), "{parallel:?}");

        // One core must execute 1.2 ms of work per 1 ms of input: it falls
        // behind and violates the constraints.
        let serial = net.run(
            picos(0.3),
            &SimulationConfig {
                cores: 1,
                warmup_ticks: 4,
            },
        );
        assert!(!serial.meets_real_time_constraints());
    }

    #[test]
    fn latency_accounts_for_pipeline_depth() {
        let mut net = SimNetwork::default();
        let a = net.add_buffer("a", 8, 0);
        let b = net.add_buffer("b", 8, 0);
        let c = net.add_buffer("c", 8, 0);
        net.add_node("n1", picos(2e-3), vec![(a, 1)], vec![(b, 1)]);
        net.add_node("n2", picos(3e-3), vec![(b, 1)], vec![(c, 1)]);
        net.add_source("src", a, picos(10e-3));
        net.add_sink("snk", c, picos(10e-3));
        let metrics = net.run(picos(0.5), &SimulationConfig::default());
        let latency = metrics.sink_max_latency("snk").unwrap();
        assert!(latency >= 5e-3, "latency {latency}");
        assert!(latency <= 20e-3, "latency {latency}");
    }
}
