//! Discrete-event simulation substrate for compiled OIL programs.
//!
//! The paper evaluates OIL on an embedded multi-core system with a
//! guaranteed-throughput ring interconnect; that hardware is replaced here by
//! a discrete-event simulator (see DESIGN.md, substitutions table). The
//! simulator executes the task graphs produced by the compiler:
//!
//! * every task is a node that fires data-driven — when enough values are
//!   available in its input buffers and enough space in its output buffers —
//!   and occupies its processor for its response time;
//! * circular buffers have the finite capacities computed by CTA buffer
//!   sizing;
//! * sources and sinks are time-triggered at their declared frequencies; the
//!   simulator records every deadline miss (a sink firing with no data) and
//!   every overflow (a source firing with no space), which are exactly the
//!   violations the CTA analysis promises cannot happen;
//! * tokens carry the timestamp of the source sample they originate from, so
//!   end-to-end latencies can be measured and compared against the
//!   `start .. before ..` constraints.
//!
//! [`build::build_simulation`] constructs a simulation directly from a
//! [`CompiledProgram`](oil_compiler::CompiledProgram).

pub mod build;
pub mod network;

pub use build::{build_simulation, build_simulation_with_registry};
pub use network::{
    Picos, SimBufferId, SimMetrics, SimNetwork, SimNode, SimNodeId, SimSinkId, SimSourceId,
    SimulationConfig,
};

/// Convert seconds to the simulator's picosecond time base.
pub fn picos(seconds: f64) -> Picos {
    (seconds * 1e12).round() as Picos
}

/// Convert the simulator's picosecond time base back to seconds.
pub fn seconds(p: Picos) -> f64 {
    p as f64 / 1e12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions_round_trip() {
        assert_eq!(picos(1e-3), 1_000_000_000);
        assert_eq!(picos(1.0 / 6.4e6), 156_250);
        assert!((seconds(picos(2.5e-6)) - 2.5e-6).abs() < 1e-15);
    }
}
