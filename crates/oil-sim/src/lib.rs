//! Discrete-event simulation substrate for compiled OIL programs.
//!
//! The paper evaluates OIL on an embedded multi-core system with a
//! guaranteed-throughput ring interconnect; that hardware is replaced here by
//! a discrete-event simulator (see DESIGN.md, substitutions table). The
//! simulator executes the task graphs produced by the compiler:
//!
//! * every task is a node that fires data-driven — when enough values are
//!   available in its input buffers and enough space in its output buffers —
//!   and occupies its processor for its response time;
//! * circular buffers have the finite capacities computed by CTA buffer
//!   sizing;
//! * sources and sinks are time-triggered at their declared frequencies; the
//!   simulator records every deadline miss (a sink firing with no data) and
//!   every overflow (a source firing with no space), which are exactly the
//!   violations the CTA analysis promises cannot happen;
//! * tokens carry the timestamp of the source sample they originate from, so
//!   end-to-end latencies can be measured and compared against the
//!   `start .. before ..` constraints.
//!
//! [`build::build_simulation`] constructs a simulation directly from a
//! [`CompiledProgram`](oil_compiler::CompiledProgram).

pub mod build;
pub mod network;
pub mod time;
pub mod trace;

pub use build::{build_simulation, build_simulation_from_graph, build_simulation_with_registry};
pub use network::{
    Picos, SimBufferId, SimMetrics, SimNetwork, SimNode, SimNodeId, SimSinkId, SimSourceId,
    SimulationConfig,
};
pub use time::{picos_exact, picos_nearest, seconds_exact, TimeError};
pub use trace::{BufferTrace, ExecutionTrace, Fnv1a};

use oil_dataflow::Rational;

/// Convert seconds to the simulator's picosecond time base.
///
/// Convenience wrapper over the exact rational path
/// ([`time::picos_nearest`]): the `f64` is converted to the exactly equal
/// rational first, so the only rounding is the final quantisation onto the
/// picosecond grid.
///
/// # Panics
/// Panics on NaN/infinite input, negative seconds or picosecond overflow;
/// use [`time::picos_nearest`] for the fallible version.
pub fn picos(seconds: f64) -> Picos {
    time::picos_nearest(Rational::from_f64(seconds))
        .unwrap_or_else(|e| panic!("{seconds} s cannot be placed on the picosecond clock: {e}"))
}

/// Convert the simulator's picosecond time base back to seconds (the closest
/// `f64` to the exact value).
pub fn seconds(p: Picos) -> f64 {
    time::seconds_exact(p).to_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions_round_trip() {
        assert_eq!(picos(1e-3), 1_000_000_000);
        assert_eq!(picos(1.0 / 6.4e6), 156_250);
        assert!((seconds(picos(2.5e-6)) - 2.5e-6).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "picosecond clock")]
    fn negative_seconds_panic() {
        let _ = picos(-1.0);
    }
}
