//! Building a simulation from a compiled OIL program.
//!
//! All graph construction lives in `oil_compiler::rtgraph`: the compiler
//! lowers the program into an engine-agnostic [`RtGraph`] (one node per
//! runnable task, one buffer per channel **per reader**, CTA capacities,
//! exact rational times), and this module merely maps that graph onto the
//! simulator's structures, quantising the rational times onto the picosecond
//! clock through the checked conversions of [`crate::time`]. The
//! multi-threaded runtime (`oil-rt`) consumes the *same* graph, which is
//! what makes trace-equivalence between the two engines a statement about
//! scheduling semantics rather than graph construction.

use crate::network::SimNetwork;
use crate::time::picos_nearest;
use oil_compiler::rtgraph::{self, RtGraph};
use oil_compiler::CompiledProgram;

/// Build a [`SimNetwork`] from a compiled program, treating any black-box
/// modules as single-rate nodes with a 1 µs response time. Use
/// [`build_simulation_with_registry`] to supply their real interfaces.
pub fn build_simulation(compiled: &CompiledProgram) -> SimNetwork {
    build_simulation_from_graph(&rtgraph::lower(compiled))
}

/// Build a [`SimNetwork`] from a compiled program, using `registry` to obtain
/// the consumption/production rates and response times of black-box modules
/// (e.g. the PAL decoder's `Video` and `Audio` modules).
pub fn build_simulation_with_registry(
    compiled: &CompiledProgram,
    registry: &oil_lang::FunctionRegistry,
) -> SimNetwork {
    build_simulation_from_graph(&rtgraph::lower_with_registry(compiled, registry))
}

/// Build a [`SimNetwork`] from an already-lowered runtime graph.
///
/// # Panics
/// Panics if a response time or period cannot be placed on the picosecond
/// clock (negative or overflowing — impossible for compiler-produced
/// graphs).
pub fn build_simulation_from_graph(graph: &RtGraph) -> SimNetwork {
    let mut net = SimNetwork::default();
    let buffer_ids: Vec<_> = graph
        .buffers
        .iter()
        .map(|b| net.add_buffer(b.name.clone(), b.capacity, b.initial_tokens))
        .collect();
    let sim_buffer = |id: oil_compiler::RtBufferId| buffer_ids[oil_dataflow::index::Idx::index(id)];

    for n in &graph.nodes {
        let response = picos_nearest(n.response)
            .unwrap_or_else(|e| panic!("response time of `{}`: {e}", n.name));
        let reads = n.reads.iter().map(|&(b, c)| (sim_buffer(b), c)).collect();
        let writes = n.writes.iter().map(|&(b, c)| (sim_buffer(b), c)).collect();
        net.add_node(n.name.clone(), response, reads, writes);
    }
    for s in &graph.sources {
        let period =
            picos_nearest(s.period).unwrap_or_else(|e| panic!("period of `{}`: {e}", s.name));
        let outputs = s.outputs.iter().map(|&b| sim_buffer(b)).collect();
        net.add_source_fanout(s.name.clone(), outputs, period);
    }
    for s in &graph.sinks {
        let period =
            picos_nearest(s.period).unwrap_or_else(|e| panic!("period of `{}`: {e}", s.name));
        net.add_sink(s.name.clone(), sim_buffer(s.input), period);
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::SimulationConfig;
    use crate::picos;
    use oil_compiler::{compile, CompilerOptions};
    use oil_lang::registry::{FunctionRegistry, FunctionSignature};

    fn registry() -> FunctionRegistry {
        let mut r = FunctionRegistry::new();
        for f in ["f", "g", "init", "src", "snk"] {
            r.register(FunctionSignature::pure(f, 1e-5));
        }
        r
    }

    #[test]
    fn compiled_chain_simulates_without_misses() {
        let src = r#"
            mod seq W(int a, out int b){ loop{ f(a, out b); } while(1); }
            mod par D(){
                source int x = src() @ 1 kHz;
                sink int y = snk() @ 1 kHz;
                start x 5 ms before y;
                W(x, out y)
            }
        "#;
        let compiled = compile(src, &registry(), &CompilerOptions::default()).unwrap();
        let mut net = build_simulation(&compiled);
        assert_eq!(net.sources.len(), 1);
        assert_eq!(net.sinks.len(), 1);
        assert_eq!(net.nodes.len(), 1);
        let metrics = net.run(picos(0.5), &SimulationConfig::default());
        assert!(metrics.meets_real_time_constraints(), "{metrics:?}");
        let thr = metrics.sink_throughput("y").unwrap();
        assert!((thr - 1000.0).abs() < 30.0, "throughput {thr}");
        // The measured latency respects the analysed 5 ms bound.
        assert!(metrics.sink_max_latency("y").unwrap() <= 5e-3 + 1e-9);
    }

    #[test]
    fn two_stage_pipeline_with_fifo() {
        let src = r#"
            mod seq P(int a, out int m){ loop{ f(a, out m); } while(1); }
            mod seq Q(int m, out int b){ loop{ g(m, out b); } while(1); }
            mod par D(){
                fifo int mid;
                source int x = src() @ 2 kHz;
                sink int y = snk() @ 2 kHz;
                P(x, out mid) || Q(mid, out y)
            }
        "#;
        let compiled = compile(src, &registry(), &CompilerOptions::default()).unwrap();
        let mut net = build_simulation(&compiled);
        assert_eq!(net.nodes.len(), 2);
        let metrics = net.run(picos(0.5), &SimulationConfig::default());
        assert!(metrics.meets_real_time_constraints(), "{metrics:?}");
        // Buffer occupancy never exceeds the sized capacity.
        for (name, cap, max_occ) in &metrics.buffers {
            assert!(max_occ <= cap, "buffer {name} overflowed its capacity");
        }
    }

    #[test]
    fn multi_rate_program_produces_downsampled_output() {
        let src = r#"
            mod seq Down(int a, out int b){ loop{ f(a:4, out b); } while(1); }
            mod par D(){
                source int x = src() @ 8 kHz;
                sink int y = snk() @ 2 kHz;
                Down(x, out y)
            }
        "#;
        let compiled = compile(src, &registry(), &CompilerOptions::default()).unwrap();
        let mut net = build_simulation(&compiled);
        let metrics = net.run(picos(1.0), &SimulationConfig::default());
        assert!(metrics.meets_real_time_constraints(), "{metrics:?}");
        let thr = metrics.sink_throughput("y").unwrap();
        assert!((thr - 2000.0).abs() < 60.0, "throughput {thr}");
    }

    #[test]
    fn initial_tokens_reach_the_channel_buffer() {
        let src = r#"
            mod seq A(out int a, int b){ loop{ f(out a:3, b:3); } while(1); }
            mod seq B(out int c, int d){ init(out c:4); loop{ g(out c:2, d:2); } while(1); }
            mod par C(){ fifo int x, y; A(out x, y) || B(out y, x) }
        "#;
        let compiled = compile(src, &registry(), &CompilerOptions::default()).unwrap();
        let net = build_simulation(&compiled);
        let y = net.buffers.iter().find(|b| b.name.ends_with(".y")).unwrap();
        assert!(y.max_occupancy >= 4, "initial tokens missing: {y:?}");
    }

    #[test]
    fn multi_reader_source_broadcasts_to_every_reader() {
        // One source read by two chains: each sink must see the full rate
        // (the readers must not compete for tokens).
        let src = r#"
            mod seq P(int a, out int m){ loop{ f(a, out m); } while(1); }
            mod seq Q(int a, out int n){ loop{ g(a, out n); } while(1); }
            mod par D(){
                source int x = src() @ 1 kHz;
                sink int y = snk() @ 1 kHz;
                sink int z = snk() @ 1 kHz;
                P(x, out y) || Q(x, out z)
            }
        "#;
        let compiled = compile(src, &registry(), &CompilerOptions::default()).unwrap();
        let mut net = build_simulation(&compiled);
        let metrics = net.run(picos(0.5), &SimulationConfig::default());
        assert!(metrics.meets_real_time_constraints(), "{metrics:?}");
        for sink in ["y", "z"] {
            let thr = metrics.sink_throughput(sink).unwrap();
            assert!((thr - 1000.0).abs() < 30.0, "sink {sink} throughput {thr}");
        }
    }
}
