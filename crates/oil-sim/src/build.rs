//! Building a simulation from a compiled OIL program.
//!
//! The builder places one simulator node per extracted task (black boxes
//! become a single node with their interface rates), one simulator buffer per
//! channel and per local variable buffer — with the capacities computed by
//! CTA buffer sizing — and one time-triggered source/sink per `source`/`sink`
//! declaration. Running the simulation therefore validates the analysis: if
//! the CTA model accepted the program, the simulation must meet all deadlines
//! with the sized buffers.

use crate::network::{Picos, SimBufferId, SimNetwork};
use crate::picos;
use oil_compiler::CompiledProgram;
use oil_dataflow::index::IndexVec;
use oil_dataflow::taskgraph::BufferId;
use oil_dataflow::ChannelId;
use oil_lang::sema::{ChannelKind, InstanceId};
use std::collections::BTreeMap;

/// Default capacity for local buffers the sizing pass did not need to grow.
const DEFAULT_LOCAL_CAPACITY: usize = 4;
/// Extra slack added to every simulated buffer: the CTA capacities are
/// sufficient under the model's scheduling assumptions; the simulator's
/// data-driven schedule differs slightly (production at completion), so one
/// extra slot avoids spurious overflows without masking real undersizing.
const CAPACITY_SLACK: usize = 1;

/// Build a [`SimNetwork`] from a compiled program, treating any black-box
/// modules as single-rate nodes with a 1 µs response time. Use
/// [`build_simulation_with_registry`] to supply their real interfaces.
pub fn build_simulation(compiled: &CompiledProgram) -> SimNetwork {
    build_simulation_with_registry(compiled, &oil_lang::FunctionRegistry::new())
}

/// Build a [`SimNetwork`] from a compiled program, using `registry` to obtain
/// the consumption/production rates and response times of black-box modules
/// (e.g. the PAL decoder's `Video` and `Audio` modules).
pub fn build_simulation_with_registry(
    compiled: &CompiledProgram,
    registry: &oil_lang::FunctionRegistry,
) -> SimNetwork {
    let mut net = SimNetwork::default();
    let graph = &compiled.analyzed.graph;

    // Per-firing burst size of an instance on a channel (the colon notation
    // of sequential modules or a black box's interface counts).
    let burst = |instance: Option<InstanceId>, channel: ChannelId| -> usize {
        let Some(ii) = instance else { return 1 };
        let inst = &graph.instances[ii];
        let Some(binding) = inst.bindings.iter().find(|b| b.channel == channel) else {
            return 1;
        };
        match &compiled.derived.task_graphs[ii] {
            Some(tg) => tg
                .buffer_by_name(&binding.param)
                .map(|b| {
                    tg.tasks
                        .iter()
                        .flat_map(|t| t.reads.iter().chain(t.writes.iter()))
                        .filter(|a| a.buffer == b)
                        .map(|a| a.count as usize)
                        .max()
                        .unwrap_or(1)
                })
                .unwrap_or(1),
            None => registry
                .black_box(&inst.module_name)
                .map(|bb| {
                    let position = inst
                        .bindings
                        .iter()
                        .filter(|b| b.out == binding.out)
                        .position(|b| b.channel == channel)
                        .unwrap_or(0);
                    let counts = if binding.out {
                        &bb.production
                    } else {
                        &bb.consumption
                    };
                    counts.get(position).copied().unwrap_or(1).max(1) as usize
                })
                .unwrap_or(1),
        }
    };

    // Channels become buffers; sources and sinks additionally get
    // time-triggered drivers.
    let mut channel_buffer: IndexVec<ChannelId, SimBufferId> =
        IndexVec::with_capacity(graph.channels.len());
    for (ci, ch) in graph.channels.iter_enumerated() {
        // The simulator transfers bursts atomically, so a channel needs room
        // for at least one full write burst plus one full read burst on top
        // of whatever the CTA sizing computed.
        let write_burst = burst(ch.writer, ci);
        let read_burst = ch
            .readers
            .iter()
            .map(|&r| burst(Some(r), ci))
            .max()
            .unwrap_or(1);
        let capacity = (compiled
            .buffers
            .channels
            .get(&ch.name)
            .copied()
            .unwrap_or(DEFAULT_LOCAL_CAPACITY as u64) as usize)
            .max(write_burst + read_burst)
            + CAPACITY_SLACK;
        // Initial tokens written by prologue statements of the writer.
        let initial = initial_tokens_for_channel(compiled, ci);
        let b = net.add_buffer(ch.name.clone(), capacity, initial);
        channel_buffer.push(b);
        match &ch.kind {
            ChannelKind::Source { func, rate_hz } => {
                net.add_source(format!("src_{func}_{}", ch.name), b, period(*rate_hz));
            }
            ChannelKind::Sink { func, rate_hz } => {
                net.add_sink(format!("snk_{func}_{}", ch.name), b, period(*rate_hz));
            }
            ChannelKind::Fifo => {}
        }
    }

    // Instances: tasks of sequential modules, or a single node per black box.
    for (ii, inst) in graph.instances.iter_enumerated() {
        match &compiled.derived.task_graphs[ii] {
            Some(tg) => {
                // Local buffers for this instance.
                let mut local_buffer: BTreeMap<BufferId, SimBufferId> = BTreeMap::new();
                for (bi, b) in tg.buffers.iter_enumerated() {
                    if b.stream.is_some() {
                        continue;
                    }
                    let name = format!("{}.{}", inst.path, b.name);
                    let capacity = compiled
                        .buffers
                        .locals
                        .get(&name)
                        .copied()
                        .unwrap_or(DEFAULT_LOCAL_CAPACITY as u64)
                        as usize
                        + CAPACITY_SLACK;
                    local_buffer.insert(
                        bi,
                        net.add_buffer(name, capacity, b.initial_tokens as usize),
                    );
                }
                // Map a task-graph buffer to a simulator buffer: local
                // buffers directly, stream buffers to the bound channel.
                let sim_buffer = |bi: BufferId| -> Option<SimBufferId> {
                    if let Some(&b) = local_buffer.get(&bi) {
                        return Some(b);
                    }
                    let stream = tg.buffers[bi].stream.as_ref()?;
                    let binding = inst.bindings.iter().find(|b| &b.param == stream)?;
                    Some(channel_buffer[binding.channel])
                };
                for t in &tg.tasks {
                    // Prologue tasks ran before start-up; their effect is the
                    // initial tokens already placed in the buffers.
                    if t.loop_nest.is_empty() && tg.loops.iter().any(|l| !l.tasks.is_empty()) {
                        continue;
                    }
                    let reads: Vec<(SimBufferId, usize)> = t
                        .reads
                        .iter()
                        .filter_map(|r| sim_buffer(r.buffer).map(|b| (b, r.count as usize)))
                        .collect();
                    let writes: Vec<(SimBufferId, usize)> = t
                        .writes
                        .iter()
                        .filter_map(|w| sim_buffer(w.buffer).map(|b| (b, w.count as usize)))
                        .collect();
                    net.add_node(
                        format!("{}.{}", inst.path, t.name),
                        picos(t.response_time),
                        reads,
                        writes,
                    );
                }
            }
            None => {
                // Black box: one node with the registered interface rates.
                let interface = registry.black_box(&inst.module_name);
                let rho = picos(interface.map(|i| i.response_time).unwrap_or(1e-6));
                let mut reads = Vec::new();
                let mut writes = Vec::new();
                let (mut in_idx, mut out_idx) = (0usize, 0usize);
                for b in &inst.bindings {
                    let buffer = channel_buffer[b.channel];
                    if b.out {
                        let count = interface
                            .and_then(|i| i.production.get(out_idx).copied())
                            .unwrap_or(1)
                            .max(1) as usize;
                        writes.push((buffer, count));
                        out_idx += 1;
                    } else {
                        let count = interface
                            .and_then(|i| i.consumption.get(in_idx).copied())
                            .unwrap_or(1)
                            .max(1) as usize;
                        reads.push((buffer, count));
                        in_idx += 1;
                    }
                }
                net.add_node(inst.path.clone(), rho, reads, writes);
            }
        }
    }

    net
}

fn period(rate_hz: f64) -> Picos {
    picos(1.0 / rate_hz)
}

fn initial_tokens_for_channel(compiled: &CompiledProgram, channel: ChannelId) -> usize {
    let graph = &compiled.analyzed.graph;
    let Some(writer) = graph.channels[channel].writer else {
        return 0;
    };
    let Some(tg) = &compiled.derived.task_graphs[writer] else {
        return 0;
    };
    let Some(binding) = graph.instances[writer]
        .bindings
        .iter()
        .find(|b| b.channel == channel && b.out)
    else {
        return 0;
    };
    tg.buffer_by_name(&binding.param)
        .map(|b| tg.buffers[b].initial_tokens as usize)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::SimulationConfig;
    use oil_compiler::{compile, CompilerOptions};
    use oil_lang::registry::{FunctionRegistry, FunctionSignature};

    fn registry() -> FunctionRegistry {
        let mut r = FunctionRegistry::new();
        for f in ["f", "g", "init", "src", "snk"] {
            r.register(FunctionSignature::pure(f, 1e-5));
        }
        r
    }

    #[test]
    fn compiled_chain_simulates_without_misses() {
        let src = r#"
            mod seq W(int a, out int b){ loop{ f(a, out b); } while(1); }
            mod par D(){
                source int x = src() @ 1 kHz;
                sink int y = snk() @ 1 kHz;
                start x 5 ms before y;
                W(x, out y)
            }
        "#;
        let compiled = compile(src, &registry(), &CompilerOptions::default()).unwrap();
        let mut net = build_simulation(&compiled);
        assert_eq!(net.sources.len(), 1);
        assert_eq!(net.sinks.len(), 1);
        assert_eq!(net.nodes.len(), 1);
        let metrics = net.run(picos(0.5), &SimulationConfig::default());
        assert!(metrics.meets_real_time_constraints(), "{metrics:?}");
        let thr = metrics.sink_throughput("y").unwrap();
        assert!((thr - 1000.0).abs() < 30.0, "throughput {thr}");
        // The measured latency respects the analysed 5 ms bound.
        assert!(metrics.sink_max_latency("y").unwrap() <= 5e-3 + 1e-9);
    }

    #[test]
    fn two_stage_pipeline_with_fifo() {
        let src = r#"
            mod seq P(int a, out int m){ loop{ f(a, out m); } while(1); }
            mod seq Q(int m, out int b){ loop{ g(m, out b); } while(1); }
            mod par D(){
                fifo int mid;
                source int x = src() @ 2 kHz;
                sink int y = snk() @ 2 kHz;
                P(x, out mid) || Q(mid, out y)
            }
        "#;
        let compiled = compile(src, &registry(), &CompilerOptions::default()).unwrap();
        let mut net = build_simulation(&compiled);
        assert_eq!(net.nodes.len(), 2);
        let metrics = net.run(picos(0.5), &SimulationConfig::default());
        assert!(metrics.meets_real_time_constraints(), "{metrics:?}");
        // Buffer occupancy never exceeds the sized capacity.
        for (name, cap, max_occ) in &metrics.buffers {
            assert!(max_occ <= cap, "buffer {name} overflowed its capacity");
        }
    }

    #[test]
    fn multi_rate_program_produces_downsampled_output() {
        let src = r#"
            mod seq Down(int a, out int b){ loop{ f(a:4, out b); } while(1); }
            mod par D(){
                source int x = src() @ 8 kHz;
                sink int y = snk() @ 2 kHz;
                Down(x, out y)
            }
        "#;
        let compiled = compile(src, &registry(), &CompilerOptions::default()).unwrap();
        let mut net = build_simulation(&compiled);
        let metrics = net.run(picos(1.0), &SimulationConfig::default());
        assert!(metrics.meets_real_time_constraints(), "{metrics:?}");
        let thr = metrics.sink_throughput("y").unwrap();
        assert!((thr - 2000.0).abs() < 60.0, "throughput {thr}");
    }

    #[test]
    fn initial_tokens_reach_the_channel_buffer() {
        let src = r#"
            mod seq A(out int a, int b){ loop{ f(out a:3, b:3); } while(1); }
            mod seq B(out int c, int d){ init(out c:4); loop{ g(out c:2, d:2); } while(1); }
            mod par C(){ fifo int x, y; A(out x, y) || B(out y, x) }
        "#;
        let compiled = compile(src, &registry(), &CompilerOptions::default()).unwrap();
        let net = build_simulation(&compiled);
        let y = net.buffers.iter().find(|b| b.name.ends_with(".y")).unwrap();
        assert!(y.max_occupancy >= 4, "initial tokens missing: {y:?}");
    }
}
