//! Token-trace recording: the common trace format both execution engines
//! (`oil-sim` and `oil-rt`) emit, and what "trace equivalence" means.
//!
//! A trace records, per buffer, the sequence of origin timestamps of every
//! token ever pushed (initial tokens first, origin 0), plus the per-source
//! produced/overflow counters and the per-sink consumed/miss counters. Two
//! executions of the same program are **trace-equivalent** when these are
//! bit-identical — the oracle of `tests/runtime_differential.rs`: the
//! multi-threaded runtime must be trace-equivalent to the discrete-event
//! simulator at every thread count.
//!
//! Traces also have a stable 64-bit digest (FNV-1a over the canonical byte
//! rendering) so regression corpora can pin expected behaviour per seed
//! without storing whole traces.

use crate::network::Picos;
use serde::{Deserialize, Serialize};

/// Per-buffer token trace: the buffer's name and the origin timestamp of
/// every token pushed into it, in push order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferTrace {
    /// Buffer name (channel, replicated `channel->reader`, or
    /// `<instance>.<variable>`).
    pub name: String,
    /// Origin timestamps of pushed tokens, in push order. Initial tokens
    /// appear first with origin 0.
    pub pushes: Vec<Picos>,
}

/// The complete observable behaviour of one execution.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ExecutionTrace {
    /// Per-buffer token traces, in buffer-id order.
    pub buffers: Vec<BufferTrace>,
    /// Per source: (name, samples produced, overflows), in source-id order.
    pub sources: Vec<(String, u64, u64)>,
    /// Per sink: (name, samples consumed, deadline misses), in sink-id order.
    pub sinks: Vec<(String, u64, u64)>,
}

impl ExecutionTrace {
    /// Total deadline misses over all sinks.
    pub fn total_misses(&self) -> u64 {
        self.sinks.iter().map(|(_, _, m)| m).sum()
    }

    /// Total source overflows.
    pub fn total_overflows(&self) -> u64 {
        self.sources.iter().map(|(_, _, o)| o).sum()
    }

    /// A stable 64-bit FNV-1a digest of the trace, identical across
    /// platforms and runs for identical traces. Used by the fixed-seed
    /// regression corpus.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        for b in &self.buffers {
            h.write_str(&b.name);
            h.write_u64(b.pushes.len() as u64);
            for &p in &b.pushes {
                h.write_u64(p);
            }
        }
        for (name, produced, overflows) in &self.sources {
            h.write_str(name);
            h.write_u64(*produced);
            h.write_u64(*overflows);
        }
        for (name, consumed, misses) in &self.sinks {
            h.write_str(name);
            h.write_u64(*consumed);
            h.write_u64(*misses);
        }
        h.finish()
    }

    /// Describe the first divergence between two traces, or `None` if they
    /// are bit-identical. Meant for failure messages: it names the buffer or
    /// counter where the traces part ways.
    pub fn first_divergence(&self, other: &ExecutionTrace) -> Option<String> {
        if self.buffers.len() != other.buffers.len() {
            return Some(format!(
                "buffer count differs: {} vs {}",
                self.buffers.len(),
                other.buffers.len()
            ));
        }
        for (a, b) in self.buffers.iter().zip(&other.buffers) {
            if a.name != b.name {
                return Some(format!("buffer name differs: `{}` vs `{}`", a.name, b.name));
            }
            if a.pushes != b.pushes {
                let at = a
                    .pushes
                    .iter()
                    .zip(&b.pushes)
                    .position(|(x, y)| x != y)
                    .unwrap_or_else(|| a.pushes.len().min(b.pushes.len()));
                return Some(format!(
                    "buffer `{}` diverges at push #{at}: {:?} vs {:?} (lengths {} vs {})",
                    a.name,
                    a.pushes.get(at),
                    b.pushes.get(at),
                    a.pushes.len(),
                    b.pushes.len()
                ));
            }
        }
        for (a, b) in self.sources.iter().zip(&other.sources) {
            if a != b {
                return Some(format!("source counters differ: {a:?} vs {b:?}"));
            }
        }
        for (a, b) in self.sinks.iter().zip(&other.sinks) {
            if a != b {
                return Some(format!("sink counters differ: {a:?} vs {b:?}"));
            }
        }
        if self != other {
            return Some("traces differ".to_string());
        }
        None
    }
}

/// Minimal FNV-1a 64-bit hasher (stable across platforms, unlike
/// `DefaultHasher` which is documented to change between releases). Public
/// so other crates needing a stable name/trace hash (e.g. `oil-rt`'s
/// synthetic kernel keys) reuse this one instead of growing copies of the
/// algorithm.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Absorb one byte.
    pub fn write_byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }

    /// Absorb a `u64`, little-endian.
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_byte(b);
        }
    }

    /// Absorb a string, length-delimited so `("ab", "c")` and `("a", "bc")`
    /// differ.
    pub fn write_str(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.write_byte(*b);
        }
        self.write_u64(s.len() as u64);
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExecutionTrace {
        ExecutionTrace {
            buffers: vec![
                BufferTrace {
                    name: "x".into(),
                    pushes: vec![0, 10, 20],
                },
                BufferTrace {
                    name: "y".into(),
                    pushes: vec![10],
                },
            ],
            sources: vec![("src".into(), 3, 0)],
            sinks: vec![("snk".into(), 1, 0)],
        }
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let t = sample();
        assert_eq!(t.digest(), t.clone().digest());
        let mut u = sample();
        u.buffers[0].pushes[2] = 21;
        assert_ne!(t.digest(), u.digest());
        let mut v = sample();
        v.sinks[0].2 = 1;
        assert_ne!(t.digest(), v.digest());
    }

    #[test]
    fn first_divergence_names_the_buffer_and_position() {
        let t = sample();
        assert_eq!(t.first_divergence(&t), None);
        let mut u = sample();
        u.buffers[1].pushes.push(30);
        let d = t.first_divergence(&u).unwrap();
        assert!(d.contains("`y`"), "{d}");
        assert!(d.contains("push #1"), "{d}");
    }

    #[test]
    fn counters_divergence_is_reported() {
        let t = sample();
        let mut u = sample();
        u.sources[0].2 = 5;
        assert!(t.first_divergence(&u).unwrap().contains("source"));
    }
}
