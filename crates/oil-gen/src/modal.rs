//! Seeded generation of **modal runtime graphs**: non-uniform clusters that
//! are union-advance admissible, plus the adversarial mode scripts that
//! drive them.
//!
//! The paper's core subject is modal behaviour — `if`/`switch` arms whose
//! active branch is data-dependent — and the static-order engine's answer
//! is one quasi-static schedule **per mode** with verified hot switching
//! (`oil-compiler::schedule::modal_admission`). This module generates the
//! corpus those claims are tested against: K-armed merge graphs where each
//! arm owns a private input channel (pairwise-disjoint reads), all arms
//! share one write list, and a scripted mode sequence selects the active
//! arm per firing. Every scenario is a pure function of its seed, so a
//! failing instance in `tests/modeswitch_differential.rs` reproduces with
//! `ModalScenario::generate(seed)`.
//!
//! The generated shape (K arms, rates `r_i`, shared write count `p`):
//!
//! ```text
//!  s_0 @ base·r_0 ──► ch_0 ──(r_0)──► arm_0 ─┐
//!  s_1 @ base·r_1 ──► ch_1 ──(r_1)──► arm_1 ─┤─(p)─► mix ─► post ─► out ─► sink @ base
//!  ...                                  ...  ─┘
//! ```
//!
//! All arms write `(mix, p)`, so the cluster's token flow is
//! mode-independent — exactly the admission property per-mode synthesis
//! requires. Optional per-channel front nodes add pipeline depth without
//! changing the balance equations.

use crate::rng::GenRng;
use oil_compiler::rtgraph::{RtBuffer, RtGraph, RtNode, RtSink, RtSource};
use oil_compiler::schedule::ModeScript;
use oil_dataflow::Rational;

/// Generous uniform capacity: the per-period peak of any generated buffer
/// is at most `max rate ratio (3) · arms (4)` tokens, far below this.
const CAPACITY: usize = 64;

/// A generated modal workload: the graph, its arm count, and the sink rate.
#[derive(Debug, Clone)]
pub struct ModalScenario {
    /// The seed this scenario is a pure function of.
    pub seed: u64,
    /// Arms of the modal cluster (= members of the non-uniform cluster).
    pub arms: usize,
    /// Per-arm input rate ratio `r_i` (tokens consumed per firing).
    pub rates: Vec<usize>,
    /// Tokens each firing writes to the shared `mix` buffer.
    pub write_count: usize,
    /// Base firing rate of the modal unit (and the sink), in Hz.
    pub base_hz: u64,
    /// Whether each channel has an extra front node between source and arm.
    pub fronted: bool,
    /// The runtime graph. Its only cluster is non-uniform and
    /// modal-admissible by construction.
    pub graph: RtGraph,
}

impl ModalScenario {
    /// The scenario for `seed` — deterministic, machine-independent.
    pub fn generate(seed: u64) -> Self {
        let mut rng = GenRng::new(seed ^ 0x0DA1_5EED_0000_0001);
        let arms = rng.range(2, 4) as usize;
        let rates: Vec<usize> = (0..arms).map(|_| rng.range(1, 3) as usize).collect();
        let write_count = rng.range(1, 2) as usize;
        let base_hz = *rng.pick(&[500u64, 1000, 2000]);
        let fronted = rng.chance(1, 2);

        let mut g = RtGraph::default();
        let buf = |name: String| RtBuffer {
            name,
            capacity: CAPACITY,
            initial_tokens: 0,
        };
        let response = Rational::new(1, 1_000_000);
        let mix = g.buffers.push(buf("mix".into()));
        let out = g.buffers.push(buf("out".into()));
        for (i, &r) in rates.iter().enumerate() {
            let ch = g.buffers.push(buf(format!("ch{i}")));
            let feed = if fronted {
                let raw = g.buffers.push(buf(format!("raw{i}")));
                g.nodes.push(RtNode {
                    name: format!("front{i}"),
                    function: format!("front{i}"),
                    response,
                    reads: vec![(raw, 1)],
                    writes: vec![(ch, 1)],
                });
                raw
            } else {
                ch
            };
            g.sources.push(RtSource {
                name: format!("s{i}"),
                function: format!("src{i}"),
                outputs: vec![feed],
                period: Rational::new(1, (base_hz * r as u64) as i128),
            });
            g.nodes.push(RtNode {
                name: format!("arm{i}"),
                function: format!("arm{i}"),
                response,
                reads: vec![(ch, r)],
                writes: vec![(mix, write_count)],
            });
        }
        g.nodes.push(RtNode {
            name: "post".into(),
            function: "post".into(),
            response,
            reads: vec![(mix, write_count)],
            writes: vec![(out, 1)],
        });
        g.sinks.push(RtSink {
            name: "sk".into(),
            function: "snk".into(),
            input: out,
            period: Rational::new(1, base_hz as i128),
        });

        ModalScenario {
            seed,
            arms,
            rates,
            write_count,
            base_hz,
            fronted,
            graph: g,
        }
    }

    /// The adversarial mode scripts the differential harness drives this
    /// scenario with: constants (every arm), switches at the first and
    /// second firing, back-to-back switches, a mid-stream channel change,
    /// a multi-switch sequence, a switch far beyond the horizon (must be a
    /// no-op), and one random script derived from the seed.
    pub fn adversarial_scripts(&self) -> Vec<ModeScript> {
        let last = (self.arms - 1) as u32;
        let mut scripts = vec![
            ModeScript::default(),
            ModeScript::new(0, vec![(0, last)]),
            ModeScript::new(last, vec![(1, 0)]),
            ModeScript::new(0, vec![(5, 1), (6, last), (7, 0)]),
            ModeScript::new(0, vec![(13, last)]),
            ModeScript::new(0, vec![(2, 1), (97, last)]),
            ModeScript::new(0, vec![(1_000_000, last)]),
        ];
        for a in 1..self.arms as u32 {
            scripts.push(ModeScript::constant(a));
        }
        let mut rng = GenRng::new(self.seed ^ 0x5C21_97D3_0DD5_EEDF);
        let initial = rng.below(self.arms as u64) as u32;
        let switches: Vec<(u64, u32)> = (0..3)
            .map(|_| (rng.below(200), rng.below(self.arms as u64) as u32))
            .collect();
        scripts.push(ModeScript::new(initial, switches));
        scripts
    }
}

/// A generated **mode-dependent** modal workload: arms with *differing*
/// write counts to the shared `mix` buffer (the shape union-advance
/// rejects), optionally overlapping on one shared read channel. The
/// cluster is mode-dependent admissible by construction — synthesis
/// produces one schedule per mode plus the drain/fill transition protocol
/// between them (`oil-compiler::schedule::synthesize`).
///
/// The generated shape (K arms, rates `r_i`, write counts `w_i`, all
/// distinct):
///
/// ```text
///  s_0 @ base·r_0 ──► ch_0 ──(r_0)──► arm_0 ─(w_0)┐
///  s_1 @ base·r_1 ──► ch_1 ──(r_1)──► arm_1 ─(w_1)┤──► mix ─(1)► post ─► out ─► sink @ base
///  ...                                       ...  ┘
///  [sh @ base     ──► sh   ──(1)───► every arm]          (overlapping read, seed-dependent)
/// ```
#[derive(Debug, Clone)]
pub struct ModeDependentScenario {
    /// The seed this scenario is a pure function of.
    pub seed: u64,
    /// Arms of the modal cluster.
    pub arms: usize,
    /// Per-arm private input rate ratio `r_i`.
    pub rates: Vec<usize>,
    /// Per-arm tokens written to `mix` per firing — pairwise distinct, so
    /// the token flow is mode-dependent.
    pub write_counts: Vec<usize>,
    /// Base firing rate of the modal unit (and the sink), in Hz.
    pub base_hz: u64,
    /// Whether every arm additionally reads one token from a shared
    /// channel (reads overlap across arms).
    pub shared_read: bool,
    /// Whether each private channel has an extra front node.
    pub fronted: bool,
    /// The runtime graph. Its only cluster is non-uniform and
    /// mode-dependent admissible by construction.
    pub graph: RtGraph,
}

impl ModeDependentScenario {
    /// The scenario for `seed` — deterministic, machine-independent.
    pub fn generate(seed: u64) -> Self {
        let mut rng = GenRng::new(seed ^ 0x0DA1_5EED_0000_0002);
        let arms = rng.range(2, 3) as usize;
        let rates: Vec<usize> = (0..arms).map(|_| rng.range(1, 3) as usize).collect();
        // Distinct ascending write counts: the defining divergence.
        let w0 = rng.range(1, 2) as usize;
        let write_counts: Vec<usize> = (0..arms).map(|i| w0 + i).collect();
        let base_hz = *rng.pick(&[500u64, 1000, 2000]);
        let shared_read = rng.chance(1, 2);
        let fronted = rng.chance(1, 2);

        let mut g = RtGraph::default();
        let buf = |name: String| RtBuffer {
            name,
            capacity: CAPACITY,
            initial_tokens: 0,
        };
        let response = Rational::new(1, 1_000_000);
        let mix = g.buffers.push(buf("mix".into()));
        let out = g.buffers.push(buf("out".into()));
        let sh = shared_read.then(|| {
            let sh = g.buffers.push(buf("sh".into()));
            g.sources.push(RtSource {
                name: "ssh".into(),
                function: "srcsh".into(),
                outputs: vec![sh],
                period: Rational::new(1, base_hz as i128),
            });
            sh
        });
        for (i, &r) in rates.iter().enumerate() {
            let ch = g.buffers.push(buf(format!("ch{i}")));
            let feed = if fronted {
                let raw = g.buffers.push(buf(format!("raw{i}")));
                g.nodes.push(RtNode {
                    name: format!("front{i}"),
                    function: format!("front{i}"),
                    response,
                    reads: vec![(raw, 1)],
                    writes: vec![(ch, 1)],
                });
                raw
            } else {
                ch
            };
            g.sources.push(RtSource {
                name: format!("s{i}"),
                function: format!("src{i}"),
                outputs: vec![feed],
                period: Rational::new(1, (base_hz * r as u64) as i128),
            });
            let mut reads = vec![(ch, r)];
            if let Some(sh) = sh {
                reads.push((sh, 1));
            }
            g.nodes.push(RtNode {
                name: format!("arm{i}"),
                function: format!("arm{i}"),
                response,
                reads,
                writes: vec![(mix, write_counts[i])],
            });
        }
        g.nodes.push(RtNode {
            name: "post".into(),
            function: "post".into(),
            response,
            reads: vec![(mix, 1)],
            writes: vec![(out, 1)],
        });
        g.sinks.push(RtSink {
            name: "sk".into(),
            function: "snk".into(),
            input: out,
            period: Rational::new(1, base_hz as i128),
        });

        ModeDependentScenario {
            seed,
            arms,
            rates,
            write_counts,
            base_hz,
            shared_read,
            fronted,
            graph: g,
        }
    }

    /// The adversarial mode scripts the mode-dependent differential
    /// harness drives this scenario with — the same families as
    /// [`ModalScenario::adversarial_scripts`] (constants, first-firing and
    /// back-to-back switches, past-horizon no-ops, one seeded random
    /// script). Every referenced arm exists: scripts are validated at the
    /// engine entry points.
    pub fn adversarial_scripts(&self) -> Vec<ModeScript> {
        let last = (self.arms - 1) as u32;
        let mut scripts = vec![
            ModeScript::default(),
            ModeScript::new(0, vec![(0, last)]),
            ModeScript::new(last, vec![(1, 0)]),
            ModeScript::new(0, vec![(5, 1), (6, last), (7, 0)]),
            ModeScript::new(0, vec![(13, last)]),
            ModeScript::new(0, vec![(2, 1), (97, last)]),
            ModeScript::new(0, vec![(1_000_000, last)]),
        ];
        for a in 1..self.arms as u32 {
            scripts.push(ModeScript::constant(a));
        }
        let mut rng = GenRng::new(self.seed ^ 0x5C21_97D3_0DD5_EEE0);
        let initial = rng.below(self.arms as u64) as u32;
        let switches: Vec<(u64, u32)> = (0..3)
            .map(|_| (rng.below(200), rng.below(self.arms as u64) as u32))
            .collect();
        scripts.push(ModeScript::new(initial, switches));
        scripts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oil_compiler::rtgraph::plan;
    use oil_compiler::schedule::modal_admission;

    #[test]
    fn same_seed_same_scenario() {
        for seed in 0..32 {
            let a = ModalScenario::generate(seed);
            let b = ModalScenario::generate(seed);
            assert_eq!(a.graph, b.graph, "seed {seed}");
            assert_eq!(a.adversarial_scripts(), b.adversarial_scripts());
        }
    }

    #[test]
    fn every_scenario_is_modal_admissible() {
        for seed in 0..64 {
            let s = ModalScenario::generate(seed);
            let p = plan(&s.graph);
            let info = modal_admission(&s.graph, &p)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"))
                .unwrap_or_else(|| panic!("seed {seed}: no modal cluster in the plan"));
            assert_eq!(info.members.len(), s.arms, "seed {seed}");
        }
    }

    #[test]
    fn mode_dependent_scenarios_are_deterministic_and_dependent_admissible() {
        for seed in 0..64 {
            let s = ModeDependentScenario::generate(seed);
            assert_eq!(s.graph, ModeDependentScenario::generate(seed).graph);
            // Write counts are pairwise distinct: the union-advance shape
            // PR 7 rejected, now admitted as mode-dependent.
            for i in 0..s.arms {
                for j in i + 1..s.arms {
                    assert_ne!(s.write_counts[i], s.write_counts[j], "seed {seed}");
                }
            }
            let p = plan(&s.graph);
            let info = modal_admission(&s.graph, &p)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"))
                .unwrap_or_else(|| panic!("seed {seed}: no modal cluster in the plan"));
            assert_eq!(info.members.len(), s.arms, "seed {seed}");
            assert!(info.mode_dependent, "seed {seed}: expected mode-dependent");
        }
    }

    #[test]
    fn mode_dependent_scripts_only_reference_existing_arms() {
        for seed in 0..16 {
            let s = ModeDependentScenario::generate(seed);
            for sc in s.adversarial_scripts() {
                sc.validate_arms(s.arms)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            }
        }
    }

    #[test]
    fn scripts_cover_every_arm_and_adversarial_points() {
        let s = ModalScenario::generate(3);
        let scripts = s.adversarial_scripts();
        assert!(scripts.len() >= 8);
        // Every arm is some script's steady state.
        for a in 0..s.arms as u32 {
            assert!(scripts.iter().any(|sc| sc.arm_at(1 << 20) == a));
        }
        // A switch lands on the very first firing in at least one script.
        assert!(scripts
            .iter()
            .any(|sc| !sc.switches.is_empty() && sc.switches[0].0 == 0));
    }
}
