//! Random dataflow/CTA scenario generation (the "level (a)" generator).
//!
//! Three scenario classes, each a pure function of a `u64` seed, each paired
//! with the *oracle relation* the differential harness checks:
//!
//! * [`RingScenario`] — single-rate rings of tasks with initial tokens. For
//!   this class the CTA model is **exact**, so the harness demands bit-for-bit
//!   agreement: CTA's maximal achievable rate must equal the reciprocal of
//!   the self-timed state-space period *and* of the exact HSDF maximum cycle
//!   ratio, and the deadlock verdicts must coincide.
//! * [`MultiRateScenario`] — arbitrary (possibly rate-inconsistent)
//!   multi-rate topologies. Here the oracle is the **consistency verdict and
//!   the exact rate vector**: CTA rate propagation must accept exactly the
//!   graphs whose balance equations have a solution, with per-actor rates
//!   proportional to the repetition vector, exactly.
//! * [`PairScenario`] — Fig. 2a-style two-actor multi-rate cycles with a
//!   sizable buffer. The CTA abstraction is *conservative* for this class
//!   (the `ψ − ψ/π` granularity term over-approximates), so the oracle is
//!   one-sided: CTA acceptance implies deadlock freedom, the CTA-sized
//!   capacity must make the graph deadlock-free, and the CTA rate must never
//!   exceed the exact self-timed rate.

use crate::rng::GenRng;
use oil_cta::{CtaModel, Rational};
use oil_dataflow::index::{ActorId, Idx, IndexVec, PortId};
use oil_dataflow::SdfGraph;

/// A single-rate ring of `n` tasks: task `i` feeds task `i+1 mod n`, with
/// `tokens[i]` initial tokens on that edge and an explicit self-edge per task
/// (one firing in flight at a time, like the paper's task graphs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingScenario {
    /// The generating seed — quoted in every failure message.
    pub seed: u64,
    /// Firing duration of each task in integer microseconds (1..=500).
    pub durations_us: Vec<u64>,
    /// Initial tokens on the edge leaving each task (0..=3).
    pub tokens: Vec<u64>,
}

impl RingScenario {
    /// Generate the ring for `seed`. Roughly one in eight instances is a
    /// deliberate deadlock (all token counts zero).
    pub fn generate(seed: u64) -> Self {
        let mut rng = GenRng::new(seed);
        let n = rng.range(2, 5) as usize;
        let durations_us: Vec<u64> = (0..n).map(|_| rng.range(1, 500)).collect();
        let tokens: Vec<u64> = if rng.chance(1, 8) {
            vec![0; n]
        } else {
            // At least one token somewhere, so most instances are live.
            let mut t: Vec<u64> = (0..n).map(|_| rng.range(0, 3)).collect();
            if t.iter().all(|&x| x == 0) {
                let i = rng.below(n as u64) as usize;
                t[i] = rng.range(1, 3);
            }
            t
        };
        RingScenario {
            seed,
            durations_us,
            tokens,
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.durations_us.len()
    }

    /// True if the ring has no tasks (never produced by [`Self::generate`]).
    pub fn is_empty(&self) -> bool {
        self.durations_us.is_empty()
    }

    /// Total initial tokens on the ring.
    pub fn total_tokens(&self) -> u64 {
        self.tokens.iter().sum()
    }

    /// The exact firing duration of task `i` in seconds.
    pub fn duration_exact(&self, i: usize) -> Rational {
        Rational::new(self.durations_us[i] as i128, 1_000_000)
    }

    /// The SDF view: ring edges plus one self-edge (1 token) per task. The
    /// f64 durations are `k · 1e-6`; the picosecond time base of the
    /// state-space engine recovers the integer microsecond count exactly.
    pub fn sdf(&self) -> SdfGraph {
        let n = self.len();
        let mut g = SdfGraph::new();
        let actors: Vec<ActorId> = (0..n)
            .map(|i| g.add_actor(format!("t{i}"), self.durations_us[i] as f64 * 1e-6))
            .collect();
        for (i, &a) in actors.iter().enumerate() {
            g.add_named_edge(format!("self{i}"), a, a, 1, 1, 1);
            let next = actors[(i + 1) % n];
            g.add_named_edge(format!("ring{i}"), a, next, 1, 1, self.tokens[i]);
        }
        g
    }

    /// Exact rational durations per HSDF firing node, aligned with the
    /// node order of `HsdfGraph::expand(&self.sdf())` (single-rate: one
    /// firing per actor).
    pub fn hsdf_durations_exact(&self) -> Vec<Rational> {
        (0..self.len()).map(|i| self.duration_exact(i)).collect()
    }

    /// The CTA view: one port per task bounded by its reciprocal duration,
    /// one connection per ring edge with `ε = ρ_i` and `φ = −tokens[i]`.
    pub fn cta(&self) -> CtaModel {
        let n = self.len();
        let mut m = CtaModel::new();
        let mut ports = Vec::with_capacity(n);
        for i in 0..n {
            let w = m.add_component(format!("t{i}"), None);
            ports.push(m.add_port(w, "p", Some(self.duration_exact(i).recip())));
        }
        for i in 0..n {
            m.connect(
                ports[i],
                ports[(i + 1) % n],
                self.duration_exact(i),
                -Rational::from_int(self.tokens[i] as i128),
                Rational::ONE,
            );
        }
        m
    }

    /// The closed-form exact self-timed period: `max(Σρ / D, max ρ)` with
    /// `D` total tokens, or `None` when the ring deadlocks (`D = 0`).
    pub fn predicted_period(&self) -> Option<Rational> {
        let d = self.total_tokens();
        if d == 0 {
            return None;
        }
        let sum: Rational = (0..self.len())
            .map(|i| self.duration_exact(i))
            .fold(Rational::ZERO, |a, b| a + b);
        let max = (0..self.len())
            .map(|i| self.duration_exact(i))
            .fold(Rational::ZERO, Rational::max);
        Some((sum / Rational::from_int(d as i128)).max(max))
    }

    /// The port of task `i` in the model returned by [`Self::cta`].
    pub fn cta_port(&self, i: usize) -> PortId {
        PortId::new(i)
    }
}

/// An arbitrary multi-rate topology: a connected random graph with rates and
/// initial tokens, either *forced consistent* (rates derived from a chosen
/// repetition vector) or free-form (usually inconsistent when it has cycles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiRateScenario {
    /// The generating seed — quoted in every failure message.
    pub seed: u64,
    /// Number of actors.
    pub actors: usize,
    /// Edges `(src, dst, production, consumption, initial_tokens)`.
    pub edges: Vec<(usize, usize, u64, u64, u64)>,
    /// The repetition vector the rates were derived from, when the instance
    /// was forced consistent.
    pub forced_q: Option<Vec<u64>>,
}

impl MultiRateScenario {
    /// Generate the topology for `seed`. Half the instances are forced
    /// consistent; the rest draw independent rates (inconsistent whenever a
    /// cycle's rate product differs from one).
    pub fn generate(seed: u64) -> Self {
        let mut rng = GenRng::new(seed);
        let n = rng.range(2, 6) as usize;
        let forced = rng.chance(1, 2);
        let q: Vec<u64> = (0..n).map(|_| rng.range(1, 4)).collect();

        let mut edges = Vec::new();
        let push_edge = |rng: &mut GenRng, u: usize, v: usize, edges: &mut Vec<_>| {
            let tokens = rng.range(0, 8);
            if forced {
                // p·q[u] = c·q[v] by construction: both sides carry
                // t = lcm(q[u], q[v]) · s tokens per iteration.
                let l = oil_dataflow::rational::lcm(q[u] as u128, q[v] as u128) as u64;
                let t = l * rng.range(1, 2);
                edges.push((u, v, t / q[u], t / q[v], tokens));
            } else {
                edges.push((u, v, rng.range(1, 6), rng.range(1, 6), tokens));
            }
        };
        // Spanning tree keeps the graph connected, extra edges add cycles.
        for v in 1..n {
            let u = rng.below(v as u64) as usize;
            if rng.chance(1, 2) {
                push_edge(&mut rng, u, v, &mut edges);
            } else {
                push_edge(&mut rng, v, u, &mut edges);
            }
        }
        for _ in 0..rng.range(0, 3) {
            let u = rng.below(n as u64) as usize;
            let v = rng.below(n as u64) as usize;
            if u != v {
                push_edge(&mut rng, u, v, &mut edges);
            }
        }
        MultiRateScenario {
            seed,
            actors: n,
            edges,
            forced_q: forced.then_some(q),
        }
    }

    /// The SDF view (unit durations; this class only exercises rates).
    pub fn sdf(&self) -> SdfGraph {
        let mut g = SdfGraph::new();
        let ids: Vec<ActorId> = (0..self.actors)
            .map(|i| g.add_actor(format!("a{i}"), 1e-6))
            .collect();
        for &(u, v, p, c, d) in &self.edges {
            g.add_edge(ids[u], ids[v], p, c, d);
        }
        g
    }

    /// The CTA rate-structure view: one port per actor, one rate-coupling
    /// connection per edge with `γ = p/c`, and the rate of actor 0 pinned to
    /// `anchor_hz` so the whole group is grounded. Delays are zero — this
    /// class cross-checks *rate propagation* only.
    pub fn cta(&self, anchor_hz: u64) -> CtaModel {
        let mut m = CtaModel::new();
        let mut ports = Vec::with_capacity(self.actors);
        for i in 0..self.actors {
            let w = m.add_component(format!("a{i}"), None);
            if i == 0 {
                ports.push(m.add_required_rate_port(w, "p", Rational::from_int(anchor_hz as i128)));
            } else {
                ports.push(m.add_port(w, "p", None));
            }
        }
        for &(u, v, p, c, _) in &self.edges {
            m.connect(
                ports[u],
                ports[v],
                Rational::ZERO,
                Rational::ZERO,
                Rational::new(p as i128, c as i128),
            );
        }
        m
    }

    /// Expected per-actor rate when the balance equations hold: actor `i`
    /// runs `q[i]/q[0]` times as fast as the anchored actor 0.
    pub fn expected_rates(
        q: &IndexVec<ActorId, u64>,
        anchor_hz: u64,
    ) -> impl Iterator<Item = Rational> + '_ {
        let q0 = q[ActorId::new(0)];
        q.iter().map(move |&qi| {
            Rational::from_int(anchor_hz as i128) * Rational::new(qi as i128, q0 as i128)
        })
    }
}

/// A Fig. 2a-style two-actor multi-rate cycle: `f` produces `p` tokens that
/// `g` consumes `c` at a time, with `capacity` tokens on the back edge. This
/// class cross-checks the two *exact* baselines against each other — the
/// state-space period and the exact HSDF cycle ratio must agree bit-for-bit,
/// and their deadlock verdicts must coincide. (The hand-built CTA view below
/// is the paper's *conservative* abstraction and is exercised for timing by
/// the scenario-sweep bench, not for exact agreement.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairScenario {
    /// The generating seed — quoted in every failure message.
    pub seed: u64,
    /// Tokens produced per firing of `f` / consumed per firing of `g`.
    pub p: u64,
    /// Tokens consumed per firing of `f` / produced per firing of `g`.
    pub c: u64,
    /// Firing duration of `f` in integer microseconds.
    pub rho_f_us: u64,
    /// Firing duration of `g` in integer microseconds.
    pub rho_g_us: u64,
    /// Initial tokens on the back edge (the buffer capacity). Spans both
    /// deadlocking (`capacity < p`) and live instances.
    pub capacity: u64,
}

impl PairScenario {
    /// Generate the pair for `seed`.
    pub fn generate(seed: u64) -> Self {
        let mut rng = GenRng::new(seed);
        let p = rng.range(1, 6);
        let c = rng.range(1, 6);
        PairScenario {
            seed,
            p,
            c,
            rho_f_us: rng.range(1, 200),
            rho_g_us: rng.range(1, 200),
            capacity: rng.range(0, 2 * (p + c)),
        }
    }

    /// Exact firing durations of `f` and `g`, indexed like the SDF actors.
    pub fn actor_durations_exact(&self) -> Vec<Rational> {
        vec![self.rho_f(), self.rho_g()]
    }

    /// Exact firing durations in seconds.
    pub fn rho_f(&self) -> Rational {
        Rational::new(self.rho_f_us as i128, 1_000_000)
    }

    /// Exact firing duration of `g` in seconds.
    pub fn rho_g(&self) -> Rational {
        Rational::new(self.rho_g_us as i128, 1_000_000)
    }

    /// The SDF view with `capacity` tokens on the back (buffer) edge and
    /// explicit self-edges.
    pub fn sdf(&self, capacity: u64) -> SdfGraph {
        let mut g = SdfGraph::new();
        let f = g.add_actor("f", self.rho_f_us as f64 * 1e-6);
        let gg = g.add_actor("g", self.rho_g_us as f64 * 1e-6);
        g.add_named_edge("self_f", f, f, 1, 1, 1);
        g.add_named_edge("self_g", gg, gg, 1, 1, 1);
        g.add_named_edge("bx", f, gg, self.p, self.c, 0);
        g.add_named_edge("by", gg, f, self.c, self.p, capacity);
        g
    }

    /// The CTA view (paper Fig. 8): data connection with the `ψ − ψ/π`
    /// granularity term, buffer back-connection of capacity `capacity`
    /// (`None` = unsized, `φ = 0`, the input to buffer sizing).
    pub fn cta(&self, capacity: Option<u64>) -> CtaModel {
        let mut m = CtaModel::new();
        let f = m.add_component("f", None);
        let g = m.add_component("g", None);
        let f_out = m.add_port(f, "out", Some(self.rho_f().recip()));
        let g_in = m.add_port(g, "in", Some(self.rho_g().recip()));
        let granularity =
            Rational::from_int(self.c as i128) - Rational::new(self.c as i128, self.p as i128);
        m.connect(
            f_out,
            g_in,
            self.rho_f(),
            granularity,
            Rational::new(self.p as i128, self.c as i128),
        );
        m.connect_buffer(
            "by",
            g_in,
            f_out,
            self.rho_g(),
            -Rational::from_int(capacity.unwrap_or(0) as i128),
            Rational::new(self.c as i128, self.p as i128),
        );
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..32 {
            assert_eq!(RingScenario::generate(seed), RingScenario::generate(seed));
            assert_eq!(
                MultiRateScenario::generate(seed),
                MultiRateScenario::generate(seed)
            );
            assert_eq!(PairScenario::generate(seed), PairScenario::generate(seed));
        }
    }

    #[test]
    fn ring_views_are_structurally_consistent() {
        for seed in 0..64 {
            let ring = RingScenario::generate(seed);
            let sdf = ring.sdf();
            assert_eq!(sdf.actor_count(), ring.len());
            assert_eq!(sdf.edge_count(), 2 * ring.len());
            assert!(sdf.is_consistent(), "single-rate rings always balance");
            let cta = ring.cta();
            assert_eq!(cta.port_count(), ring.len());
            assert_eq!(cta.connection_count(), ring.len());
        }
    }

    #[test]
    fn ring_deadlock_iff_no_tokens() {
        let mut live = 0;
        let mut dead = 0;
        for seed in 0..128 {
            let ring = RingScenario::generate(seed);
            let sdf_verdict = ring.sdf().check_deadlock_free().is_ok();
            assert_eq!(
                sdf_verdict,
                ring.total_tokens() > 0,
                "seed {seed}: deadlock verdict must match token count"
            );
            if sdf_verdict {
                live += 1;
            } else {
                dead += 1;
            }
        }
        assert!(live > 0 && dead > 0, "both classes must be generated");
    }

    #[test]
    fn forced_consistent_instances_really_are() {
        let mut forced = 0;
        for seed in 0..128 {
            let s = MultiRateScenario::generate(seed);
            if let Some(q) = &s.forced_q {
                forced += 1;
                let rv = s.sdf().repetition_vector().unwrap_or_else(|e| {
                    panic!("seed {seed}: forced-consistent instance rejected: {e}")
                });
                // The derived vector is proportional to the chosen one.
                for (i, &(u, v, p, c, _)) in s.edges.iter().enumerate() {
                    assert_eq!(p * q[u], c * q[v], "seed {seed} edge {i}");
                    assert_eq!(
                        p * rv[ActorId::new(u)],
                        c * rv[ActorId::new(v)],
                        "seed {seed} edge {i}"
                    );
                }
            }
        }
        assert!(forced > 30, "about half the instances are forced");
    }

    #[test]
    fn pair_cta_capacity_none_is_unsized() {
        let pair = PairScenario::generate(3);
        let unsized_model = pair.cta(None);
        let caps: Vec<_> = unsized_model
            .buffer_connections()
            .into_iter()
            .map(|(_, cid)| unsized_model.connections[cid].capacity().unwrap())
            .collect();
        assert_eq!(caps, vec![Rational::ZERO]);
    }
}
