//! The generator's deterministic random source.
//!
//! Everything `oil-gen` produces is a pure function of a `u64` seed: the same
//! seed yields the same workload on every machine, every run. SplitMix64 is
//! used because it is tiny, passes the usual statistical batteries at this
//! scale, and — unlike the xorshift in the proptest shim — cannot get stuck
//! at the all-zero state, so *every* seed (including 0) is usable. Failure
//! messages in the differential harness always quote the seed; reproducing a
//! failure is `Scenario::generate(seed)`.

/// A deterministic SplitMix64 stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenRng {
    state: u64,
}

impl GenRng {
    /// A stream seeded with `seed`; every value drawn later is a pure
    /// function of it.
    pub fn new(seed: u64) -> Self {
        GenRng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value uniform in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Modulo bias is irrelevant at workload-generation scale.
        self.next_u64() % bound
    }

    /// A value uniform in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "inverted range");
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// A derived independent stream: mixing `label` into the current state.
    /// Used to give sub-generators (topology vs. timing vs. program shape)
    /// their own streams so adding a draw to one does not shift the others.
    pub fn fork(&mut self, label: u64) -> GenRng {
        GenRng {
            state: self.next_u64() ^ label.wrapping_mul(0xA24B_AED4_963E_E407),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = GenRng::new(42);
        let mut b = GenRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = GenRng::new(1);
        let mut b = GenRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = GenRng::new(0);
        let v: Vec<u64> = (0..8).map(|_| r.range(1, 6)).collect();
        assert!(v.iter().all(|&x| (1..=6).contains(&x)));
        assert!(v.iter().any(|&x| x != v[0]), "stream must not be constant");
    }

    #[test]
    fn range_is_inclusive_and_covers() {
        let mut r = GenRng::new(7);
        let mut seen = [false; 6];
        for _ in 0..200 {
            seen[r.range(0, 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn forked_streams_are_independent_of_later_draws() {
        let mut a = GenRng::new(9);
        let mut fork_a = a.fork(1);
        let first = fork_a.next_u64();
        // Re-create and draw more from the parent after forking: the fork's
        // output is unchanged.
        let mut b = GenRng::new(9);
        let mut fork_b = b.fork(1);
        let _ = b.next_u64();
        assert_eq!(fork_b.next_u64(), first);
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = GenRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(1, 4)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
