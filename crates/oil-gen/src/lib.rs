//! Seeded, deterministic generation of random OIL workloads.
//!
//! The paper claims that CTA's polynomial-time analyses (consistency, buffer
//! sizing, latency) *agree* with the exact-but-exponential dataflow analyses
//! (HSDF expansion, state-space exploration) wherever the latter apply. The
//! repo's hand-written figures exercise a handful of programs; this crate
//! turns the claim into a machine-checkable property over *thousands* of
//! programs by generating random workloads at two levels:
//!
//! * **Level (a), [`topology`]** — random dataflow/CTA scenarios fed straight
//!   into `oil-cta` and `oil-dataflow`: single-rate rings (exact-agreement
//!   oracle), arbitrary multi-rate topologies (consistency-verdict oracle)
//!   and Fig. 2a-style buffered pairs (sufficiency oracle).
//! * **Level (b), [`program`]** — random valid OIL source programs (modal
//!   `if`/`switch` bodies, multi-rate conversions, `init` prologues, nested
//!   modules, latency constraints) driven through the full
//!   `oil-lang → oil-compiler → oil-cta` pipeline and simulated in `oil-sim`,
//!   plus deliberately ill-formed programs that must be *rejected with
//!   diagnostics*, and random ASTs for the `parse(pretty(ast))` round trip.
//! * **Level (c), [`modal`]** — random modal runtime graphs whose single
//!   non-uniform cluster is union-advance admissible, together with
//!   adversarial mode scripts (first-firing switches, back-to-back,
//!   mid-stream), feeding the per-mode schedule differential harness
//!   (`tests/modeswitch_differential.rs`).
//!
//! Everything is a pure function of a `u64` seed ([`rng::GenRng`] is
//! SplitMix64): a failing instance is reproduced by calling the same
//! `generate(seed)` again, and every assertion in the differential harness
//! (`tests/differential.rs` at the workspace root) embeds that seed in its
//! panic message. PR 1's exact-rational core is what makes the harness
//! meaningful: agreement is checked with `==` on [`oil_cta::Rational`]s — any
//! mismatch is a real bug, not round-off.

pub mod modal;
pub mod program;
pub mod rng;
pub mod topology;

pub use modal::{ModalScenario, ModeDependentScenario};
pub use program::{gen_ast, Defect, IllFormedProgram, ProgramScenario, Stage, StageShape};
pub use rng::GenRng;
pub use topology::{MultiRateScenario, PairScenario, RingScenario};
