//! Random OIL program generation (the "level (b)" generator).
//!
//! Two kinds of output:
//!
//! * [`ProgramScenario`] — *valid* OIL programs: a chain of sequential
//!   modules (optionally wrapped in a nested `mod par`, optionally modal
//!   `if`/`switch` bodies, optionally an `init` prologue) between a
//!   time-triggered source and sink whose rates are constructed to satisfy
//!   the chain's rate conversions exactly. These drive the full
//!   `oil-lang → oil-compiler → oil-cta` pipeline; the oracle is the paper's
//!   core guarantee: *accepted ⇒ the simulated execution with CTA-sized
//!   buffers misses no deadline and overflows no buffer*.
//! * [`IllFormedProgram`] — *deliberately invalid* programs (module
//!   recursion, never-written outputs, rate mismatches, literals with no
//!   exact rational): the oracle is that the front end rejects them with
//!   diagnostics instead of panicking.
//!
//! A third generator, [`gen_ast`], produces random ASTs directly (deeper
//! statement nesting than the compile-safe subset) for the
//! `parse(pretty(ast))` round-trip property.

use crate::rng::GenRng;
use oil_lang::ast::{
    Access, Arg, BinOp, BufferDecl, CallArg, Case, Expr, Frequency, Ident, LatencyConstraint,
    LatencyRelation, Module, ModuleBody, ModuleCall, ModuleKind, ParBody, Program, SeqBody, Stmt,
    StreamParam, VarDecl,
};
use oil_lang::registry::{FunctionRegistry, FunctionSignature};
use oil_lang::span::Span;

/// The body shape of one generated sequential module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageShape {
    /// `loop{ f(a:n, out b:m); } while(1);`
    Plain,
    /// `loop{ if(...){ t = g(a:n); } else { t = h(a:n); } k(t, out b:m); } while(1);`
    Modal,
    /// As [`StageShape::Modal`] but with a `switch` over an opaque value.
    Switch,
}

/// One stage of a generated pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// Tokens consumed from the input stream per loop iteration.
    pub consume: u64,
    /// Tokens produced on the output stream per loop iteration.
    pub produce: u64,
    /// Which body the module has.
    pub shape: StageShape,
    /// Initial tokens written by an `init` prologue, if any.
    pub init_tokens: Option<u64>,
    /// Firing rate of this stage in Hz (iterations per second), implied by
    /// the source rate and the upstream conversions. Always an integer by
    /// construction.
    pub firing_hz: u64,
}

/// A generated, well-formed OIL program plus everything needed to compile
/// and simulate it.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramScenario {
    /// The generating seed — quoted in every failure message.
    pub seed: u64,
    /// OIL source text.
    pub source: String,
    /// Registry with the response times of every coordinated function.
    pub registry: FunctionRegistry,
    /// The pipeline stages, upstream first.
    pub stages: Vec<Stage>,
    /// Source sampling rate in Hz.
    pub source_hz: u64,
    /// Sink consumption rate in Hz.
    pub sink_hz: u64,
    /// End-to-end latency bound in ms, when one was emitted.
    pub latency_ms: Option<u64>,
    /// True when two stages were wrapped in a nested `mod par` module.
    pub nested: bool,
}

impl ProgramScenario {
    /// Generate the program for `seed`.
    pub fn generate(seed: u64) -> Self {
        let mut rng = GenRng::new(seed);
        let n_stages = rng.range(1, 3) as usize;
        let consumes: Vec<u64> = (0..n_stages).map(|_| rng.range(1, 3)).collect();
        let produces: Vec<u64> = (0..n_stages).map(|_| rng.range(1, 3)).collect();

        // Source rate `base · Π consume_i` makes every intermediate rate and
        // every firing rate an integer: stage i fires at
        // base · Π_{j<i} produce_j · Π_{j>i} consume_j. The floor of 25 Hz
        // keeps even the slowest stage ticking often enough that a fraction
        // of a second of simulated time exercises the steady state.
        let base = rng.range(25, 100);
        let source_hz = base * consumes.iter().product::<u64>();
        let mut rate = source_hz;
        let mut stages = Vec::with_capacity(n_stages);
        for i in 0..n_stages {
            let firing_hz = rate / consumes[i];
            rate = firing_hz * produces[i];
            let shape = match rng.below(3) {
                0 => StageShape::Plain,
                1 => StageShape::Modal,
                _ => StageShape::Switch,
            };
            let init_tokens = rng.chance(1, 3).then(|| rng.range(1, 4));
            stages.push(Stage {
                consume: consumes[i],
                produce: produces[i],
                shape,
                init_tokens,
                firing_hz,
            });
        }
        let sink_hz = rate;

        // A generous latency bound: tight bounds are a *valid* reason for the
        // compiler to reject, but most generated instances should compile so
        // the accepted⇒simulates-cleanly oracle gets coverage.
        let slowest_period_ms = stages
            .iter()
            .map(|s| 1000.0 / s.firing_hz as f64)
            .fold(1000.0 / source_hz as f64, f64::max);
        let latency_ms = rng
            .chance(1, 2)
            .then(|| 50 + (slowest_period_ms * 64.0).ceil() as u64);

        let nested = n_stages >= 2 && rng.chance(1, 3);

        // Response times: a quarter of each stage's firing period keeps every
        // instance schedulable on one processor per task.
        let mut registry = FunctionRegistry::new();
        for (i, s) in stages.iter().enumerate() {
            let rho = 0.25 / s.firing_hz as f64;
            for prefix in ["f", "g", "h", "k"] {
                registry.register(FunctionSignature::pure(format!("{prefix}{i}"), rho));
            }
            registry.register(FunctionSignature::pure(format!("init{i}"), 1e-6));
        }
        registry.register(FunctionSignature::pure("src", 1e-7));
        registry.register(FunctionSignature::pure("snk", 1e-7));

        let source = render_program(&stages, source_hz, sink_hz, latency_ms, nested);
        ProgramScenario {
            seed,
            source,
            registry,
            stages,
            source_hz,
            sink_hz,
            latency_ms,
            nested,
        }
    }
}

impl ProgramScenario {
    /// Generate an **SDR-flavoured** scenario: an FM-receiver-style chain
    /// `wideband source → decimator → demod → audio resampler → sink`,
    /// seeded like [`ProgramScenario::generate`] but with the rate
    /// structure of a software-defined-radio front end (a fast wideband
    /// source feeding a high-ratio decimation, a samplewise demodulator,
    /// and a small-ratio audio resampler) instead of the generic chain
    /// shapes. Widens the differential corpus beyond PAL and the synthetic
    /// wide/chain graphs; the bench's `sdr` workload uses the same
    /// topology with real DSP kernels.
    pub fn generate_sdr(seed: u64) -> Self {
        let mut rng = GenRng::new(seed ^ 0x5D12_AD10);
        // Audio base rate and the conversion factors, kept small enough
        // that a fraction of a second of virtual time reaches steady state.
        let base = rng.range(20, 60) * 10; // 200..=600 Hz audio grain
        let decim = *rng.pick(&[4, 8, 16]); // wideband → IF decimation
        let (res_up, res_down) = *rng.pick(&[(1u64, 1u64), (3, 2), (2, 3), (5, 4)]);
        // Anchoring the demod rate at `base·res_up` keeps every stage's
        // firing rate an integer: the resampler consumes `res_up` per
        // firing and fires at exactly `base`.
        let demod_hz = base * res_up; // demod/decimator-output rate
        let source_hz = demod_hz * decim;
        let sink_hz = base * res_down;
        let stages = vec![
            Stage {
                consume: decim,
                produce: 1,
                shape: StageShape::Plain,
                init_tokens: None,
                firing_hz: demod_hz,
            },
            Stage {
                consume: 1,
                produce: 1,
                shape: StageShape::Plain,
                init_tokens: None,
                firing_hz: demod_hz,
            },
            Stage {
                consume: res_up,
                produce: res_down,
                shape: StageShape::Plain,
                init_tokens: None,
                firing_hz: base,
            },
        ];
        let mut registry = FunctionRegistry::new();
        for (i, s) in stages.iter().enumerate() {
            let rho = 0.25 / s.firing_hz as f64;
            for prefix in ["f", "g", "h", "k"] {
                registry.register(FunctionSignature::pure(format!("{prefix}{i}"), rho));
            }
            registry.register(FunctionSignature::pure(format!("init{i}"), 1e-6));
        }
        registry.register(FunctionSignature::pure("src", 1e-7));
        registry.register(FunctionSignature::pure("snk", 1e-7));
        let source = render_program(&stages, source_hz, sink_hz, None, false);
        ProgramScenario {
            seed,
            source,
            registry,
            stages,
            source_hz,
            sink_hz,
            latency_ms: None,
            nested: false,
        }
    }
}

fn render_stage_module(i: usize, stage: &Stage) -> String {
    let mut body = String::new();
    if let Some(tokens) = stage.init_tokens {
        body.push_str(&format!("    init{i}(out b:{tokens});\n"));
    }
    let (consume, produce) = (stage.consume, stage.produce);
    let call = match stage.shape {
        StageShape::Plain => format!("f{i}(a:{consume}, out b:{produce});"),
        StageShape::Modal => format!(
            "if(...){{ t = g{i}(a:{consume}); }} else {{ t = h{i}(a:{consume}); }} \
             k{i}(t, out b:{produce});"
        ),
        StageShape::Switch => format!(
            "switch(...) case 0 {{ t = g{i}(a:{consume}); }} default {{ t = h{i}(a:{consume}); }} \
             k{i}(t, out b:{produce});"
        ),
    };
    let decl = match stage.shape {
        StageShape::Plain => String::new(),
        _ => "    int t;\n".to_string(),
    };
    format!("mod seq S{i}(int a, out int b){{\n{decl}{body}    loop{{ {call} }} while(1);\n}}\n")
}

fn render_program(
    stages: &[Stage],
    source_hz: u64,
    sink_hz: u64,
    latency_ms: Option<u64>,
    nested: bool,
) -> String {
    let mut out = String::new();
    for (i, s) in stages.iter().enumerate() {
        out.push_str(&render_stage_module(i, s));
    }
    // Optionally wrap the first two stages in a nested par module.
    let calls_nested = nested && stages.len() >= 2;
    if calls_nested {
        out.push_str(
            "mod par P(int a, out int b){\n    fifo int z;\n    S0(a, out z) || S1(z, out b)\n}\n",
        );
    }
    out.push_str("mod par Top(){\n");
    let chain_len = stages.len();
    // Intermediate fifos between top-level instantiations.
    let n_units = if calls_nested {
        chain_len - 1
    } else {
        chain_len
    };
    for i in 0..n_units.saturating_sub(1) {
        out.push_str(&format!("    fifo int m{i};\n"));
    }
    out.push_str(&format!("    source int x = src() @ {source_hz} Hz;\n"));
    out.push_str(&format!("    sink int y = snk() @ {sink_hz} Hz;\n"));
    if let Some(ms) = latency_ms {
        out.push_str(&format!("    start x {ms} ms before y;\n"));
    }
    // The instantiation chain: nested P replaces S0 and S1.
    let mut units: Vec<String> = Vec::new();
    if calls_nested {
        units.push("P".to_string());
        for i in 2..chain_len {
            units.push(format!("S{i}"));
        }
    } else {
        for i in 0..chain_len {
            units.push(format!("S{i}"));
        }
    }
    let mut calls = Vec::new();
    for (i, unit) in units.iter().enumerate() {
        let input = if i == 0 {
            "x".to_string()
        } else {
            format!("m{}", i - 1)
        };
        let output = if i == units.len() - 1 {
            "y".to_string()
        } else {
            format!("m{i}")
        };
        calls.push(format!("{unit}({input}, out {output})"));
    }
    out.push_str(&format!("    {}\n}}\n", calls.join(" || ")));
    out
}

/// The kind of defect an [`IllFormedProgram`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Defect {
    /// Two `mod par` modules instantiating each other.
    ModuleRecursion,
    /// A declared output stream that no statement writes.
    UnwrittenOutput,
    /// Source and sink rates incompatible with the chain's conversion ratio.
    RateMismatch,
    /// A frequency literal too large for any exact `i128` rational.
    NonRationalLiteral,
}

/// A deliberately ill-formed program and the defect it carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IllFormedProgram {
    /// The generating seed.
    pub seed: u64,
    /// OIL source text.
    pub source: String,
    /// Which rule the program violates.
    pub defect: Defect,
}

impl IllFormedProgram {
    /// Generate an ill-formed program for `seed`, cycling through the defect
    /// kinds.
    pub fn generate(seed: u64) -> Self {
        let mut rng = GenRng::new(seed ^ 0xD1FF);
        let defect = *rng.pick(&[
            Defect::ModuleRecursion,
            Defect::UnwrittenOutput,
            Defect::RateMismatch,
            Defect::NonRationalLiteral,
        ]);
        let rate = rng.range(1, 50) * 100;
        let source = match defect {
            Defect::ModuleRecursion => format!(
                "mod par A(int x, out int y){{ B(x, out y) }}\n\
                 mod par B(int x, out int y){{ A(x, out y) }}\n\
                 mod par Top(){{\n    source int x = src() @ {rate} Hz;\n    \
                 sink int y = snk() @ {rate} Hz;\n    A(x, out y)\n}}\n"
            ),
            Defect::UnwrittenOutput => format!(
                "mod seq W(int a, out int b){{ loop{{ f0(a); }} while(1); }}\n\
                 mod par Top(){{\n    source int x = src() @ {rate} Hz;\n    \
                 sink int y = snk() @ {rate} Hz;\n    W(x, out y)\n}}\n"
            ),
            Defect::RateMismatch => {
                let k = rng.range(2, 5);
                format!(
                    "mod seq W(int a, out int b){{ loop{{ f0(a:{k}, out b); }} while(1); }}\n\
                     mod par Top(){{\n    source int x = src() @ {rate} Hz;\n    \
                     sink int y = snk() @ {rate} Hz;\n    W(x, out y)\n}}\n"
                )
            }
            Defect::NonRationalLiteral => format!(
                "mod seq W(int a, out int b){{ loop{{ f0(a, out b); }} while(1); }}\n\
                 mod par Top(){{\n    source int x = src() @ \
                 9{}.0 Hz;\n    sink int y = snk() @ {rate} Hz;\n    W(x, out y)\n}}\n",
                "9".repeat(44)
            ),
        };
        IllFormedProgram {
            seed,
            source,
            defect,
        }
    }

    /// A registry accepting this program's functions (the defect is in the
    /// coordination structure, not in unknown functions).
    pub fn registry(&self) -> FunctionRegistry {
        let mut reg = FunctionRegistry::new();
        for f in ["f0", "src", "snk"] {
            reg.register(FunctionSignature::pure(f, 1e-6));
        }
        reg
    }
}

// ---------------------------------------------------------------------------
// Random AST generation for the pretty-printer round trip.
// ---------------------------------------------------------------------------

fn ident(name: impl Into<String>) -> Ident {
    Ident::synthetic(name)
}

fn sp() -> Span {
    Span::synthetic()
}

fn gen_expr(rng: &mut GenRng, depth: u32) -> Expr {
    if depth == 0 {
        return match rng.below(4) {
            0 => Expr::Int(rng.range(0, 99) as i64, sp()),
            1 => Expr::Var(Access::simple(ident(format!("v{}", rng.below(4)))), sp()),
            2 => Expr::Opaque(sp()),
            _ => Expr::Float((rng.range(1, 8) as f64) / 4.0, sp()),
        };
    }
    match rng.below(7) {
        0 => Expr::Int(rng.range(0, 99) as i64, sp()),
        1 => Expr::Var(
            Access {
                name: ident(format!("v{}", rng.below(4))),
                rate: rng.chance(1, 3).then(|| rng.range(2, 4)),
                slice: None,
            },
            sp(),
        ),
        2 => Expr::Opaque(sp()),
        3 => Expr::Not(Box::new(gen_expr(rng, depth - 1)), sp()),
        4 => Expr::Call {
            func: ident(format!("fn{}", rng.below(3))),
            args: (0..rng.below(3))
                .map(|_| gen_expr(rng, depth - 1))
                .collect(),
            span: sp(),
        },
        _ => {
            let op = *rng.pick(&[
                BinOp::Mul,
                BinOp::Div,
                BinOp::Add,
                BinOp::Sub,
                BinOp::Eq,
                BinOp::Ne,
                BinOp::Lt,
                BinOp::Le,
                BinOp::Gt,
                BinOp::Ge,
                BinOp::And,
            ]);
            Expr::Binary {
                op,
                lhs: Box::new(gen_expr(rng, depth - 1)),
                rhs: Box::new(gen_expr(rng, depth - 1)),
                span: sp(),
            }
        }
    }
}

fn gen_access(rng: &mut GenRng) -> Access {
    let name = ident(format!("v{}", rng.below(4)));
    match rng.below(3) {
        0 => Access::simple(name),
        1 => Access {
            name,
            rate: Some(rng.range(2, 5)),
            slice: None,
        },
        _ => {
            let lo = rng.range(0, 3);
            Access {
                name,
                rate: None,
                slice: Some((lo, lo + rng.range(0, 3))),
            }
        }
    }
}

fn gen_stmt(rng: &mut GenRng, depth: u32) -> Stmt {
    let leaf = depth == 0;
    match if leaf { rng.below(2) } else { rng.below(5) } {
        0 => Stmt::Assign {
            target: gen_access(rng),
            value: gen_expr(rng, 2),
            span: sp(),
        },
        1 => Stmt::Call {
            func: ident(format!("fn{}", rng.below(3))),
            args: (0..rng.range(1, 3))
                .map(|_| {
                    if rng.chance(1, 2) {
                        Arg::Out(gen_access(rng))
                    } else {
                        Arg::In(gen_expr(rng, 1))
                    }
                })
                .collect(),
            span: sp(),
        },
        2 => Stmt::If {
            cond: gen_expr(rng, 2),
            then_branch: gen_block(rng, depth - 1),
            else_branch: if rng.chance(1, 2) {
                gen_block(rng, depth - 1)
            } else {
                Vec::new()
            },
            span: sp(),
        },
        3 => Stmt::Switch {
            scrutinee: gen_expr(rng, 1),
            cases: (0..rng.range(1, 3))
                .map(|v| Case {
                    value: v as i64,
                    body: gen_block(rng, depth - 1),
                    span: sp(),
                })
                .collect(),
            default: gen_block(rng, depth - 1),
            span: sp(),
        },
        _ => Stmt::LoopWhile {
            body: gen_block(rng, depth - 1),
            cond: if rng.chance(1, 2) {
                Expr::Int(1, sp())
            } else {
                Expr::Opaque(sp())
            },
            span: sp(),
        },
    }
}

fn gen_block(rng: &mut GenRng, depth: u32) -> Vec<Stmt> {
    (0..rng.range(1, 3)).map(|_| gen_stmt(rng, depth)).collect()
}

/// Generate a random (syntactically well-formed, semantically arbitrary) OIL
/// AST for the `parse(pretty(ast))` round-trip property: modules with
/// parameters, buffer declarations, latency constraints, nested control
/// statements, multi-rate and sliced accesses.
pub fn gen_ast(seed: u64) -> Program {
    let mut rng = GenRng::new(seed ^ 0xA57);
    let mut modules = Vec::new();
    for mi in 0..rng.range(1, 3) {
        let seq = rng.chance(2, 3);
        if seq {
            let vars = (0..rng.below(3))
                .map(|vi| VarDecl {
                    ty: ident("int"),
                    name: ident(format!("v{vi}")),
                    array_len: rng.chance(1, 3).then(|| rng.range(2, 8)),
                    span: sp(),
                })
                .collect();
            modules.push(Module {
                name: Some(ident(format!("M{mi}"))),
                kind: ModuleKind::Seq,
                params: vec![
                    StreamParam {
                        out: false,
                        ty: ident("int"),
                        name: ident("a"),
                    },
                    StreamParam {
                        out: true,
                        ty: ident("int"),
                        name: ident("b"),
                    },
                ],
                body: ModuleBody::Seq(SeqBody {
                    vars,
                    stmts: gen_block(&mut rng, 2),
                }),
                span: sp(),
            });
        } else {
            let buffers = vec![
                BufferDecl::Fifo {
                    ty: ident("int"),
                    names: vec![ident("q0"), ident("q1")],
                    span: sp(),
                },
                BufferDecl::Source {
                    ty: ident("int"),
                    name: ident("sx"),
                    func: ident("src"),
                    rate: Frequency::from_hz(rng.range(1, 100) as f64 * 100.0),
                    span: sp(),
                },
                BufferDecl::Sink {
                    ty: ident("int"),
                    name: ident("sy"),
                    func: ident("snk"),
                    rate: Frequency::from_hz(rng.range(1, 100) as f64 * 100.0),
                    span: sp(),
                },
            ];
            let latencies = if rng.chance(1, 2) {
                vec![LatencyConstraint {
                    subject: ident("sx"),
                    amount_ms: rng.range(1, 50) as f64,
                    relation: if rng.chance(1, 2) {
                        LatencyRelation::Before
                    } else {
                        LatencyRelation::After
                    },
                    reference: ident("sy"),
                    span: sp(),
                }]
            } else {
                Vec::new()
            };
            let calls = vec![ModuleCall {
                module: ident(format!("M{mi}")),
                args: vec![
                    CallArg {
                        out: false,
                        name: ident("sx"),
                    },
                    CallArg {
                        out: true,
                        name: ident("sy"),
                    },
                ],
                span: sp(),
            }];
            modules.push(Module {
                name: Some(ident(format!("P{mi}"))),
                kind: ModuleKind::Par,
                params: Vec::new(),
                body: ModuleBody::Par(ParBody {
                    buffers,
                    latencies,
                    calls,
                }),
                span: sp(),
            });
        }
    }
    Program { modules }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oil_compiler::{compile, CompileError, CompilerOptions};

    #[test]
    fn generated_programs_are_deterministic() {
        for seed in 0..16 {
            assert_eq!(
                ProgramScenario::generate(seed),
                ProgramScenario::generate(seed)
            );
            assert_eq!(
                IllFormedProgram::generate(seed),
                IllFormedProgram::generate(seed)
            );
        }
    }

    #[test]
    fn generated_programs_compile() {
        let mut compiled_ok = 0;
        for seed in 0..48 {
            let s = ProgramScenario::generate(seed);
            match compile(&s.source, &s.registry, &CompilerOptions::default()) {
                Ok(_) => compiled_ok += 1,
                Err(CompileError::Frontend(diags)) => panic!(
                    "seed {seed}: generated program must be front-end valid, got {diags:?}\n{}",
                    s.source
                ),
                // Temporal rejections are legitimate (e.g. a tight latency
                // bound), but must stay the exception.
                Err(CompileError::Temporal(_)) => {}
            }
        }
        assert!(
            compiled_ok >= 40,
            "most generated programs must compile ({compiled_ok}/48)"
        );
    }

    #[test]
    fn sdr_scenarios_compile_and_have_radio_shaped_rates() {
        let mut compiled_ok = 0;
        for seed in 0..24 {
            let s = ProgramScenario::generate_sdr(seed);
            assert_eq!(s, ProgramScenario::generate_sdr(seed), "deterministic");
            assert_eq!(s.stages.len(), 3, "decimate → demod → resample");
            // The wideband source outpaces the audio sink by the decimation
            // ratio (scaled by the resampler).
            assert!(s.source_hz >= 4 * s.sink_hz / 2, "{}", s.source);
            let decim = &s.stages[0];
            assert!(decim.consume >= 4 && decim.produce == 1);
            // Rates multiply through the chain exactly.
            let mut rate = s.source_hz;
            for stage in &s.stages {
                assert_eq!(rate % stage.consume, 0, "seed {seed}");
                rate = (rate / stage.consume) * stage.produce;
            }
            assert_eq!(rate, s.sink_hz, "seed {seed}");
            if compile(&s.source, &s.registry, &CompilerOptions::default()).is_ok() {
                compiled_ok += 1;
            }
        }
        assert!(
            compiled_ok >= 20,
            "most SDR programs compile ({compiled_ok}/24)"
        );
    }

    #[test]
    fn stage_rates_multiply_through_the_chain() {
        for seed in 0..32 {
            let s = ProgramScenario::generate(seed);
            let mut rate = s.source_hz;
            for stage in &s.stages {
                assert_eq!(rate % stage.consume, 0, "seed {seed}");
                assert_eq!(stage.firing_hz, rate / stage.consume, "seed {seed}");
                rate = stage.firing_hz * stage.produce;
            }
            assert_eq!(rate, s.sink_hz, "seed {seed}");
        }
    }

    #[test]
    fn ill_formed_programs_are_rejected_without_panic() {
        for seed in 0..48 {
            let bad = IllFormedProgram::generate(seed);
            let result = compile(&bad.source, &bad.registry(), &CompilerOptions::default());
            assert!(
                result.is_err(),
                "seed {seed}: defect {:?} must be rejected\n{}",
                bad.defect,
                bad.source
            );
            if matches!(
                bad.defect,
                Defect::ModuleRecursion | Defect::UnwrittenOutput | Defect::NonRationalLiteral
            ) {
                assert!(
                    matches!(result, Err(CompileError::Frontend(ref d)) if !d.is_empty()),
                    "seed {seed}: defect {:?} must carry front-end diagnostics",
                    bad.defect
                );
            }
        }
    }

    #[test]
    fn ast_round_trip_through_pretty_printer() {
        use oil_lang::parse_program;
        use oil_lang::pretty::print_program;
        for seed in 0..64 {
            let ast = gen_ast(seed);
            let printed = print_program(&ast);
            let reparsed = parse_program(&printed).unwrap_or_else(|e| {
                panic!("seed {seed}: printed program must parse: {e}\n{printed}")
            });
            assert_eq!(
                print_program(&reparsed),
                printed,
                "seed {seed}: pretty-print normal form must be a fixed point"
            );
            assert_eq!(reparsed.modules.len(), ast.modules.len(), "seed {seed}");
        }
    }
}
