//! Property tests for the OIL front end on generated programs: the pretty
//! printer and parser are mutually inverse (modulo spans), and ill-formed
//! programs are rejected with diagnostics, never panics.

use oil_gen::{gen_ast, Defect, GenRng, IllFormedProgram, ProgramScenario};
use oil_lang::pretty::print_program;
use oil_lang::{analyze, parse_program};
use proptest::prelude::*;

proptest! {
    /// `parse(pretty(ast))` reproduces the AST: spans aside, printing the
    /// re-parsed program yields the identical canonical text, with the same
    /// module structure. Uses prop_flat_map to derive a *pair* of related
    /// seeds so the concatenation of two generated programs round-trips too.
    #[test]
    fn prop_parse_pretty_roundtrip(
        seeds in (0u64..50_000).prop_flat_map(|s| (Just(s), s..s + 4)),
    ) {
        let (sa, sb) = seeds;
        let mut ast = gen_ast(sa);
        ast.modules.extend(gen_ast(sb).modules);

        let printed = print_program(&ast);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("seeds {sa}/{sb}: canonical text must parse: {e}\n{printed}"));
        prop_assert_eq!(
            reparsed.modules.len(), ast.modules.len(),
            "seeds {}/{}: module count changed", sa, sb
        );
        prop_assert_eq!(
            print_program(&reparsed), printed,
            "seeds {}/{}: canonical form is not a fixed point", sa, sb
        );
    }

    /// Fully generated pipeline programs round-trip through the printer and
    /// re-analyse to the same application graph.
    #[test]
    fn prop_generated_programs_roundtrip_and_reanalyse(seed in 0u64..5_000) {
        let scenario = ProgramScenario::generate(seed);
        let ast = parse_program(&scenario.source)
            .unwrap_or_else(|e| panic!("seed {seed}: generated source must parse: {e}"));
        let printed = print_program(&ast);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: printed source must re-parse: {e}\n{printed}"));
        prop_assert_eq!(print_program(&reparsed), printed, "seed {}", seed);

        // Both forms pass semantic analysis with identical channel counts.
        let a = analyze(&ast, &scenario.registry)
            .unwrap_or_else(|e| panic!("seed {seed}: original must analyse: {:?}", e.diagnostics));
        let b = analyze(&reparsed, &scenario.registry)
            .unwrap_or_else(|e| panic!("seed {seed}: round-trip must analyse: {:?}", e.diagnostics));
        prop_assert_eq!(a.graph.channels.len(), b.graph.channels.len(), "seed {}", seed);
        prop_assert_eq!(a.graph.instances.len(), b.graph.instances.len(), "seed {}", seed);
    }

    /// Ill-formed generated programs are rejected with at least one error
    /// diagnostic whose message names the defect — and nothing panics.
    #[test]
    fn prop_ill_formed_programs_get_diagnostics(seed in 0u64..5_000) {
        let bad = IllFormedProgram::generate(seed);
        let parsed = match parse_program(&bad.source) {
            Ok(p) => p,
            // None of the generated defects are syntax errors.
            Err(d) => panic!("seed {seed}: unexpected parse failure: {d}"),
        };
        let diags = match analyze(&parsed, &bad.registry()) {
            Ok(_) => {
                // Rate mismatches surface later, in temporal analysis — the
                // front end legitimately accepts them; everything else must
                // be caught here.
                prop_assert_eq!(
                    bad.defect, Defect::RateMismatch,
                    "seed {}: defect {:?} must be caught by the front end",
                    seed, bad.defect
                );
                return;
            }
            Err(e) => e.diagnostics,
        };
        prop_assert!(!diags.is_empty(), "seed {}", seed);
        let text: String = diags.iter().map(|d| d.message.clone()).collect::<Vec<_>>().join("\n");
        let expected = match bad.defect {
            Defect::ModuleRecursion => "recursi",
            Defect::UnwrittenOutput => "never written",
            Defect::NonRationalLiteral => "exact rational",
            Defect::RateMismatch => "", // may or may not reach the front end
        };
        prop_assert!(
            text.contains(expected),
            "seed {}: diagnostics for {:?} should mention `{}`, got:\n{}",
            seed, bad.defect, expected, text
        );
    }
}

/// The lexer/parser never panic on mutated program text: random byte-level
/// mutations of valid programs produce either a parse or a diagnostic.
#[test]
fn mutated_sources_never_panic_the_parser() {
    for seed in 0..200u64 {
        let scenario = ProgramScenario::generate(seed % 40);
        let mut rng = GenRng::new(seed ^ 0xF00D);
        let mut bytes = scenario.source.into_bytes();
        // Apply a few random printable-byte mutations.
        for _ in 0..rng.range(1, 5) {
            let i = rng.below(bytes.len() as u64) as usize;
            bytes[i] = b' ' + (rng.below(94)) as u8;
        }
        if let Ok(mutated) = String::from_utf8(bytes) {
            // Must not panic; either verdict is acceptable.
            let _ = parse_program(&mutated);
        }
    }
}
