//! Property tests for the CTA composition algebra (paper §V-C) on generated
//! components: composition is associative, composition preserves the
//! analyses of its parts, and hiding internal ports preserves the externally
//! observable rates and latencies — all checked with exact equality.

use oil_cta::{check_latency_path, hide_component, CtaModel, Rational};
use oil_dataflow::index::PortId;
use oil_gen::{GenRng, RingScenario};
use proptest::prelude::*;

/// A random library component: an outer component with `in`/`out` interface
/// ports and a chain of hidden internal ports with random exact delays and
/// rate ratios, wired to an environment source and sink. Returns the model
/// and the environment's port ids.
fn random_chain_component(seed: u64) -> (CtaModel, PortId, PortId) {
    let mut rng = GenRng::new(seed ^ 0xC0117);
    let max = Some(Rational::from_int(rng.range(100, 100_000) as i128));
    let mut m = CtaModel::new();
    let outer = m.add_component("lib", None);
    let inner = m.add_component("stage", Some(outer));
    let input = m.add_port(outer, "in", max);
    let internals: Vec<PortId> = (0..rng.range(1, 4))
        .map(|i| m.add_port(inner, format!("i{i}"), max))
        .collect();
    let output = m.add_port(outer, "out", max);
    let env = m.add_component("env", None);
    let src = m.add_port(env, "src", max);
    let snk = m.add_port(env, "snk", max);

    let delay = |rng: &mut GenRng| Rational::new(rng.range(0, 900) as i128, 1_000_000);
    let gamma = |rng: &mut GenRng| Rational::new(rng.range(1, 4) as i128, rng.range(1, 4) as i128);
    m.connect(src, input, Rational::ZERO, Rational::ZERO, Rational::ONE);
    let mut prev = input;
    for &p in &internals {
        let (d, g) = (delay(&mut rng), gamma(&mut rng));
        m.connect(prev, p, d, Rational::ZERO, g);
        prev = p;
    }
    let (d, g) = (delay(&mut rng), gamma(&mut rng));
    m.connect(prev, output, d, Rational::ZERO, g);
    m.connect(output, snk, Rational::ZERO, Rational::ZERO, Rational::ONE);
    (m, src, snk)
}

proptest! {
    /// Merging models is associative: `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)`,
    /// structurally and bit for bit.
    #[test]
    fn prop_compose_is_associative(sa in 0u64..10_000, sb in 0u64..10_000, sc in 0u64..10_000) {
        let a = RingScenario::generate(sa).cta();
        let b = RingScenario::generate(sb).cta();
        let c = RingScenario::generate(sc).cta();

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        prop_assert_eq!(left, right);
    }

    /// Composing with an unrelated component does not disturb the first
    /// component's analysis: its ports keep exactly their rates. Only live
    /// rings are drawn (prop_filter), since deadlocked ones have no rates.
    #[test]
    fn prop_compose_preserves_component_analyses(
        sa in (0u64..10_000).prop_filter(
            "live rings only",
            |s| RingScenario::generate(*s).total_tokens() > 0,
        ),
        sb in 0u64..10_000,
    ) {
        let ring = RingScenario::generate(sa);
        let alone = ring.cta().maximal_rates().expect("live ring is feasible");

        let mut composed = ring.cta();
        composed.merge(&RingScenario::generate(sb).cta());
        let together = composed.maximal_rates();

        match together {
            Ok(rates) => {
                for i in 0..ring.len() {
                    prop_assert_eq!(
                        rates[ring.cta_port(i)],
                        alone[ring.cta_port(i)],
                        "seed {}: rate of port {} changed under composition",
                        sa,
                        i
                    );
                }
            }
            // The merged partner may itself be infeasible (deadlocked ring);
            // that is a property of the partner, not of composition.
            Err(_) => {
                prop_assert_eq!(
                    RingScenario::generate(sb).total_tokens(), 0,
                    "seed {}: composition with a live partner must stay feasible", sb
                );
            }
        }
    }

    /// Hiding the internal ports of a generated library component preserves
    /// the externally observable rates and the end-to-end latency exactly
    /// (paper §V-C: a black-box interface is as good as the white box).
    #[test]
    fn prop_hiding_preserves_observable_rates_and_latency(seed in 0u64..10_000) {
        let (m, src, snk) = random_chain_component(seed);
        let full = m.check_consistency().expect("chain components are consistent");
        let full_latency = check_latency_path(&m, &full, src, snk)
            .expect("sink reachable")
            .latency;

        let lib = m.component_by_name("lib").expect("lib exists");
        let hidden = hide_component(&m, lib)
            .unwrap_or_else(|e| panic!("seed {seed}: hiding failed: {e}"));
        let res = hidden.check_consistency().expect("hidden model stays consistent");

        let env = hidden.component_by_name("env").expect("env survives");
        let src_h = hidden.port_by_name(env, "src").expect("src survives");
        let snk_h = hidden.port_by_name(env, "snk").expect("snk survives");

        // Exact rate preservation at the interface.
        prop_assert_eq!(
            res.rates[src_h], full.rates[src],
            "seed {}: source rate changed under hiding", seed
        );
        prop_assert_eq!(
            res.rates[snk_h], full.rates[snk],
            "seed {}: sink rate changed under hiding", seed
        );

        // Exact latency preservation along the summarised path.
        let hidden_latency = check_latency_path(&hidden, &res, src_h, snk_h)
            .expect("sink still reachable")
            .latency;
        prop_assert_eq!(
            hidden_latency, full_latency,
            "seed {}: end-to-end latency changed under hiding", seed
        );
    }
}

/// Merge offsets translate every id space consistently: spot-check that the
/// merged copy of a generated ring is bit-identical to the original under
/// the offset translation.
#[test]
fn merge_offsets_translate_generated_components_faithfully() {
    for seed in 0..64u64 {
        let a = RingScenario::generate(seed).cta();
        let b = RingScenario::generate(seed + 1000).cta();
        let mut merged = a.clone();
        let off = merged.merge(&b);
        for (pid, port) in b.ports.iter_enumerated() {
            let t = &merged.ports[off.port(pid)];
            assert_eq!(t.name, port.name, "seed {seed}");
            assert_eq!(t.max_rate, port.max_rate, "seed {seed}");
            assert_eq!(t.component, off.component(port.component), "seed {seed}");
        }
        for (cid, conn) in b.connections.iter_enumerated() {
            let t = &merged.connections[off.connection(cid)];
            assert_eq!(t.from, off.port(conn.from), "seed {seed}");
            assert_eq!(t.to, off.port(conn.to), "seed {seed}");
            assert_eq!(t.epsilon, conn.epsilon, "seed {seed}");
            assert_eq!(t.phi, conn.phi, "seed {seed}");
            assert_eq!(t.gamma, conn.gamma, "seed {seed}");
        }
    }
}
