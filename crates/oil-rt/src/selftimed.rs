//! The self-timed, free-running execution engine.
//!
//! The calendar engine ([`crate::exec`]) proves the *semantics* of parallel
//! execution: it replays virtual time and is held to bit-identical traces
//! against the simulator. It also serialises every scheduling decision
//! through one thread — the price of replaying a clock. This engine drops
//! the clock entirely and keeps only what the paper's restrictions actually
//! require for correctness:
//!
//! * every task **fires as soon as** its input tokens and output space are
//!   available — no calendar, no virtual-clock barrier, no response times;
//! * tokens flow through the same lock-free SPSC rings, with **blocking
//!   backpressure**: a worker with nothing fireable spins briefly, yields,
//!   then parks until a peer's firing makes progress possible;
//! * nodes fire in **batches** (sizes from the repetition-vector pass,
//!   [`oil_compiler::rtgraph::plan`]), so a node that is 64× faster than
//!   the graph iteration pays one wakeup per burst, not per token.
//!
//! Dropping the clock drops determinism of *timing* but — for Kahn process
//! networks — not determinism of *values*: a node's k-th firing consumes
//! exactly tokens `k·c .. k·c+c` of each input stream no matter when it
//! runs, so per-buffer value streams are schedule-invariant. The lowering
//! is not always a KPN (modal `if`/`switch` statements produce twin tasks
//! contending on shared buffers); the plan groups such nodes into *serial
//! clusters* executed by a single owner with lowest-id-first preference —
//! the same preference as the calendar engine's id-ordered admission scan.
//! For *uniform* clusters (all members exact twins, the shape modal
//! extraction produces) that preference is timing-independent by itself;
//! a non-uniform cluster (members gated on disjoint inputs) additionally
//! has its whole weakly-connected component pinned onto one worker, so its
//! merge order is a sequential function of that worker's fixed scan order
//! — which keeps the engine deterministic at every thread count.
//!
//! A non-uniform cluster can instead be driven by an explicit
//! [`ModeScript`] via [`execute_selftimed_scripted`]: when the cluster is
//! modal-admissible ([`modal_admission`]), its members become one
//! **union-advance** unit that consumes every member's aggregated inputs
//! on each firing and dispatches the scripted arm's kernel onto its slice,
//! broadcasting to the shared write list. Token flow is then
//! mode-independent — a pure KPN node — and the value streams match the
//! static-order engine's per-mode schedules firing for firing
//! (`tests/modeswitch_differential.rs`).
//! `tests/selftimed_differential.rs` holds the engine to exactly that: the
//! calendar reference's value streams are a bit-exact prefix of this
//! engine's streams on KPN graphs, all streams are thread-count- and
//! perturbation-invariant, CTA-sized buffers never deadlock, and measured
//! sink throughput meets the CTA rate-conformance threshold
//! ([`crate::measure`]).
//!
//! **Termination** is a token budget, not a wall clock: each time-triggered
//! source produces exactly the number of samples the simulator would emit
//! over the requested virtual horizon, then retires; the pipeline drains;
//! and a sound quiescence protocol (generation stamp + idle census with
//! per-worker stamps — the last worker to go idle verifies that *every*
//! sleeping worker registered its empty scan at the current generation, so
//! a peer whose stamp was outdated by a later firing is never counted)
//! distinguishes completion from deadlock without any timeout.

use crate::exec::{SinkStream, SINK_STREAM_CAP};
use crate::kernel::{Kernel, KernelLibrary, SourceKernel};
use crate::measure::{BufferValues, RateConformance, SinkThroughput, ThroughputMeter, ValueTrace};
use crate::metrics::{MetricsConfig, MetricsHub, MetricsReport, SinkMonitor};
use crate::ring::{self, Consumer, Producer};
use crate::trace::{EventKind, RingStat, TraceReport, WorkerTracer};
use oil_compiler::rtgraph::{RtGraph, RtNodeId, RtPlan, RtSinkId, RtSourceId};
use oil_compiler::schedule::{
    modal_admission, mode_dependent_rates, plan_mode_sequence, ModeScript,
};
use oil_dataflow::index::Idx;
use oil_dataflow::taskgraph::ports_satisfied;
use oil_dataflow::unionfind::UnionFind;
use oil_sim::Picos;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration of a self-timed execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelfTimedConfig {
    /// Worker threads; `0` uses the machine's available parallelism. The
    /// engine never spawns more workers than scheduling units.
    pub threads: usize,
    /// Record per-buffer value streams (the verification oracle); sink
    /// streams and counters are always kept.
    pub record_values: bool,
    /// Sink samples excluded from the steady-state throughput window.
    pub warmup_samples: u64,
    /// Perturbation seed: when set, workers inject random `yield`s and
    /// short sleeps between firing passes. Value streams must not change —
    /// the schedule-invariance property test drives this.
    pub chaos: Option<u64>,
    /// Record per-worker trace events and ring telemetry
    /// ([`crate::trace`]). Off costs a single predictable branch per
    /// instrumentation point; recording writes only worker-local memory,
    /// so value streams are bit-identical either way.
    pub trace: bool,
    /// Run with the always-on metrics registry ([`crate::metrics`]):
    /// per-worker counter/histogram cells, windowed sink throughput and
    /// the CTA drift detector. Same overhead discipline as `trace`.
    pub metrics: Option<MetricsConfig>,
}

impl Default for SelfTimedConfig {
    fn default() -> Self {
        SelfTimedConfig {
            threads: 0,
            record_values: true,
            warmup_samples: 16,
            chaos: None,
            trace: false,
            metrics: None,
        }
    }
}

/// Everything one self-timed execution observed.
#[derive(Debug)]
pub struct SelfTimedReport {
    /// Worker threads used.
    pub threads: usize,
    /// Per-buffer value streams (when [`SelfTimedConfig::record_values`]).
    pub values: ValueTrace,
    /// Per sink: the output sample streams (`misses` is always 0 — a
    /// free-running engine has no deadlines, only throughput).
    pub sinks: Vec<SinkStream>,
    /// Per sink: measured steady-state throughput vs the CTA-predicted
    /// rate.
    pub throughput: Vec<SinkThroughput>,
    /// Per node: (name, completed firings), in node-id order.
    pub node_firings: Vec<(String, u64)>,
    /// Per source: (name, samples generated).
    pub sources: Vec<(String, u64)>,
    /// True when the engine quiesced with sources still holding budget:
    /// nothing was fireable and nothing ever would be.
    pub deadlocked: bool,
    /// Total tokens pushed across all buffers (including drained unread
    /// buffers), the same currency as [`crate::RtReport::tokens`].
    pub tokens: u64,
    /// Wall-clock execution time.
    pub wall: Duration,
    /// Times a worker parked because nothing it owns was fireable.
    pub parks: u64,
    /// Serial clusters the plan imposed (0 ⇒ the graph ran as a pure KPN).
    pub clusters: usize,
    /// Arm changes the mode script performed (0 on unscripted runs).
    pub mode_switches: u64,
    /// Modal firings spent inside a mode-switch seam — firings whose
    /// scripted arm differs from the period mode executing them (the old
    /// mode *draining* its in-flight period). Always 0 for union-advance
    /// clusters, which switch hot.
    pub transition_firings: u64,
    /// Per-worker event tracks and ring telemetry (`Some` iff
    /// [`SelfTimedConfig::trace`]).
    pub trace_report: Option<TraceReport>,
    /// Merged metric cells, per-sink windows and the drift verdict
    /// (`Some` iff [`SelfTimedConfig::metrics`]).
    pub metrics: Option<MetricsReport>,
}

impl SelfTimedReport {
    /// The collected sample stream of a sink (matched by name fragment).
    pub fn sink_values(&self, name: &str) -> Option<&[f64]> {
        self.sinks
            .iter()
            .find(|s| s.name.contains(name))
            .map(|s| s.values.as_slice())
    }

    /// The rate-conformance verdict at `threshold` (see
    /// [`crate::measure::conformance_threshold`] for the default).
    pub fn conformance(&self, threshold: f64) -> RateConformance {
        RateConformance {
            threshold,
            sinks: self.throughput.clone(),
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduling units.
// ---------------------------------------------------------------------------

/// One data-driven node inside a [`Unit::Nodes`] unit.
struct NodePart {
    id: RtNodeId,
    kernel: Kernel,
    reads: Vec<(usize, usize)>,
    writes: Vec<(usize, usize)>,
    out_len: usize,
    batch: u32,
    fired: u64,
}

/// A scheduling unit: owned by exactly one worker, so every buffer endpoint
/// is touched by one thread and the SPSC contract holds engine-wide.
enum Unit {
    /// A single node, or a serial cluster in ascending id order.
    Nodes(Vec<NodePart>),
    /// A time-triggered source, free-running against its sample budget.
    Source {
        id: RtSourceId,
        kernel: SourceKernel,
        outputs: Vec<usize>,
        budget: u64,
        generated: u64,
        batch: u32,
    },
    /// A sink, draining its input as fast as tokens arrive.
    Sink {
        id: RtSinkId,
        input: usize,
        batch: u32,
        consumed: u64,
        values: Vec<f64>,
        meter: ThroughputMeter,
        /// `Some` iff metrics are on: the drift detector's windowing
        /// monitor for this sink.
        monitor: Option<SinkMonitor>,
    },
    /// A modal-admissible non-uniform cluster driven by a mode script:
    /// every firing pops the union of all members' aggregated reads
    /// (member id order, canonical buffer order) and fires the scripted
    /// arm's kernel on its slice, broadcasting to the shared write list.
    /// Token flow is mode-independent, so the unit is a KPN node and
    /// needs no component pinning. Member `NodePart.reads` hold the
    /// aggregated canonical read lists; the shared writes live here.
    Modal {
        members: Vec<NodePart>,
        writes: Vec<(usize, usize)>,
        out_len: usize,
        batch: u32,
        script: ModeScript,
        fired: u64,
        switches: u64,
        last_arm: u32,
        /// `Some` exactly for a **mode-dependent** cluster: the resolved
        /// period plan the unit walks instead of union-advance dispatch.
        dep: Option<ModalDep>,
    },
}

/// The resolved mode plan a mode-dependent [`Unit::Modal`] walks: each
/// period fires `period_reps[mode]` modal firings of one mode's arm
/// (reading only that arm's buffers, writing only that arm's outputs); a
/// scripted switch takes effect at the next period boundary, and the old
/// period's trailing firings are counted as transition (drain) firings —
/// the same protocol the static-order engine replays.
struct ModalDep {
    /// Per mode: modal firings per period (the per-mode repetition).
    period_reps: Vec<u64>,
    /// The planned mode of every executed period, in order.
    mode_seq: Vec<u32>,
    /// Index of the period currently executing.
    seq_idx: usize,
    /// Firings remaining in the current period (0 ⇒ the plan is spent).
    period_left: u64,
    /// See [`SelfTimedReport::transition_firings`].
    transition_firings: u64,
}

/// The buffer plumbing a worker owns: sparse per-buffer endpoint and
/// recorder slots (a slot is `Some` exactly when one of the worker's units
/// is that buffer's producer/consumer).
struct WorkerBufs {
    prods: Vec<Option<Producer<f64>>>,
    cons: Vec<Option<Consumer<f64>>>,
    recorders: Vec<Option<BufferValues>>,
    /// Declared (CTA-sized) capacities, shared read-only.
    declared: Arc<Vec<usize>>,
    /// Buffers nobody reads: the writer's commits are recorded and dropped
    /// instead of accumulating until they block the writer.
    unread: Arc<Vec<bool>>,
    record_values: bool,
    tokens: u64,
    scratch: Vec<f64>,
    /// `Some` iff [`SelfTimedConfig::trace`]: worker-local event buffer
    /// plus ring high-water marks.
    trace: Option<WorkerTracer>,
    /// `Some` iff [`SelfTimedConfig::metrics`]: the shared hub plus this
    /// worker's index, for its metric cell.
    metrics: Option<(Arc<MetricsHub>, usize)>,
}

impl WorkerBufs {
    /// Free slots in `b`, from the producing side (`usize::MAX` for drained
    /// unread buffers).
    fn space_count(&self, b: usize) -> usize {
        if self.unread[b] {
            return usize::MAX;
        }
        let p = self.prods[b].as_ref().expect("producer endpoint is owned");
        self.declared[b].saturating_sub(p.len())
    }

    /// Buffered values in `b`, from the consuming side.
    fn available_count(&self, b: usize) -> usize {
        self.cons[b]
            .as_ref()
            .expect("consumer endpoint is owned")
            .len()
    }

    fn space_for(&self, b: usize, c: usize) -> bool {
        self.space_count(b) >= c
    }

    fn commit(&mut self, b: usize, value: f64) {
        if !self.unread[b] {
            let p = self.prods[b].as_mut().expect("producer endpoint is owned");
            p.push(value).expect("space was checked before the firing");
            if let Some(t) = self.trace.as_mut() {
                // Post-push occupancy: a concurrent consumer drain only
                // lowers it, so the mark never over-reports.
                let level = p.len();
                t.note_level(b, level);
            }
        }
        if self.record_values {
            if let Some(r) = self.recorders[b].as_mut() {
                r.record(value);
            }
        }
        self.tokens += 1;
    }
}

/// Shared worker coordination: progress stamp, idle census, verdict.
struct Control {
    /// Bumped once per firing pass that made progress (after its pushes).
    gen: AtomicU64,
    /// Workers registered as idle (nothing fireable at their stamp).
    idle: AtomicUsize,
    /// Per worker: the generation its current idle registration certifies.
    /// Written under the mutex immediately before `idle` is incremented and
    /// meaningful exactly while the worker is counted idle — the census
    /// consults the stamps only when `idle == threads`, at which point every
    /// worker is between its increment and decrement.
    idle_stamps: Vec<AtomicU64>,
    done: AtomicBool,
    deadlocked: AtomicBool,
    /// Sources still holding sample budget.
    sources_open: AtomicUsize,
    parks: AtomicU64,
    threads: usize,
    m: Mutex<()>,
    cv: Condvar,
}

impl Control {
    /// Publish progress: wake parked peers whose inputs may now be ready.
    fn progress(&self) {
        self.gen.fetch_add(1, Ordering::SeqCst);
        if self.idle.load(Ordering::SeqCst) > 0 {
            let _guard = self.m.lock().expect("control mutex poisoned");
            self.cv.notify_all();
        }
    }
}

/// A tiny SplitMix64 for perturbation injection.
struct Chaos(u64);

impl Chaos {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn perturb(&mut self) {
        match self.next() % 128 {
            0 => std::thread::sleep(Duration::from_micros(50)),
            1..=15 => std::thread::yield_now(),
            _ => {}
        }
    }
}

/// Fire one scheduling unit as far as its batch allows. Returns true if at
/// least one firing happened.
fn run_unit(unit: &mut Unit, w: &mut WorkerBufs, control: &Control) -> bool {
    match unit {
        Unit::Nodes(parts) => {
            // Serial cluster discipline: at every step the lowest-id
            // fireable member wins — twin tasks with identical needs
            // starve deterministically, exactly like the calendar
            // engine's id-ordered admission scan. Readiness of all members
            // is judged against ONE per-buffer level snapshot: evaluating
            // members sequentially against the live rings would let a peer
            // worker's concurrent push/pop flip a later twin to ready after
            // an earlier identical twin was judged blocked, and the merge
            // order (hence the value streams) would depend on timing.
            // The snapshot alone is decisive only for *uniform* clusters
            // (exact twins become ready together, so the lowest id wins no
            // matter when the owner looks); a non-uniform cluster's members
            // can be flipped ready one at a time by cross-worker arrivals,
            // which is why `partition_units` pins such a cluster's whole
            // component onto this worker — every level this scan reads is
            // then a sequential function of this thread's own firings.
            let batch = if parts.len() == 1 { parts[0].batch } else { 1 };
            let clustered = parts.len() > 1;
            let mut avail_levels: BTreeMap<usize, usize> = BTreeMap::new();
            let mut space_levels: BTreeMap<usize, usize> = BTreeMap::new();
            let mut fired = false;
            'burst: for _ in 0..batch {
                if clustered {
                    avail_levels.clear();
                    space_levels.clear();
                    for part in parts.iter() {
                        for &(b, _) in &part.reads {
                            avail_levels
                                .entry(b)
                                .or_insert_with(|| w.available_count(b));
                        }
                        for &(b, _) in &part.writes {
                            space_levels.entry(b).or_insert_with(|| w.space_count(b));
                        }
                    }
                }
                for part in parts.iter_mut() {
                    let ready = if clustered {
                        ports_satisfied(&part.reads, |b| avail_levels[&b])
                            && ports_satisfied(&part.writes, |b| space_levels[&b])
                    } else {
                        ports_satisfied(&part.reads, |b| w.available_count(b))
                            && ports_satisfied(&part.writes, |b| w.space_count(b))
                    };
                    if !ready {
                        continue;
                    }
                    w.scratch.clear();
                    for &(b, c) in &part.reads {
                        let rx = w.cons[b].as_mut().expect("consumer endpoint is owned");
                        for _ in 0..c {
                            w.scratch
                                .push(rx.pop().expect("occupancy was checked above"));
                        }
                    }
                    let inputs = std::mem::take(&mut w.scratch);
                    let outputs = part.kernel.fire(&inputs, part.out_len);
                    w.scratch = inputs;
                    for &(b, c) in &part.writes {
                        for k in 0..c {
                            w.commit(b, outputs.get(k).copied().unwrap_or(0.0));
                        }
                    }
                    part.fired += 1;
                    fired = true;
                    continue 'burst;
                }
                break;
            }
            fired
        }
        Unit::Source {
            kernel,
            outputs,
            budget,
            generated,
            batch,
            ..
        } => {
            let mut fired = false;
            for _ in 0..*batch {
                if *budget == 0 {
                    break;
                }
                // Blocking backpressure: a source sample is broadcast to
                // every replica atomically, so it waits until all of them
                // have room (the calendar engine drops and counts an
                // overflow instead; accepted programs overflow in neither).
                if !outputs.iter().all(|&b| w.space_for(b, 1)) {
                    break;
                }
                let v = kernel.next_sample();
                for &b in outputs.iter() {
                    w.commit(b, v);
                }
                *generated += 1;
                *budget -= 1;
                if *budget == 0 {
                    control.sources_open.fetch_sub(1, Ordering::SeqCst);
                }
                fired = true;
            }
            fired
        }
        Unit::Sink {
            input,
            batch,
            consumed,
            values,
            meter,
            monitor,
            ..
        } => {
            let mut drained = 0u64;
            for _ in 0..(*batch).max(8) {
                let Some(v) = w.cons[*input]
                    .as_mut()
                    .expect("sink input endpoint is owned")
                    .pop()
                else {
                    break;
                };
                *consumed += 1;
                meter.record();
                if let Some(m) = monitor.as_mut() {
                    m.record();
                }
                if values.len() < SINK_STREAM_CAP {
                    values.push(v);
                }
                drained += 1;
            }
            if drained > 0 {
                if let Some((h, wi)) = w.metrics.as_ref() {
                    h.cell(*wi).record_sink(drained);
                }
            }
            drained > 0
        }
        Unit::Modal {
            members,
            writes,
            out_len,
            batch,
            script,
            fired,
            switches,
            last_arm,
            dep,
        } => {
            if let Some(dep) = dep {
                return run_modal_dependent(
                    members, script, fired, switches, last_arm, dep, *batch, w,
                );
            }
            let mut any = false;
            for _ in 0..(*batch).max(1) {
                // Union-advance readiness: every member's aggregated reads
                // (pairwise disjoint by admission) and the shared writes.
                // Firing is fully determined by the script and the firing
                // index, so a conservative live-level check suffices —
                // availability only grows under the consumer, space only
                // grows under the producer.
                let ready = members
                    .iter()
                    .all(|m| ports_satisfied(&m.reads, |b| w.available_count(b)))
                    && ports_satisfied(writes, |b| w.space_count(b));
                if !ready {
                    break;
                }
                let arm = script.arm_at(*fired).min(members.len() as u32 - 1);
                if *last_arm != u32::MAX && arm != *last_arm {
                    *switches += 1;
                    if let Some(t) = w.trace.as_mut() {
                        t.instant(EventKind::ModeSwitch, arm);
                    }
                }
                *last_arm = arm;
                w.scratch.clear();
                let (mut start, mut len) = (0usize, 0usize);
                for (k, m) in members.iter().enumerate() {
                    if k as u32 == arm {
                        start = w.scratch.len();
                    }
                    for &(b, c) in &m.reads {
                        let rx = w.cons[b].as_mut().expect("consumer endpoint is owned");
                        for _ in 0..c {
                            w.scratch
                                .push(rx.pop().expect("occupancy was checked above"));
                        }
                    }
                    if k as u32 == arm {
                        len = w.scratch.len() - start;
                    }
                }
                let inputs = std::mem::take(&mut w.scratch);
                let outputs = members[arm as usize]
                    .kernel
                    .fire(&inputs[start..start + len], *out_len);
                w.scratch = inputs;
                for &(b, c) in writes.iter() {
                    for k in 0..c {
                        w.commit(b, outputs.get(k).copied().unwrap_or(0.0));
                    }
                }
                members[arm as usize].fired += 1;
                *fired += 1;
                any = true;
            }
            any
        }
    }
}

/// Fire a mode-dependent modal unit data-driven against its resolved
/// period plan (see [`ModalDep`]). Only the current period's arm gates the
/// firing — its reads must be available and its own writes must have space;
/// other arms' buffers never block it (they are drained and filled by the
/// mode sequence itself).
#[allow(clippy::too_many_arguments)]
fn run_modal_dependent(
    members: &mut [NodePart],
    script: &ModeScript,
    fired: &mut u64,
    switches: &mut u64,
    last_arm: &mut u32,
    dep: &mut ModalDep,
    batch: u32,
    w: &mut WorkerBufs,
) -> bool {
    let mut any = false;
    for _ in 0..batch.max(1) {
        if dep.period_left == 0 {
            break; // the plan is spent; source budgets are capped to match
        }
        let mode = dep.mode_seq[dep.seq_idx];
        let ready = {
            let active = &members[mode as usize];
            ports_satisfied(&active.reads, |b| w.available_count(b))
                && ports_satisfied(&active.writes, |b| w.space_count(b))
        };
        if !ready {
            break;
        }
        if *last_arm != u32::MAX && mode != *last_arm {
            *switches += 1;
            if let Some(t) = w.trace.as_mut() {
                t.instant(EventKind::ModeSwitch, mode);
            }
        }
        *last_arm = mode;
        // A firing whose scripted arm differs from the executing period's
        // mode belongs to the seam: the old mode draining its in-flight
        // period before the switch takes effect at the boundary.
        let scripted = script.arm_at(*fired).min(members.len() as u32 - 1);
        let seam = scripted != mode;
        if seam {
            dep.transition_firings += 1;
        }
        let seam_t0 = match (seam, w.trace.as_ref()) {
            (true, Some(t)) => Some(t.now_ns()),
            _ => None,
        };
        w.scratch.clear();
        for ri in 0..members[mode as usize].reads.len() {
            let (b, c) = members[mode as usize].reads[ri];
            let rx = w.cons[b].as_mut().expect("consumer endpoint is owned");
            for _ in 0..c {
                w.scratch
                    .push(rx.pop().expect("occupancy was checked above"));
            }
        }
        let inputs = std::mem::take(&mut w.scratch);
        let active = &mut members[mode as usize];
        let outputs = active.kernel.fire(&inputs, active.out_len);
        w.scratch = inputs;
        for &(b, c) in &members[mode as usize].writes {
            for k in 0..c {
                w.commit(b, outputs.get(k).copied().unwrap_or(0.0));
            }
        }
        members[mode as usize].fired += 1;
        *fired += 1;
        if let Some(start) = seam_t0 {
            let t = w.trace.as_mut().expect("tracer outlives the run");
            t.span(EventKind::Seam, (mode << 16) | scripted, start);
        }
        dep.period_left -= 1;
        if dep.period_left == 0 {
            dep.seq_idx += 1;
            if dep.seq_idx < dep.mode_seq.len() {
                dep.period_left = dep.period_reps[dep.mode_seq[dep.seq_idx] as usize];
            }
        }
        any = true;
    }
    any
}

/// What one worker hands back after the run.
struct WorkerOut {
    units: Vec<Unit>,
    recorders: Vec<Option<BufferValues>>,
    tokens: u64,
    trace: Option<WorkerTracer>,
}

/// Timestamp origin for a unit pass — `Some` when any instrumentation is
/// on (the tracer's clock when tracing, so span and histogram agree).
#[inline]
fn scan_t0(bufs: &WorkerBufs) -> Option<u64> {
    match (&bufs.trace, &bufs.metrics) {
        (Some(t), _) => Some(t.now_ns()),
        (None, Some((h, _))) => Some(h.now_ns()),
        (None, None) => None,
    }
}

/// Close a productive unit pass opened at `start`: a trace span when
/// tracing, a firing-histogram sample in the worker's cell when metering.
#[inline]
fn note_pass(bufs: &mut WorkerBufs, unit: u32, start: u64) {
    if let Some((h, wi)) = bufs.metrics.as_ref() {
        let now = match bufs.trace.as_ref() {
            Some(t) => t.now_ns(),
            None => h.now_ns(),
        };
        h.cell(*wi).record_firing(now.saturating_sub(start));
    }
    if let Some(t) = bufs.trace.as_mut() {
        t.span(EventKind::Firing, unit, start);
    }
}

/// Extra empty-scan → rescan rounds (with a `yield_now` between) before a
/// worker parks.
const IDLE_RESCANS: usize = 2;

fn worker_loop(
    widx: usize,
    mut units: Vec<Unit>,
    mut bufs: WorkerBufs,
    control: &Control,
    chaos: Option<u64>,
) -> WorkerOut {
    let mut chaos = chaos.map(Chaos);
    'main: while !control.done.load(Ordering::SeqCst) {
        let scan = |units: &mut Vec<Unit>, bufs: &mut WorkerBufs| -> bool {
            let mut fired = false;
            for (ui, unit) in units.iter_mut().enumerate() {
                let t0 = scan_t0(bufs);
                let f = run_unit(unit, bufs, control);
                if f {
                    if let Some(start) = t0 {
                        // One span per productive pass: it covers the
                        // unit's whole batched burst, attributed by label.
                        note_pass(bufs, ui as u32, start);
                    }
                }
                fired |= f;
            }
            fired
        };
        if scan(&mut units, &mut bufs) {
            control.progress();
            if let Some(c) = chaos.as_mut() {
                c.perturb();
            }
            continue;
        }
        // Bounded spin: nothing fireable right now; give actively running
        // peers a moment before paying the park round-trip.
        for _ in 0..IDLE_RESCANS {
            std::thread::yield_now();
            if scan(&mut units, &mut bufs) {
                control.progress();
                continue 'main;
            }
        }
        // Park. The stamp `g0` is read before the verification scan, so
        // "idle at g0" certifies: nothing I own was fireable as of every
        // firing published up to generation g0.
        let g0 = control.gen.load(Ordering::SeqCst);
        if scan(&mut units, &mut bufs) {
            control.progress();
            continue;
        }
        let mut guard = control.m.lock().expect("control mutex poisoned");
        if control.gen.load(Ordering::SeqCst) != g0 || control.done.load(Ordering::SeqCst) {
            continue;
        }
        // Register idle *at stamp g0* (equal to the live generation — just
        // re-checked under the lock). The stamp matters: a peer counted
        // idle at an older stamp was already notified by the bump that
        // outdated it and may have fireable work it has not rescanned yet,
        // so `idle == threads` alone is not a fixpoint. Only a census in
        // which every sleeping worker certified an empty scan at the
        // *current* generation is.
        control.idle_stamps[widx].store(g0, Ordering::SeqCst);
        let idle = control.idle.fetch_add(1, Ordering::SeqCst) + 1;
        if idle == control.threads
            && control
                .idle_stamps
                .iter()
                .all(|s| s.load(Ordering::SeqCst) == g0)
        {
            // Idle census complete: every worker certified an empty scan at
            // the current generation and none is running — a global
            // fixpoint. With retired sources that is successful completion;
            // with budget left it is a deadlock (and can only be one:
            // nothing will ever fire again).
            let deadlocked = control.sources_open.load(Ordering::SeqCst) > 0;
            if deadlocked {
                control.deadlocked.store(true, Ordering::SeqCst);
            }
            control.done.store(true, Ordering::SeqCst);
            control.idle.fetch_sub(1, Ordering::SeqCst);
            control.cv.notify_all();
            drop(guard);
            if let Some(t) = bufs.trace.as_mut() {
                t.instant(EventKind::Census, deadlocked as u32);
            }
            break;
        }
        // Either a peer is still running, or a sleeper's stamp is stale.
        // A stale sleeper needs no help from us: the `gen` bump that
        // outdated its stamp notified the condvar, so it will wake and
        // rescan — and then either fire (bumping `gen`, waking us) or
        // re-register at the current generation and complete the census
        // itself.
        control.parks.fetch_add(1, Ordering::Relaxed);
        if let Some((h, wi)) = bufs.metrics.as_ref() {
            h.cell(*wi).record_park();
        }
        let park_t0 = scan_t0(&bufs);
        while control.gen.load(Ordering::SeqCst) == g0 && !control.done.load(Ordering::SeqCst) {
            guard = control.cv.wait(guard).expect("control mutex poisoned");
        }
        control.idle.fetch_sub(1, Ordering::SeqCst);
        drop(guard);
        if let Some(start) = park_t0 {
            // A park is this engine's backpressure: nothing the worker owns
            // was fireable until a peer's firing made progress possible.
            if let Some((h, wi)) = bufs.metrics.as_ref() {
                let now = match bufs.trace.as_ref() {
                    Some(t) => t.now_ns(),
                    None => h.now_ns(),
                };
                h.cell(*wi).record_backpressure(now.saturating_sub(start));
            }
            if let Some(t) = bufs.trace.as_mut() {
                t.parks += 1;
                t.unparks += 1;
                t.span(EventKind::Park, 0, start);
                t.instant(EventKind::Unpark, 0);
            }
        }
    }
    WorkerOut {
        units,
        recorders: bufs.recorders,
        tokens: bufs.tokens,
        trace: bufs.trace,
    }
}

// ---------------------------------------------------------------------------
// Setup: units, partition, endpoints.
// ---------------------------------------------------------------------------

/// Execute `graph` self-timed: sources produce the samples of `duration`
/// picoseconds of virtual time (the same count the simulator would emit),
/// everything downstream runs as fast as the hardware allows, and the
/// engine returns once the pipeline has drained.
///
/// # Panics
/// Panics if `plan` was computed for a different graph.
pub fn execute_selftimed(
    graph: &RtGraph,
    plan: &RtPlan,
    lib: &KernelLibrary,
    duration: Picos,
    config: &SelfTimedConfig,
) -> SelfTimedReport {
    execute_inner(graph, plan, lib, duration, config, None)
}

/// Execute `graph` self-timed under an explicit [`ModeScript`]: the
/// graph's modal-admissible non-uniform cluster (if any) runs as one
/// union-advance unit whose active arm follows the script, firing for
/// firing the same dispatch the static-order engine performs. A graph
/// without a modal cluster runs exactly as [`execute_selftimed`] would.
///
/// # Panics
/// Panics if the graph has a non-uniform cluster that is **not**
/// modal-admissible — scripted execution has no meaning for a merge whose
/// order is data-dependent.
pub fn execute_selftimed_scripted(
    graph: &RtGraph,
    plan: &RtPlan,
    lib: &KernelLibrary,
    duration: Picos,
    config: &SelfTimedConfig,
    script: &ModeScript,
) -> SelfTimedReport {
    execute_inner(graph, plan, lib, duration, config, Some(script))
}

fn execute_inner(
    graph: &RtGraph,
    plan: &RtPlan,
    lib: &KernelLibrary,
    duration: Picos,
    config: &SelfTimedConfig,
    script: Option<&ModeScript>,
) -> SelfTimedReport {
    assert_eq!(plan.batch.len(), graph.nodes.len(), "plan/graph mismatch");
    // Scripted runs route the (sole) modal-admissible cluster through the
    // union-advance unit; unscripted runs keep the legacy arrival-order
    // merge with component pinning, byte for byte.
    let modal = script.and_then(|_| {
        modal_admission(graph, plan).unwrap_or_else(|e| {
            panic!("scripted self-timed execution requires a modal-admissible graph: {e}")
        })
    });
    // A malformed script is a caller error surfaced before anything runs,
    // never a silently clamped arm.
    if let (Some(script), Some(info)) = (script, modal.as_ref()) {
        script
            .validate_arms(info.members.len())
            .unwrap_or_else(|e| panic!("invalid mode script: {e}"));
    }
    // Natural per-source sample budgets: the same horizon the calendar and
    // the simulator admit (ticks at `period, 2·period, …`, time ≤ duration).
    let natural_budgets: Vec<u64> = graph
        .sources
        .iter()
        .map(|s| {
            let period_ps = oil_sim::time::picos_nearest(s.period)
                .unwrap_or_else(|e| panic!("period of `{}`: {e}", s.name));
            duration.checked_div(period_ps).unwrap_or(0)
        })
        .collect();
    // A mode-dependent cluster resolves the script into a period plan up
    // front: token flow differs per mode, so the engine walks the same
    // verified mode sequence the static-order engine replays, and source
    // budgets are capped to the plan's totals (the final period always
    // runs to completion).
    let mode_plan = modal.as_ref().filter(|m| m.mode_dependent).map(|_| {
        let rates = mode_dependent_rates(graph, plan)
            .expect("modal admission succeeded above")
            .expect("a mode-dependent cluster has per-mode rates");
        let script = script.expect("a modal unit is only built when scripted");
        let seq = plan_mode_sequence(&rates, script, |id| natural_budgets[id.index()]);
        (rates, seq)
    });
    let started = Instant::now();
    let n_buffers = graph.buffers.len();

    // --- Buffers: declared capacities, rings, initial tokens, recorders.
    let declared: Arc<Vec<usize>> = Arc::new(
        graph
            .buffers
            .iter()
            .map(|b| b.capacity.max(b.initial_tokens).max(1))
            .collect(),
    );
    let unread: Arc<Vec<bool>> = Arc::new(plan.unread.iter().copied().collect());
    let mut producers: Vec<Option<Producer<f64>>> = Vec::with_capacity(n_buffers);
    let mut consumers: Vec<Option<Consumer<f64>>> = Vec::with_capacity(n_buffers);
    let mut recorders: Vec<Option<BufferValues>> = Vec::with_capacity(n_buffers);
    let mut setup_tokens: u64 = 0;
    for (i, b) in graph.buffers.iter().enumerate() {
        let mut recorder = BufferValues {
            name: b.name.clone(),
            ..Default::default()
        };
        if unread[i] {
            // No ring: commits are recorded and dropped.
            for _ in 0..b.initial_tokens {
                recorder.record(0.0);
                setup_tokens += 1;
            }
            producers.push(None);
            consumers.push(None);
        } else {
            let (mut tx, rx) = ring::spsc::<f64>(declared[i]);
            for _ in 0..b.initial_tokens {
                tx.push(0.0).expect("initial tokens fit the capacity");
                recorder.record(0.0);
                setup_tokens += 1;
            }
            producers.push(Some(tx));
            consumers.push(Some(rx));
        }
        recorders.push(Some(recorder));
    }

    // --- Scheduling units, in a stable order: node units (clusters appear
    // at their first member), then sources, then sinks.
    let mut units: Vec<Unit> = Vec::new();
    let mut emitted: Vec<bool> = vec![false; graph.nodes.len()];
    let make_part = |ni: RtNodeId| -> NodePart {
        let n = &graph.nodes[ni];
        NodePart {
            id: ni,
            kernel: lib.instantiate(&n.function),
            reads: n.reads.iter().map(|&(b, c)| (b.index(), c)).collect(),
            writes: n.writes.iter().map(|&(b, c)| (b.index(), c)).collect(),
            out_len: n.writes.iter().map(|&(_, c)| c).max().unwrap_or(0),
            batch: plan.batch[ni],
            fired: 0,
        }
    };
    for ni in graph.nodes.indices() {
        if emitted[ni.index()] {
            continue;
        }
        match plan.cluster_of[ni] {
            Some(cid) if modal.as_ref().is_some_and(|m| m.cluster == cid) => {
                let info = modal.as_ref().expect("guard matched");
                for &m in &info.members {
                    emitted[m.index()] = true;
                }
                let parts: Vec<NodePart> = info
                    .members
                    .iter()
                    .zip(&info.member_reads)
                    .zip(&info.member_writes)
                    .map(|((&m, mr), mw)| {
                        let mut part = NodePart {
                            reads: mr.iter().map(|&(b, c)| (b.index(), c)).collect(),
                            writes: Vec::new(),
                            ..make_part(m)
                        };
                        if info.mode_dependent {
                            // Each arm fires against its *own* write list;
                            // union-advance arms broadcast to the shared
                            // unit-level list instead.
                            part.writes = mw.iter().map(|&(b, c)| (b.index(), c)).collect();
                            part.out_len = part.writes.iter().map(|&(_, c)| c).max().unwrap_or(0);
                        }
                        part
                    })
                    .collect();
                // Unit-level writes: the shared list under union-advance;
                // the union over arms for a mode-dependent cluster (only
                // used to claim producer endpoints and wire components —
                // firing uses the active arm's own list).
                let writes: Vec<(usize, usize)> = if info.mode_dependent {
                    let mut union: BTreeMap<usize, usize> = BTreeMap::new();
                    for mw in &info.member_writes {
                        for &(b, c) in mw {
                            let e = union.entry(b.index()).or_insert(0);
                            *e = (*e).max(c);
                        }
                    }
                    union.into_iter().collect()
                } else {
                    info.writes.iter().map(|&(b, c)| (b.index(), c)).collect()
                };
                let out_len = writes.iter().map(|&(_, c)| c).max().unwrap_or(0);
                let batch = parts.iter().map(|p| p.batch).max().unwrap_or(1);
                units.push(Unit::Modal {
                    members: parts,
                    writes,
                    out_len,
                    batch,
                    script: script.cloned().unwrap_or_default(),
                    fired: 0,
                    switches: 0,
                    last_arm: u32::MAX,
                    dep: mode_plan.as_ref().map(|(rates, seq)| ModalDep {
                        period_reps: rates.modal.clone(),
                        mode_seq: seq.mode_seq.clone(),
                        seq_idx: 0,
                        period_left: seq.mode_seq.first().map_or(0, |&m| rates.modal[m as usize]),
                        transition_firings: 0,
                    }),
                });
            }
            Some(cid) => {
                let members = &plan.clusters[cid as usize];
                for &m in members {
                    emitted[m.index()] = true;
                }
                units.push(Unit::Nodes(members.iter().map(|&m| make_part(m)).collect()));
            }
            None => {
                emitted[ni.index()] = true;
                units.push(Unit::Nodes(vec![make_part(ni)]));
            }
        }
    }
    let mut open_sources = 0usize;
    for (i, s) in graph.sources.iter_enumerated() {
        // The natural horizon budget — capped to the resolved mode plan's
        // total when the cluster is mode-dependent (a gated source may
        // produce less; the completed final period may produce slightly
        // more).
        let budget = mode_plan
            .as_ref()
            .map(|(_, seq)| seq.produced[i.index()])
            .unwrap_or(natural_budgets[i.index()]);
        if budget > 0 {
            open_sources += 1;
        }
        units.push(Unit::Source {
            id: i,
            kernel: lib.instantiate_source(&s.function),
            outputs: s.outputs.iter().map(|b| b.index()).collect(),
            budget,
            generated: 0,
            batch: plan.source_batch[i],
        });
    }
    for (i, s) in graph.sinks.iter_enumerated() {
        units.push(Unit::Sink {
            id: i,
            input: s.input.index(),
            batch: plan.sink_batch[i],
            consumed: 0,
            values: Vec::new(),
            meter: ThroughputMeter::new(config.warmup_samples),
            monitor: None, // registered below, once the hub knows `threads`
        });
    }

    // --- Partition units over workers. Whole weakly-connected components
    // go to the least-loaded worker when there are enough of them
    // (independent subgraphs never contend); otherwise units round-robin so
    // one long pipeline still spreads across the pool — except components
    // containing a non-uniform serial cluster, which are pinned whole to
    // one worker (see `partition_units`).
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        config.threads
    }
    .min(units.len())
    .max(1);
    // The metrics hub needs the final worker count; register each sink's
    // drift monitor now that it exists.
    let hub: Option<Arc<MetricsHub>> = config
        .metrics
        .map(|m| MetricsHub::new("selftimed", threads, m));
    if let Some(h) = hub.as_ref() {
        for unit in units.iter_mut() {
            if let Unit::Sink { id, monitor, .. } = unit {
                let s = &graph.sinks[*id];
                *monitor = Some(h.sink_monitor(s.name.clone(), s.period.recip().to_f64()));
            }
        }
    }
    let assignment = partition_units(graph, plan, &units, threads);

    // --- Distribute endpoints and recorders to the owning workers.
    let mut worker_units: Vec<Vec<Unit>> = (0..threads).map(|_| Vec::new()).collect();
    let mut worker_bufs: Vec<WorkerBufs> = (0..threads)
        .map(|w| WorkerBufs {
            prods: (0..n_buffers).map(|_| None).collect(),
            cons: (0..n_buffers).map(|_| None).collect(),
            recorders: (0..n_buffers).map(|_| None).collect(),
            declared: Arc::clone(&declared),
            unread: Arc::clone(&unread),
            record_values: config.record_values,
            tokens: 0,
            scratch: Vec::new(),
            // All tracers share one epoch so the merged tracks align.
            trace: config.trace.then(|| WorkerTracer::new(started, n_buffers)),
            metrics: hub.as_ref().map(|h| (Arc::clone(h), w)),
        })
        .collect();
    // Per worker, the display label of each local unit (trace attribution),
    // and which worker owns each buffer endpoint (a buffer whose endpoints
    // land on different workers is a synchronised SPSC crossing).
    let mut worker_labels: Vec<Vec<String>> = (0..threads).map(|_| Vec::new()).collect();
    let mut prod_owner: Vec<Option<usize>> = vec![None; n_buffers];
    let mut cons_owner: Vec<Option<usize>> = vec![None; n_buffers];
    for (unit, &w) in units.into_iter().zip(&assignment) {
        if config.trace {
            worker_labels[w].push(unit_label(&unit, graph));
        }
        let (reads, writes): (Vec<usize>, Vec<usize>) = match &unit {
            Unit::Nodes(parts) => (
                parts
                    .iter()
                    .flat_map(|p| p.reads.iter().map(|&(b, _)| b))
                    .collect(),
                parts
                    .iter()
                    .flat_map(|p| p.writes.iter().map(|&(b, _)| b))
                    .collect(),
            ),
            Unit::Source { outputs, .. } => (Vec::new(), outputs.clone()),
            Unit::Sink { input, .. } => (vec![*input], Vec::new()),
            Unit::Modal {
                members, writes, ..
            } => (
                members
                    .iter()
                    .flat_map(|p| p.reads.iter().map(|&(b, _)| b))
                    .collect(),
                writes.iter().map(|&(b, _)| b).collect(),
            ),
        };
        for b in reads {
            if let Some(rx) = consumers[b].take() {
                worker_bufs[w].cons[b] = Some(rx);
                cons_owner[b] = Some(w);
            }
        }
        for b in writes {
            if let Some(tx) = producers[b].take() {
                worker_bufs[w].prods[b] = Some(tx);
                prod_owner[b] = Some(w);
            }
            if let Some(r) = recorders[b].take() {
                worker_bufs[w].recorders[b] = Some(r);
            }
        }
        worker_units[w].push(unit);
    }

    // --- Run.
    let control = Arc::new(Control {
        gen: AtomicU64::new(0),
        idle: AtomicUsize::new(0),
        idle_stamps: (0..threads).map(|_| AtomicU64::new(u64::MAX)).collect(),
        done: AtomicBool::new(false),
        deadlocked: AtomicBool::new(false),
        sources_open: AtomicUsize::new(open_sources),
        parks: AtomicU64::new(0),
        threads,
        m: Mutex::new(()),
        cv: Condvar::new(),
    });
    let mut handles = Vec::with_capacity(threads);
    for (w, (units, bufs)) in worker_units.into_iter().zip(worker_bufs).enumerate() {
        let control = Arc::clone(&control);
        let chaos = config.chaos.map(|seed| {
            seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03
        });
        handles.push(
            std::thread::Builder::new()
                .name(format!("oil-rt-selftimed-{w}"))
                .spawn(move || worker_loop(w, units, bufs, &control, chaos))
                .expect("spawning a self-timed worker thread"),
        );
    }
    let outs: Vec<WorkerOut> = handles
        .into_iter()
        .map(|h| h.join().expect("self-timed worker panicked"))
        .collect();

    // --- Assemble the report.
    let mut tokens = setup_tokens;
    let mut node_firings: Vec<(String, u64)> =
        graph.nodes.iter().map(|n| (n.name.clone(), 0u64)).collect();
    let mut source_samples: Vec<(String, u64)> = graph
        .sources
        .iter()
        .map(|s| (s.name.clone(), 0u64))
        .collect();
    let mut sinks: Vec<Option<SinkStream>> = (0..graph.sinks.len()).map(|_| None).collect();
    let mut throughput: Vec<Option<SinkThroughput>> =
        (0..graph.sinks.len()).map(|_| None).collect();
    let mut mode_switches = 0u64;
    let mut transition_firings = 0u64;
    let mut trace_report = config.trace.then(|| TraceReport::new("selftimed", threads));
    let mut ring_hw: Vec<u32> = vec![0; n_buffers];
    for (w, out) in outs.into_iter().enumerate() {
        if let (Some(tr), Some(t)) = (trace_report.as_mut(), out.trace) {
            let hw = tr.push_track(
                format!("worker-{w}"),
                std::mem::take(&mut worker_labels[w]),
                t,
            );
            for (b, h) in hw.into_iter().enumerate() {
                ring_hw[b] = ring_hw[b].max(h);
            }
        }
        tokens += out.tokens;
        for (b, r) in out.recorders.into_iter().enumerate() {
            if let Some(r) = r {
                recorders[b] = Some(r);
            }
        }
        for unit in out.units {
            match unit {
                Unit::Nodes(parts) => {
                    for p in parts {
                        node_firings[p.id.index()].1 = p.fired;
                    }
                }
                Unit::Source { id, generated, .. } => {
                    source_samples[id.index()].1 = generated;
                }
                Unit::Sink {
                    id,
                    consumed,
                    values,
                    meter,
                    monitor,
                    ..
                } => {
                    // Flush the drift detector's partial tail window before
                    // the snapshot below.
                    if let Some(m) = monitor {
                        m.finish();
                    }
                    let s = &graph.sinks[id];
                    sinks[id.index()] = Some(SinkStream {
                        name: s.name.clone(),
                        consumed,
                        misses: 0,
                        max_latency: 0.0,
                        values,
                    });
                    throughput[id.index()] = Some(SinkThroughput {
                        name: s.name.clone(),
                        samples: consumed,
                        predicted_hz: s.period.recip().to_f64(),
                        measured_hz: meter.steady_rate_hz(),
                    });
                }
                Unit::Modal {
                    members,
                    switches,
                    dep,
                    ..
                } => {
                    for p in members {
                        node_firings[p.id.index()].1 = p.fired;
                    }
                    mode_switches += switches;
                    transition_firings += dep.map_or(0, |d| d.transition_firings);
                }
            }
        }
    }
    if let Some(tr) = trace_report.as_mut() {
        tr.rings = graph
            .buffers
            .iter()
            .enumerate()
            .map(|(i, b)| RingStat {
                name: b.name.clone(),
                capacity: declared[i],
                // Initial tokens occupy the ring before any traced push.
                highwater: (ring_hw[i] as usize).max(b.initial_tokens),
                crossing: match (prod_owner[i], cons_owner[i]) {
                    (Some(p), Some(c)) => p != c,
                    _ => false,
                },
            })
            .collect();
    }
    SelfTimedReport {
        threads,
        values: ValueTrace {
            buffers: if config.record_values {
                recorders
                    .into_iter()
                    .map(|r| r.unwrap_or_default())
                    .collect()
            } else {
                Vec::new()
            },
        },
        sinks: sinks
            .into_iter()
            .map(|s| s.expect("every sink ran"))
            .collect(),
        throughput: throughput
            .into_iter()
            .map(|t| t.expect("every sink measured"))
            .collect(),
        node_firings,
        sources: source_samples,
        deadlocked: control.deadlocked.load(Ordering::SeqCst),
        tokens,
        wall: started.elapsed(),
        parks: control.parks.load(Ordering::SeqCst),
        clusters: plan.clusters.len(),
        mode_switches,
        transition_firings,
        trace_report,
        metrics: hub.as_ref().map(|h| h.snapshot()),
    }
}

/// The display label of a scheduling unit (trace attribution).
fn unit_label(unit: &Unit, graph: &RtGraph) -> String {
    match unit {
        Unit::Nodes(parts) if parts.len() == 1 => graph.nodes[parts[0].id].name.clone(),
        Unit::Nodes(parts) => format!("{}(+{})", graph.nodes[parts[0].id].name, parts.len() - 1),
        Unit::Source { id, .. } => graph.sources[*id].name.clone(),
        Unit::Sink { id, .. } => graph.sinks[*id].name.clone(),
        Unit::Modal { members, .. } => {
            let names: Vec<&str> = members
                .iter()
                .map(|p| graph.nodes[p.id].name.as_str())
                .collect();
            format!("modal[{}]", names.join("|"))
        }
    }
}

/// Assign each unit (by position) to a worker.
///
/// A component containing a **non-uniform** serial cluster (members gated
/// on disjoint inputs, [`RtPlan::cluster_uniform`]) is never split: with
/// every unit that can move the cluster's input levels on one thread, the
/// contested merge resolves by that worker's fixed scan order — a
/// deterministic, thread-count- and timing-independent sequence (and the
/// same one a single-threaded run produces, since units keep their relative
/// order and no other worker touches the component's buffers).
fn partition_units(graph: &RtGraph, plan: &RtPlan, units: &[Unit], threads: usize) -> Vec<usize> {
    if threads == 1 {
        return vec![0; units.len()];
    }
    // Weakly-connected components over the buffers the units touch.
    let n_buffers = graph.buffers.len();
    let mut uf = UnionFind::new(units.len() + n_buffers);
    for (u, unit) in units.iter().enumerate() {
        let touched: Vec<usize> = match unit {
            Unit::Nodes(parts) => parts
                .iter()
                .flat_map(|p| {
                    p.reads
                        .iter()
                        .map(|&(b, _)| b)
                        .chain(p.writes.iter().map(|&(b, _)| b))
                })
                .collect(),
            Unit::Source { outputs, .. } => outputs.clone(),
            Unit::Sink { input, .. } => vec![*input],
            Unit::Modal {
                members, writes, ..
            } => members
                .iter()
                .flat_map(|p| p.reads.iter().map(|&(b, _)| b))
                .chain(writes.iter().map(|&(b, _)| b))
                .collect(),
        };
        for b in touched {
            uf.union(u, units.len() + b);
        }
    }
    // Components that must stay whole: any member hosting a non-uniform
    // cluster node.
    let mut pinned_roots: std::collections::BTreeSet<usize> = Default::default();
    for (u, unit) in units.iter().enumerate() {
        if let Unit::Nodes(parts) = unit {
            if parts
                .iter()
                .any(|p| plan.cluster_of[p.id].is_some_and(|c| !plan.cluster_uniform[c as usize]))
            {
                pinned_roots.insert(uf.find(u));
            }
        }
    }
    let mut component_members: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for u in 0..units.len() {
        component_members.entry(uf.find(u)).or_default().push(u);
    }
    let mut assignment = vec![0usize; units.len()];
    let mut load = vec![0usize; threads];
    if component_members.len() >= threads {
        // Independent subgraphs: keep each on one worker (zero cross-worker
        // traffic), largest first onto the least-loaded worker.
        let mut components: Vec<Vec<usize>> = component_members.into_values().collect();
        components.sort_by_key(|c| std::cmp::Reverse(c.len()));
        for c in components {
            let w = (0..threads).min_by_key(|&w| load[w]).unwrap_or(0);
            for u in c {
                assignment[u] = w;
                load[w] += 1;
            }
        }
    } else {
        // Fewer components than workers: spread units round-robin so one
        // long pipeline still uses the whole pool — except pinned
        // components, which go whole onto the least-loaded worker.
        let mut pinned_to: std::collections::BTreeMap<usize, usize> = Default::default();
        let mut rr = 0usize;
        for (u, a) in assignment.iter_mut().enumerate() {
            let root = uf.find(u);
            if pinned_roots.contains(&root) {
                let w = *pinned_to
                    .entry(root)
                    .or_insert_with(|| (0..threads).min_by_key(|&w| load[w]).unwrap_or(0));
                *a = w;
            } else {
                *a = rr % threads;
                rr += 1;
            }
            load[*a] += 1;
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, RtConfig};
    use oil_compiler::{compile, rtgraph, CompilerOptions};
    use oil_lang::registry::{FunctionRegistry, FunctionSignature};
    use oil_sim::picos;

    fn registry() -> FunctionRegistry {
        let mut r = FunctionRegistry::new();
        for f in ["f", "g", "init", "src", "snk"] {
            r.register(FunctionSignature::pure(f, 1e-5));
        }
        r
    }

    const PIPELINE: &str = r#"
        mod seq P(int a, out int m){ loop{ f(a, out m); } while(1); }
        mod seq Q(int m, out int b){ loop{ g(m:2, out b); } while(1); }
        mod par D(){
            fifo int mid;
            source int x = src() @ 2 kHz;
            sink int y = snk() @ 1 kHz;
            P(x, out mid) || Q(mid, out y)
        }
    "#;

    #[test]
    fn calendar_value_streams_are_a_prefix_of_the_free_run() {
        let compiled = compile(PIPELINE, &registry(), &CompilerOptions::default()).unwrap();
        let graph = rtgraph::lower(&compiled);
        let plan = rtgraph::plan(&graph);
        assert!(plan.is_kpn_safe());
        let reference = execute(
            &graph,
            &KernelLibrary::new(),
            picos(0.25),
            &RtConfig {
                threads: 1,
                ..RtConfig::default()
            },
        );
        for threads in [1, 2, 4] {
            let report = execute_selftimed(
                &graph,
                &plan,
                &KernelLibrary::new(),
                picos(0.25),
                &SelfTimedConfig {
                    threads,
                    ..SelfTimedConfig::default()
                },
            );
            assert!(!report.deadlocked, "threads={threads}");
            assert_eq!(
                reference.values.prefix_divergence(&report.values),
                None,
                "threads={threads}"
            );
            let calendar_sink = &reference.sinks[0];
            let free_sink = &report.sinks[0];
            assert!(free_sink.consumed >= calendar_sink.consumed);
            let shared = calendar_sink.values.len().min(free_sink.values.len());
            assert_eq!(
                calendar_sink.values[..shared],
                free_sink.values[..shared],
                "threads={threads}"
            );
        }
    }

    #[test]
    fn free_run_is_thread_count_invariant() {
        let compiled = compile(PIPELINE, &registry(), &CompilerOptions::default()).unwrap();
        let graph = rtgraph::lower(&compiled);
        let plan = rtgraph::plan(&graph);
        let base = execute_selftimed(
            &graph,
            &plan,
            &KernelLibrary::new(),
            picos(0.1),
            &SelfTimedConfig {
                threads: 1,
                ..SelfTimedConfig::default()
            },
        );
        for threads in [2, 3, 8] {
            let other = execute_selftimed(
                &graph,
                &plan,
                &KernelLibrary::new(),
                picos(0.1),
                &SelfTimedConfig {
                    threads,
                    ..SelfTimedConfig::default()
                },
            );
            assert_eq!(base.values.first_divergence(&other.values), None);
            assert_eq!(base.node_firings, other.node_firings);
            let pairs = base.sinks.iter().zip(&other.sinks);
            for (a, b) in pairs {
                assert_eq!(a.consumed, b.consumed);
                assert_eq!(a.values, b.values);
            }
        }
    }

    #[test]
    fn a_starved_cycle_is_reported_as_deadlock_not_a_hang() {
        // Two mutually dependent nodes with no initial tokens: nothing can
        // ever fire. The engine must return with `deadlocked` set instead
        // of spinning or parking forever.
        use oil_compiler::rtgraph::{RtBuffer, RtNode, RtSource};
        use oil_dataflow::Rational;
        let mut graph = RtGraph::default();
        let a = graph.buffers.push(RtBuffer {
            name: "a".into(),
            capacity: 2,
            initial_tokens: 0,
        });
        let b = graph.buffers.push(RtBuffer {
            name: "b".into(),
            capacity: 2,
            initial_tokens: 0,
        });
        let feed = graph.buffers.push(RtBuffer {
            name: "feed".into(),
            capacity: 2,
            initial_tokens: 0,
        });
        graph.nodes.push(RtNode {
            name: "n0".into(),
            function: "f".into(),
            response: Rational::new(1, 1_000_000),
            reads: vec![(feed, 1), (b, 1)],
            writes: vec![(a, 1)],
        });
        graph.nodes.push(RtNode {
            name: "n1".into(),
            function: "g".into(),
            response: Rational::new(1, 1_000_000),
            reads: vec![(a, 1)],
            writes: vec![(b, 1)],
        });
        graph.sources.push(RtSource {
            name: "src_s_feed".into(),
            function: "s".into(),
            outputs: vec![feed],
            period: Rational::new(1, 1000),
        });
        let plan = rtgraph::plan(&graph);
        let report = execute_selftimed(
            &graph,
            &plan,
            &KernelLibrary::new(),
            picos(0.01),
            &SelfTimedConfig {
                threads: 2,
                ..SelfTimedConfig::default()
            },
        );
        assert!(report.deadlocked, "{:?}", report.node_firings);
    }

    #[test]
    fn quiescence_census_never_drops_trailing_work() {
        // Regression for a census race: a worker whose park stamp was
        // outdated by a peer's firing (and which may therefore have
        // fireable work it has not rescanned) must not be counted towards
        // `idle == threads`, or the engine completes with trailing tokens
        // undrained / falsely reports deadlock. Many short multi-threaded
        // runs maximise park/wake churn around the drain; every run must
        // quiesce cleanly with the same sink count.
        let compiled = compile(PIPELINE, &registry(), &CompilerOptions::default()).unwrap();
        let graph = rtgraph::lower(&compiled);
        let plan = rtgraph::plan(&graph);
        let run = |threads: usize| {
            execute_selftimed(
                &graph,
                &plan,
                &KernelLibrary::new(),
                picos(0.02),
                &SelfTimedConfig {
                    threads,
                    ..SelfTimedConfig::default()
                },
            )
        };
        let expected = run(1);
        assert!(!expected.deadlocked);
        for rep in 0..50 {
            for threads in [2, 3] {
                let report = run(threads);
                assert!(!report.deadlocked, "rep {rep}, threads={threads}");
                assert_eq!(
                    report.sinks[0].consumed, expected.sinks[0].consumed,
                    "rep {rep}, threads={threads}: trailing sink samples were dropped"
                );
                assert_eq!(
                    report.node_firings, expected.node_firings,
                    "rep {rep}, threads={threads}"
                );
            }
        }
    }

    #[test]
    fn non_uniform_clusters_stay_deterministic_via_component_pinning() {
        // Two producers of `t` gated on *disjoint* inputs fed by separate
        // sources: which twin is ready depends on token arrival, so the
        // per-burst level snapshot alone cannot fix the merge order. The
        // plan marks the cluster non-uniform and the engine pins the whole
        // component onto one worker; the streams must stay bit-identical
        // across thread counts and under perturbation.
        let graph = rtgraph::non_uniform_merge_demo();
        let plan = rtgraph::plan(&graph);
        assert_eq!(plan.cluster_uniform, vec![false], "the scenario under test");
        let run = |threads: usize, chaos: Option<u64>| {
            execute_selftimed(
                &graph,
                &plan,
                &KernelLibrary::new(),
                picos(0.05),
                &SelfTimedConfig {
                    threads,
                    chaos,
                    ..SelfTimedConfig::default()
                },
            )
        };
        let base = run(1, None);
        assert!(!base.deadlocked);
        assert!(base.sinks[0].consumed > 0);
        for threads in [2, 4] {
            for chaos in [None, Some(0x0BAD_C0DE)] {
                let other = run(threads, chaos);
                assert!(!other.deadlocked, "threads={threads}, chaos={chaos:?}");
                assert_eq!(
                    base.values.first_divergence(&other.values),
                    None,
                    "threads={threads}, chaos={chaos:?}"
                );
                assert_eq!(
                    base.node_firings, other.node_firings,
                    "threads={threads}, chaos={chaos:?}"
                );
                assert_eq!(base.sinks[0].values, other.sinks[0].values);
            }
        }
    }

    #[test]
    fn duplicate_ports_on_one_buffer_gate_on_the_sum() {
        // A node touching one buffer through two ports (`f(a, a)`) consumes
        // the sum per firing; gating each port's count individually would
        // admit a firing with one token in the ring and panic mid-pop.
        use oil_compiler::rtgraph::{RtBuffer, RtNode, RtSink, RtSource};
        use oil_dataflow::Rational;
        let mut graph = RtGraph::default();
        let mk = |name: &str| RtBuffer {
            name: name.into(),
            capacity: 4,
            initial_tokens: 0,
        };
        let a = graph.buffers.push(mk("a"));
        let o = graph.buffers.push(mk("o"));
        graph.nodes.push(RtNode {
            name: "n0".into(),
            function: "f".into(),
            response: Rational::new(1, 1_000_000),
            reads: vec![(a, 1), (a, 1)],
            writes: vec![(o, 1)],
        });
        graph.sources.push(RtSource {
            name: "sa".into(),
            function: "s".into(),
            outputs: vec![a],
            period: Rational::new(1, 1000),
        });
        graph.sinks.push(RtSink {
            name: "sk".into(),
            function: "k".into(),
            input: o,
            period: Rational::new(1, 1000),
        });
        let plan = rtgraph::plan(&graph);
        let report = execute_selftimed(
            &graph,
            &plan,
            &KernelLibrary::new(),
            picos(0.01), // 10 source samples -> 5 double-consuming firings
            &SelfTimedConfig {
                threads: 2,
                ..SelfTimedConfig::default()
            },
        );
        assert!(!report.deadlocked);
        assert_eq!(report.node_firings[0].1, 5);
        assert_eq!(report.sinks[0].consumed, 5);
    }

    #[test]
    fn perturbation_does_not_change_the_streams() {
        let compiled = compile(PIPELINE, &registry(), &CompilerOptions::default()).unwrap();
        let graph = rtgraph::lower(&compiled);
        let plan = rtgraph::plan(&graph);
        let calm = execute_selftimed(
            &graph,
            &plan,
            &KernelLibrary::new(),
            picos(0.05),
            &SelfTimedConfig {
                threads: 4,
                ..SelfTimedConfig::default()
            },
        );
        let stormy = execute_selftimed(
            &graph,
            &plan,
            &KernelLibrary::new(),
            picos(0.05),
            &SelfTimedConfig {
                threads: 4,
                chaos: Some(0xC0FFEE),
                ..SelfTimedConfig::default()
            },
        );
        assert_eq!(calm.values.first_divergence(&stormy.values), None);
        assert_eq!(calm.node_firings, stormy.node_firings);
    }
}
