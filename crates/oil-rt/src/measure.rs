//! Throughput accounting and value-stream traces.
//!
//! Two measurement planes back the self-timed engine's verification story:
//!
//! * [`ValueTrace`] — the per-buffer *value* streams (every `f64` ever
//!   pushed, bit-exact). For Kahn-process-network graphs these streams are
//!   schedule-invariant, so the deterministic calendar engine's trace must
//!   be a **prefix** of any free-running execution's trace — the value-plane
//!   analogue of `oil_sim::trace::ExecutionTrace`'s origin-timestamp
//!   equality, checked by `tests/selftimed_differential.rs`.
//! * [`ThroughputMeter`] / [`RateConformance`] — wall-clock sink throughput
//!   against the CTA-predicted rate. The paper guarantees an accepted
//!   program *can* sustain its declared sink rates; a free-running engine
//!   turns that into an empirical property: steady-state samples/second on
//!   real hardware must reach a configurable fraction of the predicted
//!   rate.

use oil_sim::trace::Fnv1a;
use std::time::{Duration, Instant};

/// Upper bound on recorded values per buffer (counters keep counting).
pub const VALUE_TRACE_CAP: usize = 1 << 16;

/// The value stream of one buffer: the bit patterns of every pushed `f64`,
/// in push order (initial tokens first), capped at [`VALUE_TRACE_CAP`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BufferValues {
    /// Buffer name (same naming as the origin-timestamp trace).
    pub name: String,
    /// Bit patterns (`f64::to_bits`) of pushed values, in push order.
    pub bits: Vec<u64>,
    /// True count of pushes (may exceed `bits.len()`).
    pub total: u64,
}

impl BufferValues {
    /// Record one pushed value.
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        if self.bits.len() < VALUE_TRACE_CAP {
            self.bits.push(value.to_bits());
        }
    }

    /// Check that `self` (a shorter, reference stream) is a bit-exact
    /// prefix of `other` (the same buffer in a longer execution). Only the
    /// *recorded* prefixes are compared: beyond [`VALUE_TRACE_CAP`] values
    /// a stream is pinned by its running total alone.
    pub fn prefix_divergence(&self, other: &BufferValues) -> Option<String> {
        if other.total < self.total {
            return Some(format!(
                "buffer `{}` carried fewer values: {} vs the reference's {}",
                self.name, other.total, self.total
            ));
        }
        let compare = self.bits.len().min(other.bits.len());
        if self.bits[..compare] != other.bits[..compare] {
            let at = (0..compare)
                .find(|&i| self.bits[i] != other.bits[i])
                .unwrap();
            return Some(format!(
                "buffer `{}` diverges at value #{at}: {:?} vs {:?}",
                self.name,
                f64::from_bits(self.bits[at]),
                f64::from_bits(other.bits[at]),
            ));
        }
        None
    }
}

/// Per-buffer value streams of one execution, in buffer-id order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValueTrace {
    /// One entry per buffer.
    pub buffers: Vec<BufferValues>,
}

impl ValueTrace {
    /// A stable FNV-1a digest over names and recorded bit patterns.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        for b in &self.buffers {
            h.write_str(&b.name);
            h.write_u64(b.total);
            h.write_u64(b.bits.len() as u64);
            for &v in &b.bits {
                h.write_u64(v);
            }
        }
        h.finish()
    }

    /// Check that `self` (a shorter, reference execution) is a bit-exact
    /// prefix of `other` (a longer, free-running execution), buffer by
    /// buffer. Returns a human-readable description of the first violation.
    ///
    /// Only the *recorded* prefixes are compared: beyond
    /// [`VALUE_TRACE_CAP`] values, a buffer's stream is pinned by its
    /// running total alone.
    pub fn prefix_divergence(&self, other: &ValueTrace) -> Option<String> {
        if self.buffers.len() != other.buffers.len() {
            return Some(format!(
                "buffer count differs: {} vs {}",
                self.buffers.len(),
                other.buffers.len()
            ));
        }
        for (a, b) in self.buffers.iter().zip(&other.buffers) {
            if a.name != b.name {
                return Some(format!("buffer name differs: `{}` vs `{}`", a.name, b.name));
            }
            if let Some(d) = a.prefix_divergence(b) {
                return Some(d);
            }
        }
        None
    }

    /// As [`Self::prefix_divergence`] with equal lengths required: the two
    /// executions must have produced bit-identical streams *and* counts.
    pub fn first_divergence(&self, other: &ValueTrace) -> Option<String> {
        if let Some(d) = self.prefix_divergence(other) {
            return Some(d);
        }
        for (a, b) in self.buffers.iter().zip(&other.buffers) {
            if a.total != b.total {
                return Some(format!(
                    "buffer `{}` push counts differ: {} vs {}",
                    a.name, a.total, b.total
                ));
            }
        }
        None
    }
}

/// Clock-read stride of a [`ThroughputMeter`]: one `Instant::now()` per
/// this many recorded samples, so metering a multi-MS/s sink does not bake
/// its own measurement overhead into the measured rate.
pub const METER_STRIDE: u64 = 16;

/// Steady-state wall-clock throughput of one sink.
///
/// The first `warmup` samples are excluded — they measure pipeline fill,
/// not the sustained rate — and the rate is taken over the wall-clock span
/// between the warm-up boundary and the last clock-stamped sample (the
/// clock is read every [`METER_STRIDE`] samples, keeping the hot sink path
/// nearly free of timer calls).
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    warmup: u64,
    samples: u64,
    /// Sample index and time of the warm-up boundary.
    warm: Option<(u64, Instant)>,
    /// Sample index and time of the most recent clock stamp.
    last: Option<(u64, Instant)>,
}

impl ThroughputMeter {
    /// A meter excluding the first `warmup` samples from the steady-state
    /// window.
    pub fn new(warmup: u64) -> Self {
        ThroughputMeter {
            warmup,
            samples: 0,
            warm: None,
            last: None,
        }
    }

    /// Record one consumed sample.
    pub fn record(&mut self) {
        self.samples += 1;
        if self.samples <= self.warmup {
            return;
        }
        match self.warm {
            None => self.warm = Some((self.samples, Instant::now())),
            Some((warm_idx, _)) => {
                if (self.samples - warm_idx).is_multiple_of(METER_STRIDE) {
                    self.last = Some((self.samples, Instant::now()));
                }
            }
        }
    }

    /// Record `n` consumed samples delivered as one block (a fused sink
    /// stage). Equivalent to `n` [`Self::record`] calls for the sample
    /// count and warm-up accounting, but takes at most one clock stamp —
    /// block consumption is only observable at block granularity anyway.
    pub fn record_block(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        self.samples += n;
        if self.samples <= self.warmup {
            return;
        }
        match self.warm {
            None => self.warm = Some((self.samples, Instant::now())),
            Some((warm_idx, _)) => {
                if self.samples - warm_idx >= METER_STRIDE {
                    self.last = Some((self.samples, Instant::now()));
                }
            }
        }
    }

    /// Samples recorded so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Steady-state samples per wall-clock second, or `None` when the run
    /// produced fewer than [`METER_STRIDE`] post-warm-up samples (no
    /// measurable span).
    pub fn steady_rate_hz(&self) -> Option<f64> {
        let ((warm_idx, warm_at), (last_idx, last_at)) = (self.warm?, self.last?);
        let span = last_at.duration_since(warm_at);
        if span.is_zero() || last_idx <= warm_idx {
            return None;
        }
        Some((last_idx - warm_idx) as f64 / span.as_secs_f64())
    }

    /// The wall-clock span of the steady-state window.
    pub fn steady_span(&self) -> Option<Duration> {
        Some(self.last?.1.duration_since(self.warm?.1))
    }
}

/// One sink's measured throughput against its CTA-predicted rate.
#[derive(Debug, Clone)]
pub struct SinkThroughput {
    /// Sink name.
    pub name: String,
    /// Samples consumed.
    pub samples: u64,
    /// The CTA-predicted (declared and analysis-validated) rate in Hz.
    pub predicted_hz: f64,
    /// Measured steady-state samples per wall second (`None` when the run
    /// was too short to measure).
    pub measured_hz: Option<f64>,
}

impl SinkThroughput {
    /// `measured / predicted`, or `None` when unmeasurable.
    pub fn conformance_ratio(&self) -> Option<f64> {
        Some(self.measured_hz? / self.predicted_hz)
    }
}

/// The rate-conformance verdict of one execution: every sink's measured
/// steady-state throughput must reach `threshold × predicted`.
#[derive(Debug, Clone)]
pub struct RateConformance {
    /// Required fraction of the predicted rate.
    pub threshold: f64,
    /// Per-sink measurements.
    pub sinks: Vec<SinkThroughput>,
}

/// The three-way outcome of a rate-conformance check. `satisfied()` alone
/// is a trap: a run whose warmup never completed has *no* measurable sink,
/// zero violations, and would silently pass. The verdict makes that state
/// explicit so callers must decide what an inconclusive measurement means
/// for them (retry with a longer horizon, usually).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConformanceVerdict {
    /// Every sink was measured and every sink reached the threshold.
    Pass,
    /// At least one measured sink fell short of the threshold.
    Fail,
    /// No violation, but at least one sink never produced a steady-state
    /// measurement (run too short / warmup never completed) — the check
    /// proved nothing about that sink.
    Inconclusive,
}

impl std::fmt::Display for ConformanceVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ConformanceVerdict::Pass => "pass",
            ConformanceVerdict::Fail => "fail",
            ConformanceVerdict::Inconclusive => "inconclusive",
        })
    }
}

impl RateConformance {
    /// True when every measurable sink reaches the threshold. Vacuously
    /// true when nothing was measurable — use [`Self::verdict`] to tell a
    /// real pass from an inconclusive run.
    pub fn satisfied(&self) -> bool {
        self.violations().is_empty()
    }

    /// The three-way outcome: [`ConformanceVerdict::Fail`] on any
    /// violation, else [`ConformanceVerdict::Inconclusive`] when any sink
    /// went unmeasured, else [`ConformanceVerdict::Pass`]. A graph with no
    /// sinks at all passes — there is nothing to conform.
    pub fn verdict(&self) -> ConformanceVerdict {
        if !self.violations().is_empty() {
            ConformanceVerdict::Fail
        } else if self.sinks.iter().any(|s| s.measured_hz.is_none()) {
            ConformanceVerdict::Inconclusive
        } else {
            ConformanceVerdict::Pass
        }
    }

    /// The sinks the run never measured, rendered for failure messages.
    pub fn inconclusive_sinks(&self) -> Vec<String> {
        self.sinks
            .iter()
            .filter(|s| s.measured_hz.is_none())
            .map(|s| {
                format!(
                    "sink `{}`: predicted {:.0} Hz, but the run was too short to \
                     measure a steady-state rate",
                    s.name, s.predicted_hz
                )
            })
            .collect()
    }

    /// The sinks that fell short, rendered for failure messages.
    pub fn violations(&self) -> Vec<String> {
        self.sinks
            .iter()
            .filter_map(|s| {
                let ratio = s.conformance_ratio()?;
                if ratio < self.threshold {
                    Some(format!(
                        "sink `{}`: measured {:.0} Hz is {:.3}× the predicted {:.0} Hz \
                         (threshold {:.3})",
                        s.name,
                        s.measured_hz.unwrap_or(0.0),
                        ratio,
                        s.predicted_hz,
                        self.threshold
                    ))
                } else {
                    None
                }
            })
            .collect()
    }
}

/// The default conformance threshold: the `OIL_RT_CONFORMANCE` environment
/// variable when set to a finite value > 0, else 0.5 in release builds and
/// a smoke value in debug builds (unoptimised kernels measure the build
/// profile, not the engine). Degenerate overrides (zero, negative, NaN,
/// infinite, unparseable) fall back to the built-in default — a NaN or
/// negative threshold would silently turn every `ratio < threshold` check
/// into a no-op.
pub fn conformance_threshold() -> f64 {
    if let Some(t) = std::env::var("OIL_RT_CONFORMANCE")
        .ok()
        .as_deref()
        .and_then(parse_conformance)
    {
        return t;
    }
    if cfg!(debug_assertions) {
        0.01
    } else {
        0.5
    }
}

/// Parse an `OIL_RT_CONFORMANCE` override; `None` unless finite and > 0.
fn parse_conformance(raw: &str) -> Option<f64> {
    let t = raw.trim().parse::<f64>().ok()?;
    (t.is_finite() && t > 0.0).then_some(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(streams: &[(&str, &[f64], u64)]) -> ValueTrace {
        ValueTrace {
            buffers: streams
                .iter()
                .map(|(name, values, extra)| {
                    let mut b = BufferValues {
                        name: name.to_string(),
                        ..Default::default()
                    };
                    for &v in *values {
                        b.record(v);
                    }
                    b.total += extra;
                    b
                })
                .collect(),
        }
    }

    #[test]
    fn prefix_accepts_longer_streams_and_rejects_divergence() {
        let reference = trace(&[("x", &[1.0, 2.0], 0)]);
        let longer = trace(&[("x", &[1.0, 2.0, 3.0], 0)]);
        assert_eq!(reference.prefix_divergence(&longer), None);
        assert!(longer.prefix_divergence(&reference).is_some(), "shorter");
        let diverged = trace(&[("x", &[1.0, 2.5, 3.0], 0)]);
        let d = reference.prefix_divergence(&diverged).unwrap();
        assert!(d.contains("value #1"), "{d}");
        // Full equality is stricter than prefix.
        assert_eq!(longer.first_divergence(&longer.clone()), None);
        assert!(reference.first_divergence(&longer).is_some());
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let a = trace(&[("x", &[1.0, 2.0], 0)]);
        assert_eq!(a.digest(), a.clone().digest());
        let b = trace(&[("x", &[1.0, 2.0 + 1e-12], 0)]);
        assert_ne!(a.digest(), b.digest(), "bit-level sensitivity");
    }

    #[test]
    fn meter_measures_a_paced_stream() {
        let mut m = ThroughputMeter::new(2);
        for _ in 0..20 {
            m.record();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(m.samples(), 20);
        // Warm boundary at sample 3, one stamp at sample 3 + METER_STRIDE.
        let hz = m.steady_rate_hz().expect("measurable");
        // 1 ms pacing → ~1 kHz; wide tolerance for scheduler noise.
        assert!((50.0..20_000.0).contains(&hz), "{hz}");
        // Too few post-warm-up samples for a single stride → unmeasurable.
        let mut short = ThroughputMeter::new(2);
        for _ in 0..(2 + METER_STRIDE) {
            short.record();
        }
        assert!(short.steady_rate_hz().is_none());
        assert!(short.steady_span().is_none());
    }

    #[test]
    fn conformance_override_rejects_degenerate_values() {
        assert_eq!(parse_conformance("0.25"), Some(0.25));
        assert_eq!(parse_conformance(" 1.5 "), Some(1.5));
        for bad in ["0", "-1", "NaN", "-NaN", "inf", "-inf", "abc", ""] {
            assert_eq!(parse_conformance(bad), None, "`{bad}` must be rejected");
        }
    }

    #[test]
    fn conformance_flags_slow_sinks_only() {
        let conf = RateConformance {
            threshold: 0.5,
            sinks: vec![
                SinkThroughput {
                    name: "fast".into(),
                    samples: 100,
                    predicted_hz: 1000.0,
                    measured_hz: Some(900.0),
                },
                SinkThroughput {
                    name: "slow".into(),
                    samples: 100,
                    predicted_hz: 1000.0,
                    measured_hz: Some(100.0),
                },
                SinkThroughput {
                    name: "unmeasured".into(),
                    samples: 1,
                    predicted_hz: 1000.0,
                    measured_hz: None,
                },
            ],
        };
        assert!(!conf.satisfied());
        let v = conf.violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("slow"), "{v:?}");
        assert_eq!(conf.verdict(), ConformanceVerdict::Fail);
        let inc = conf.inconclusive_sinks();
        assert_eq!(inc.len(), 1);
        assert!(inc[0].contains("unmeasured"), "{inc:?}");
    }

    #[test]
    fn unmeasured_sinks_are_inconclusive_not_a_pass() {
        // The silent no-op this guards against: warmup never completed, so
        // no sink has a measurement, `violations()` is empty, and
        // `satisfied()` is vacuously true — the verdict must say so.
        let sink = |name: &str, measured_hz: Option<f64>| SinkThroughput {
            name: name.into(),
            samples: 1,
            predicted_hz: 1000.0,
            measured_hz,
        };
        let unmeasured = RateConformance {
            threshold: 0.5,
            sinks: vec![sink("a", None), sink("b", None)],
        };
        assert!(unmeasured.satisfied(), "vacuous by construction");
        assert_eq!(unmeasured.verdict(), ConformanceVerdict::Inconclusive);
        assert_eq!(unmeasured.inconclusive_sinks().len(), 2);

        let measured = RateConformance {
            threshold: 0.5,
            sinks: vec![sink("a", Some(900.0))],
        };
        assert_eq!(measured.verdict(), ConformanceVerdict::Pass);
        assert!(measured.inconclusive_sinks().is_empty());

        // No sinks at all: nothing to conform, a genuine pass.
        let empty = RateConformance {
            threshold: 0.5,
            sinks: Vec::new(),
        };
        assert_eq!(empty.verdict(), ConformanceVerdict::Pass);
        assert_eq!(
            format!("{}", ConformanceVerdict::Inconclusive),
            "inconclusive"
        );
    }
}
