//! The compiled static-order execution engine.
//!
//! The third engine closes the loop on the paper's premise: because OIL's
//! restrictions make the multi-rate schedule *statically derivable*, the
//! expensive part of execution — deciding what fires next — happens in the
//! compiler ([`oil_compiler::schedule`]), not here. Each worker replays its
//! **periodic static-order firing list** in a loop:
//!
//! * **zero readiness scanning** — no admission checks, no level snapshots,
//!   no fireability scans: the schedule was admitted only after an exact
//!   integer replay proved that no read underflows and no buffer exceeds
//!   its CTA-sized capacity;
//! * **zero synchronisation on intra-worker edges** — a buffer whose
//!   producer and consumer live on the same worker is a plain unsynchronised
//!   deque (no atomics at all: the validated replay *is* the proof the
//!   accesses are safe), which is every buffer when the schedule has one
//!   worker;
//! * cross-worker edges are the only synchronisation: the same bounded
//!   SPSC rings as the other engines, with blocking `push_wait`/`pop_wait`
//!   — and the schedule pass minimises how many edges cross;
//! * **no quiescence protocol** — one schedule period returns every buffer
//!   to its starting level, so the engine computes up front how many
//!   iterations cover the sources' sample budgets, replays exactly that
//!   many, and stops. Termination is arithmetic, not detection.
//!
//! Modal `if`/`switch` clusters execute their **quasi-static** resolution:
//! a *uniform* cluster's schedule fires the cluster representative (the
//! lowest-id twin — the member both dynamic engines' deterministic
//! tie-breaks select at every decision), so value streams are bit-identical
//! to the self-timed engine's on every buffer. A *non-uniform* cluster
//! admitted as a modal unit carries **one schedule arm per member**: every
//! firing consumes the union of all members' inputs (union-advance — token
//! flow is mode-independent) and runs whichever member's kernel the
//! [`ModeScript`] selects for that firing, so the engine **switches modes
//! hot**, mid-stream, without draining the pipeline — the SDR "user changes
//! channels" scenario. `tests/staticsched_differential.rs` and
//! `tests/modeswitch_differential.rs` hold the engine to exactly that, plus
//! thread-count invariance and rate conformance.
//!
//! Compared to the self-timed engine the sources here run *past* their
//! budget to the end of the covering iteration (`⌈budget/q⌉` iterations per
//! component): the self-timed streams are therefore a bit-exact **prefix**
//! of this engine's streams, never the reverse.

use crate::exec::{SinkStream, SINK_STREAM_CAP};
use crate::kernel::{Kernel, KernelLibrary, SourceKernel};
use crate::measure::{BufferValues, RateConformance, SinkThroughput, ThroughputMeter, ValueTrace};
use crate::metrics::{MetricCell, MetricsConfig, MetricsHub, MetricsReport, SinkMonitor};
use crate::ring::{self, Consumer, Producer, WaitStats};
use crate::trace::{EventKind, RingStat, TraceReport, WorkerTracer};
use oil_compiler::rtgraph::RtGraph;
use oil_compiler::schedule::{
    modal_member_access, plan_mode_sequence, FusionStats, ModeScript, StaticSchedule, UnitKind,
    WorkItem,
};
use oil_dataflow::index::Idx;
use oil_sim::Picos;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a static-order execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticConfig {
    /// Record per-buffer value streams (the verification oracle); sink
    /// streams and counters are always kept.
    pub record_values: bool,
    /// Sink samples excluded from the steady-state throughput window.
    pub warmup_samples: u64,
    /// Record per-worker trace events and ring telemetry
    /// ([`crate::trace`]). Off costs a single predictable branch per
    /// instrumentation point; recording writes only worker-local memory,
    /// so value streams are bit-identical either way.
    pub trace: bool,
    /// Run with the always-on metrics registry ([`crate::metrics`]):
    /// per-worker counter/histogram cells, windowed sink throughput and
    /// the CTA drift detector. Same overhead discipline as `trace`: off is
    /// a single predictable branch per instrumentation point, and enabling
    /// it never changes value streams.
    pub metrics: Option<MetricsConfig>,
}

impl Default for StaticConfig {
    fn default() -> Self {
        StaticConfig {
            record_values: true,
            warmup_samples: 16,
            trace: false,
            metrics: None,
        }
    }
}

/// Everything one static-order execution observed.
#[derive(Debug)]
pub struct StaticReport {
    /// Worker threads used (the schedule's worker count).
    pub threads: usize,
    /// Per-buffer value streams (when [`StaticConfig::record_values`]).
    pub values: ValueTrace,
    /// Per sink: the output sample streams.
    pub sinks: Vec<SinkStream>,
    /// Per sink: measured steady-state throughput vs the CTA-predicted
    /// rate.
    pub throughput: Vec<SinkThroughput>,
    /// Per node: (name, completed firings), in node-id order. Non-
    /// representative cluster members report 0, exactly as under the
    /// dynamic engines' deterministic tie-break; modal arms report the
    /// firings the mode script actually dispatched to them.
    pub node_firings: Vec<(String, u64)>,
    /// Per source: (name, samples generated).
    pub sources: Vec<(String, u64)>,
    /// Total tokens pushed across all buffers (including dropped commits to
    /// unread buffers), the same currency as the other engines' reports.
    pub tokens: u64,
    /// Wall-clock execution time.
    pub wall: Duration,
    /// Schedule iterations executed (the maximum over components).
    pub iterations: u64,
    /// Buffers that crossed a worker boundary (the only synchronised ones).
    pub cross_buffers: usize,
    /// What the schedule's fusion pass did (zeroes when fusion was off).
    pub fusion: FusionStats,
    /// Mode switches the modal unit executed: for union-advance schedules,
    /// firings whose scripted arm differed from the previous firing's (hot
    /// switches); for mode-dependent schedules, period boundaries where the
    /// executed mode changed. 0 for non-modal schedules and constant
    /// scripts.
    pub mode_switches: u64,
    /// Firings spent crossing mode-switch seams: modal firings whose
    /// scripted arm differed from the period's executing mode (the drain —
    /// a switch requested mid-period takes effect at the next period
    /// boundary) plus every firing of an executed drain/fill transition
    /// program. Always 0 for union-advance schedules (hot switching needs
    /// no drain) and non-modal schedules.
    pub transition_firings: u64,
    /// Per-worker event tracks, ring telemetry and compile-phase timing
    /// (`Some` iff [`StaticConfig::trace`]).
    pub trace_report: Option<TraceReport>,
    /// Merged metric cells, per-sink windows and the drift verdict
    /// (`Some` iff [`StaticConfig::metrics`]).
    pub metrics: Option<MetricsReport>,
}

impl StaticReport {
    /// The collected sample stream of a sink (matched by name fragment).
    pub fn sink_values(&self, name: &str) -> Option<&[f64]> {
        self.sinks
            .iter()
            .find(|s| s.name.contains(name))
            .map(|s| s.values.as_slice())
    }

    /// The rate-conformance verdict at `threshold` (see
    /// [`crate::measure::conformance_threshold`] for the default).
    pub fn conformance(&self, threshold: f64) -> RateConformance {
        RateConformance {
            threshold,
            sinks: self.throughput.clone(),
        }
    }
}

/// An unsynchronised bounded ring for intra-worker buffers: absolute
/// head/tail counters over a power-of-two store, no atomics, no occupancy
/// checks — the schedule validation proves every pop finds a value and
/// every push finds room within the declared capacity.
struct LocalRing {
    buf: Box<[f64]>,
    mask: usize,
    head: usize,
    tail: usize,
}

impl LocalRing {
    fn with_capacity(capacity: usize) -> Self {
        let size = capacity.max(1).next_power_of_two();
        LocalRing {
            buf: vec![0.0; size].into_boxed_slice(),
            mask: size - 1,
            head: 0,
            tail: 0,
        }
    }

    #[inline]
    fn push(&mut self, v: f64) {
        debug_assert!(self.tail - self.head < self.buf.len(), "validated level");
        self.buf[self.tail & self.mask] = v;
        self.tail += 1;
    }

    #[inline]
    fn pop(&mut self) -> f64 {
        debug_assert!(self.head < self.tail, "validated occupancy");
        let v = self.buf[self.head & self.mask];
        self.head += 1;
        v
    }

    fn push_block(&mut self, values: &[f64]) {
        debug_assert!(self.tail - self.head + values.len() <= self.buf.len());
        let at = self.tail & self.mask;
        let first = values.len().min(self.buf.len() - at);
        self.buf[at..at + first].copy_from_slice(&values[..first]);
        self.buf[..values.len() - first].copy_from_slice(&values[first..]);
        self.tail += values.len();
    }

    /// Current occupancy (for trace high-water marks only).
    #[inline]
    fn len(&self) -> usize {
        self.tail - self.head
    }

    fn pop_block(&mut self, n: usize, into: &mut Vec<f64>) {
        debug_assert!(self.tail - self.head >= n, "validated occupancy");
        let at = self.head & self.mask;
        let first = n.min(self.buf.len() - at);
        into.extend_from_slice(&self.buf[at..at + first]);
        into.extend_from_slice(&self.buf[..n - first]);
        self.head += n;
    }
}

/// One buffer endpoint as a worker sees it.
enum Slot {
    /// Not touched by this worker.
    Absent,
    /// Both endpoints on this worker: an unchecked local ring.
    Local(LocalRing),
    /// This worker produces into a cross-worker ring.
    Prod(Producer<f64>),
    /// This worker consumes from a cross-worker ring.
    Cons(Consumer<f64>),
    /// An unread buffer this worker writes: commits are recorded and
    /// dropped.
    Sunk,
}

/// Cross-firing state of one scheduling unit on its worker.
enum UnitState {
    Node {
        /// Node-id of the executed (representative) member.
        node: usize,
        kernel: Kernel,
        /// `(buffer, count)` per read port, in port order.
        reads: Vec<(usize, usize)>,
        writes: Vec<(usize, usize)>,
        /// Inputs per firing (all read ports flattened).
        in_len: usize,
        out_len: usize,
        /// Blocked execution admissible: every touched buffer is local to
        /// this worker and no buffer is both read and written. A scheduled
        /// run of `k` consecutive firings then executes as one
        /// [`Kernel::fire_block`] call over block-popped inputs — the
        /// validated schedule proves the run's tokens exist up front, so
        /// gathering them before the pushes is sound (and bit-identical:
        /// per-buffer push/pop orders are unchanged).
        block: bool,
        fired: u64,
    },
    Source {
        source: usize,
        kernel: SourceKernel,
        outputs: Vec<usize>,
        /// Blocked broadcast admissible: a single output, or every replica
        /// local (a multi-replica broadcast over a cross-worker ring keeps
        /// the per-firing interleave instead, so a replica never runs a
        /// whole block ahead of its siblings against bounded rings).
        block: bool,
        generated: u64,
    },
    Sink {
        sink: usize,
        input: usize,
        consumed: u64,
        values: Vec<f64>,
        meter: ThroughputMeter,
        /// `Some` iff metrics are on: the drift detector's windowing
        /// monitor for this sink.
        monitor: Option<SinkMonitor>,
    },
    /// A modal unit: one arm per cluster member. Under **union-advance**
    /// the script dispatches per firing: every firing pops the union of all
    /// members' reads in ascending member order (the schedule admitted
    /// exactly that token flow for every mode), feeds the active arm's
    /// slice to its kernel, and pushes the shared write list. Under a
    /// **mode-dependent** schedule the executed period's mode dispatches
    /// instead ([`fire_dependent`]): the firing pops and pushes *only* that
    /// member's access lists. Never uses the block fast path: the arm may
    /// change at any firing (or period) boundary.
    Modal {
        /// Arms ascending by member node id; `script.arm_at(fired)` picks.
        members: Vec<ModalMember>,
        /// The shared aggregated write list (identical for every member
        /// under union-advance; mode-dependent firings use the member's own
        /// [`ModalMember::writes`]).
        writes: Vec<(usize, usize)>,
        out_len: usize,
        script: ModeScript,
        /// Total modal firings (the script's clock).
        fired: u64,
        /// Union-advance: firings whose arm differed from the previous
        /// firing's. Mode-dependent: period boundaries that changed mode.
        switches: u64,
        /// Arm (or executed mode) of the previous firing (`u32::MAX` before
        /// the first).
        last_arm: u32,
        /// See [`StaticReport::transition_firings`].
        transition_firings: u64,
    },
}

/// One arm of a modal unit.
struct ModalMember {
    /// Node id of the member this arm dispatches to.
    node: usize,
    kernel: Kernel,
    /// Aggregated reads in the canonical ascending-buffer order
    /// ([`modal_member_access`]), shared with synthesis and the scripted
    /// self-timed engine so value layouts agree everywhere.
    reads: Vec<(usize, usize)>,
    /// This member's aggregated write list (mode-dependent firings push
    /// exactly this; under union-advance it equals the shared list).
    writes: Vec<(usize, usize)>,
    out_len: usize,
    fired: u64,
}

/// One step of a worker's compiled list.
struct CompiledStep {
    /// Index into the worker's unit-state table.
    unit: u32,
    /// Consecutive firings at this position.
    times: u32,
    /// Iterations of the outer loop that include this step (its
    /// component's covering iteration count).
    iters: u64,
}

/// One stage of a compiled fused run.
struct CompiledStage {
    /// Index into the worker's unit-state table.
    unit: u32,
    /// Firings per run execution (before batching).
    times: u32,
}

/// A compiled fused super-step: the chain executes as one pass over two
/// ping-pong scratch buffers. Only the head's reads and the tail's writes
/// touch real buffer slots; each link's tokens are recorded and counted
/// without ever entering a ring.
struct CompiledFused {
    stages: Vec<CompiledStage>,
    /// Buffer index per stage boundary (`stages.len() - 1` entries).
    links: Vec<usize>,
    /// Iterations of the outer loop that include this run.
    iters: u64,
    /// Consecutive iterations executed back to back when the outer loop
    /// reaches a multiple of this (1 = no batching). Only whole-component
    /// runs batch — their links are scratch and they share no buffer with
    /// any other work item, so concatenating periods is reorder-safe and
    /// hands the block kernels real block sizes.
    batch: u64,
}

/// One item of a worker's compiled list.
enum CompiledWork {
    Step(CompiledStep),
    Fused(CompiledFused),
}

/// Target tokens per stage per batched run execution: enough to amortise
/// the per-call overhead and fill the SIMD kernels without growing the
/// scratch buffers past cache-friendly sizes.
const FUSED_BATCH_TOKENS: u64 = 4096;
/// Batching cap (iterations concatenated per run execution).
const FUSED_BATCH_MAX: u64 = 64;

/// The buffer plumbing of one worker: endpoint slots plus producer-side
/// recording. Split from the unit table so a unit's state and the buffer
/// I/O can be borrowed mutably at the same time.
struct BufIo {
    slots: Vec<Slot>,
    recorders: Vec<Option<BufferValues>>,
    record_values: bool,
    tokens: u64,
    /// `Some` iff [`StaticConfig::trace`]: worker-local event buffer plus
    /// ring high-water marks. Disjoint from `slots`, so wait observation
    /// and level notes borrow alongside the ring endpoints.
    trace: Option<WorkerTracer>,
    /// `Some` iff [`StaticConfig::metrics`]: the shared hub plus this
    /// worker's identity, for attributing blocked waits and work-item
    /// durations to the worker's metric cell.
    metrics: Option<MetricsIo>,
}

/// One worker's handle on the metrics registry.
struct MetricsIo {
    hub: Arc<MetricsHub>,
    worker: usize,
    /// Wait accounting for the metrics-only case; when tracing too, the
    /// tracer's own stats are the observation point instead (one counter,
    /// never double-counted).
    wait: WaitStats,
}

impl MetricsIo {
    #[inline]
    fn cell(&self) -> &MetricCell {
        self.hub.cell(self.worker)
    }
}

/// Cumulative observed blocked-wait ns so far: the tracer's stats when
/// tracing, else the metrics-side stats, else 0 (nothing observes waits).
#[inline]
fn blocked_ns(trace: &Option<WorkerTracer>, metrics: &Option<MetricsIo>) -> u64 {
    match (trace, metrics) {
        (Some(t), _) => t.wait.wait_ns,
        (None, Some(m)) => m.wait.wait_ns,
        (None, None) => 0,
    }
}

/// The wait-stats observation point for a blocking ring call (`None` when
/// neither tracing nor metering — the ring skips timing entirely).
#[inline]
fn wait_stats<'a>(
    trace: &'a mut Option<WorkerTracer>,
    metrics: &'a mut Option<MetricsIo>,
) -> Option<&'a mut WaitStats> {
    match (trace.as_mut(), metrics.as_mut()) {
        (Some(t), _) => Some(&mut t.wait),
        (None, Some(m)) => Some(&mut m.wait),
        (None, None) => None,
    }
}

/// Attribute a completed observed wait (its duration = observed ns now
/// minus `before`) to the trace backpressure track and the metric cell.
#[inline]
fn observe_wait(
    trace: &mut Option<WorkerTracer>,
    metrics: &Option<MetricsIo>,
    b: usize,
    before: u64,
) {
    let dur = blocked_ns(&*trace, metrics) - before;
    if dur == 0 {
        return;
    }
    if let Some(t) = trace.as_mut() {
        t.backpressure(b as u32, dur);
    }
    if let Some(m) = metrics {
        m.cell().record_backpressure(dur);
    }
}

/// Timestamp origin for a work item — `Some` when any instrumentation is
/// on (the tracer's clock when tracing, so span and histogram agree).
#[inline]
fn work_t0(io: &BufIo) -> Option<u64> {
    match (&io.trace, &io.metrics) {
        (Some(t), _) => Some(t.now_ns()),
        (None, Some(m)) => Some(m.hub.now_ns()),
        (None, None) => None,
    }
}

/// Close a work item opened at `start`: a trace span when tracing, a
/// firing-histogram sample in the worker's metric cell when metering.
#[inline]
fn note_work(io: &mut BufIo, kind: EventKind, unit: u32, start: u64) {
    if let Some(m) = io.metrics.as_ref() {
        let now = match io.trace.as_ref() {
            Some(t) => t.now_ns(),
            None => m.hub.now_ns(),
        };
        m.cell().record_firing(now.saturating_sub(start));
    }
    if let Some(t) = io.trace.as_mut() {
        t.span(kind, unit, start);
    }
}

impl BufIo {
    #[inline]
    fn pop(&mut self, b: usize, abort: &AtomicBool) -> f64 {
        match &mut self.slots[b] {
            Slot::Local(q) => q.pop(),
            Slot::Cons(rx) => {
                if self.trace.is_none() && self.metrics.is_none() {
                    rx.pop_wait(|| abort.load(Ordering::Relaxed))
                        .expect("peer worker aborted mid-schedule")
                } else {
                    let before = blocked_ns(&self.trace, &self.metrics);
                    let v = rx
                        .pop_wait_observed(
                            || abort.load(Ordering::Relaxed),
                            wait_stats(&mut self.trace, &mut self.metrics),
                        )
                        .expect("peer worker aborted mid-schedule");
                    observe_wait(&mut self.trace, &self.metrics, b, before);
                    v
                }
            }
            _ => unreachable!("read from a buffer this worker does not consume"),
        }
    }

    #[inline]
    fn push(&mut self, b: usize, value: f64, abort: &AtomicBool) {
        if self.record_values {
            if let Some(r) = self.recorders[b].as_mut() {
                r.record(value);
            }
        }
        self.tokens += 1;
        match &mut self.slots[b] {
            Slot::Local(q) => {
                q.push(value);
                if let Some(t) = self.trace.as_mut() {
                    t.note_level(b, q.len());
                }
            }
            Slot::Prod(tx) => {
                if self.trace.is_none() && self.metrics.is_none() {
                    if tx
                        .push_wait(value, || abort.load(Ordering::Relaxed))
                        .is_err()
                    {
                        panic!("peer worker aborted mid-schedule");
                    }
                } else {
                    let before = blocked_ns(&self.trace, &self.metrics);
                    if tx
                        .push_wait_observed(
                            value,
                            || abort.load(Ordering::Relaxed),
                            wait_stats(&mut self.trace, &mut self.metrics),
                        )
                        .is_err()
                    {
                        panic!("peer worker aborted mid-schedule");
                    }
                    observe_wait(&mut self.trace, &self.metrics, b, before);
                    if let Some(t) = self.trace.as_mut() {
                        // Post-push occupancy: the consumer may already have
                        // drained, so this never over-reports.
                        t.note_level(b, tx.len());
                    }
                }
            }
            Slot::Sunk => {}
            _ => unreachable!("write to a buffer this worker does not produce"),
        }
    }

    /// Pop `n` values into `scratch` (same per-buffer order as `n` single
    /// pops).
    fn pop_block(&mut self, b: usize, n: usize, scratch: &mut Vec<f64>, abort: &AtomicBool) {
        match &mut self.slots[b] {
            Slot::Local(q) => q.pop_block(n, scratch),
            Slot::Cons(rx) => {
                let before = blocked_ns(&self.trace, &self.metrics);
                for _ in 0..n {
                    let stats = wait_stats(&mut self.trace, &mut self.metrics);
                    scratch.push(
                        rx.pop_wait_observed(|| abort.load(Ordering::Relaxed), stats)
                            .expect("peer worker aborted mid-schedule"),
                    );
                }
                observe_wait(&mut self.trace, &self.metrics, b, before);
            }
            _ => unreachable!("read from a buffer this worker does not consume"),
        }
    }

    /// Commit a fused link's tokens *without* ring traffic: the values are
    /// recorded and counted exactly as a push would, but they stay in the
    /// caller's scratch — the consumer stage reads them from there. The
    /// per-buffer value stream is unchanged because the link held no
    /// standing tokens and its producer's firing order is preserved.
    fn commit_elided(&mut self, b: usize, values: &[f64]) {
        if self.record_values {
            if let Some(r) = self.recorders[b].as_mut() {
                for &v in values {
                    r.record(v);
                }
            }
        }
        self.tokens += values.len() as u64;
    }

    /// Push a block of values (same per-buffer order as single pushes).
    fn push_block(&mut self, b: usize, values: &[f64], abort: &AtomicBool) {
        if self.record_values {
            if let Some(r) = self.recorders[b].as_mut() {
                for &v in values {
                    r.record(v);
                }
            }
        }
        self.tokens += values.len() as u64;
        match &mut self.slots[b] {
            Slot::Local(q) => {
                q.push_block(values);
                if let Some(t) = self.trace.as_mut() {
                    t.note_level(b, q.len());
                }
            }
            Slot::Prod(tx) => {
                let before = blocked_ns(&self.trace, &self.metrics);
                for &v in values {
                    let stats = wait_stats(&mut self.trace, &mut self.metrics);
                    if tx
                        .push_wait_observed(v, || abort.load(Ordering::Relaxed), stats)
                        .is_err()
                    {
                        panic!("peer worker aborted mid-schedule");
                    }
                }
                observe_wait(&mut self.trace, &self.metrics, b, before);
                if let Some(t) = self.trace.as_mut() {
                    t.note_level(b, tx.len());
                }
            }
            Slot::Sunk => {}
            _ => unreachable!("write to a buffer this worker does not produce"),
        }
    }
}

/// This worker's share of a mode-dependent replay: instead of looping one
/// period list, the worker walks the resolved [`ModePlan`]'s mode sequence
/// — for each executed period it replays its projection of that mode's
/// firing list, running its projection of the drain/fill transition
/// program at every mode boundary.
///
/// [`ModePlan`]: oil_compiler::schedule::ModePlan
struct DepWork {
    /// The plan's per-period modes, shared by every worker.
    mode_seq: Arc<Vec<u32>>,
    /// Per mode: this worker's firing list as `(local unit, times)`.
    periods: Vec<Vec<(u32, u32)>>,
    /// Per ordered `(from, to)` pair (row-major): this worker's projection
    /// of the transition program.
    transitions: Vec<Vec<(u32, u32)>>,
}

/// Everything one worker owns for the run.
struct Worker {
    steps: Vec<CompiledWork>,
    units: Vec<UnitState>,
    io: BufIo,
    max_iters: u64,
    /// `Some` switches the worker to the mode-dependent replay loop.
    dep: Option<DepWork>,
    scratch: Vec<f64>,
    /// Reused output buffer for blocked kernel calls; doubles as the second
    /// ping-pong scratch of fused runs.
    out_buf: Vec<f64>,
}

/// What one worker hands back.
struct WorkerOut {
    units: Vec<UnitState>,
    recorders: Vec<Option<BufferValues>>,
    tokens: u64,
    trace: Option<WorkerTracer>,
}

impl Worker {
    fn run(mut self, abort: &AtomicBool) -> WorkerOut {
        if self.dep.is_some() {
            return self.run_dependent(abort);
        }
        let io = &mut self.io;
        let scratch = &mut self.scratch;
        let out_buf = &mut self.out_buf;
        for it in 0..self.max_iters {
            for work in &self.steps {
                let step = match work {
                    CompiledWork::Step(step) => step,
                    CompiledWork::Fused(f) => {
                        if it >= f.iters || (f.batch > 1 && !it.is_multiple_of(f.batch)) {
                            continue;
                        }
                        let reps = if f.batch > 1 {
                            f.batch.min(f.iters - it) as usize
                        } else {
                            1
                        };
                        let t0 = work_t0(io);
                        run_fused(f, reps, &mut self.units, io, scratch, out_buf, abort);
                        if let Some(start) = t0 {
                            note_work(io, EventKind::SuperStep, f.stages[0].unit, start);
                        }
                        continue;
                    }
                };
                if it >= step.iters {
                    continue;
                }
                let t0 = work_t0(io);
                match &mut self.units[step.unit as usize] {
                    UnitState::Node {
                        kernel,
                        reads,
                        writes,
                        in_len,
                        out_len,
                        block,
                        fired,
                        ..
                    } => {
                        let times = step.times as usize;
                        if *block {
                            // One kernel call for the whole scheduled run:
                            // gather every firing's inputs (the schedule
                            // proved they exist), fire the block, scatter.
                            scratch.clear();
                            if let [(b, c)] = reads[..] {
                                io.pop_block(b, times * c, scratch, abort);
                            } else {
                                for _ in 0..times {
                                    for &(b, c) in reads.iter() {
                                        for _ in 0..c {
                                            scratch.push(io.pop(b, abort));
                                        }
                                    }
                                }
                            }
                            out_buf.clear();
                            kernel.fire_block_into(scratch, times, *in_len, *out_len, out_buf);
                            if let [(b, c)] = writes[..] {
                                debug_assert_eq!(c, *out_len);
                                io.push_block(b, out_buf, abort);
                            } else {
                                for j in 0..times {
                                    for &(b, c) in writes.iter() {
                                        for k in 0..c {
                                            let v = out_buf.get(j * *out_len + k).copied();
                                            io.push(b, v.unwrap_or(0.0), abort);
                                        }
                                    }
                                }
                            }
                        } else {
                            for _ in 0..times {
                                scratch.clear();
                                for &(b, c) in reads.iter() {
                                    for _ in 0..c {
                                        scratch.push(io.pop(b, abort));
                                    }
                                }
                                let out = kernel.fire(scratch, *out_len);
                                for &(b, c) in writes.iter() {
                                    for k in 0..c {
                                        io.push(b, out.get(k).copied().unwrap_or(0.0), abort);
                                    }
                                }
                            }
                        }
                        *fired += step.times as u64;
                    }
                    UnitState::Source {
                        kernel,
                        outputs,
                        block,
                        generated,
                        ..
                    } => {
                        if *block {
                            scratch.clear();
                            kernel.fill_into(step.times as usize, scratch);
                            for &b in outputs.iter() {
                                io.push_block(b, scratch, abort);
                            }
                        } else {
                            for _ in 0..step.times {
                                let v = kernel.next_sample();
                                for &b in outputs.iter() {
                                    io.push(b, v, abort);
                                }
                            }
                        }
                        *generated += step.times as u64;
                    }
                    UnitState::Sink {
                        input,
                        consumed,
                        values,
                        meter,
                        monitor,
                        ..
                    } => {
                        for _ in 0..step.times {
                            let v = io.pop(*input, abort);
                            *consumed += 1;
                            meter.record();
                            if let Some(m) = monitor.as_mut() {
                                m.record();
                            }
                            if values.len() < SINK_STREAM_CAP {
                                values.push(v);
                            }
                        }
                        if let Some(m) = io.metrics.as_ref() {
                            m.cell().record_sink(step.times as u64);
                        }
                    }
                    UnitState::Modal {
                        members,
                        writes,
                        out_len,
                        script,
                        fired,
                        switches,
                        last_arm,
                        // Union-advance switches hot: no drain/fill, so no
                        // firing ever belongs to a transition.
                        transition_firings: _,
                    } => {
                        for _ in 0..step.times {
                            let arm = script.arm_at(*fired).min(members.len() as u32 - 1);
                            if *last_arm != u32::MAX && arm != *last_arm {
                                *switches += 1;
                                if let Some(t) = io.trace.as_mut() {
                                    t.instant(EventKind::ModeSwitch, arm);
                                }
                            }
                            *last_arm = arm;
                            // Union-advance: pop every member's inputs in
                            // ascending member order; the active arm's
                            // slice feeds its kernel, the rest is
                            // mode-gated traffic consumed and discarded.
                            scratch.clear();
                            let (mut start, mut len) = (0usize, 0usize);
                            for (k, m) in members.iter().enumerate() {
                                if k as u32 == arm {
                                    start = scratch.len();
                                }
                                for &(b, c) in &m.reads {
                                    for _ in 0..c {
                                        scratch.push(io.pop(b, abort));
                                    }
                                }
                                if k as u32 == arm {
                                    len = scratch.len() - start;
                                }
                            }
                            let active = &mut members[arm as usize];
                            let out = active.kernel.fire(&scratch[start..start + len], *out_len);
                            for &(b, c) in writes.iter() {
                                for k in 0..c {
                                    io.push(b, out.get(k).copied().unwrap_or(0.0), abort);
                                }
                            }
                            active.fired += 1;
                            *fired += 1;
                        }
                    }
                }
                if let Some(start) = t0 {
                    note_work(io, EventKind::Firing, step.unit, start);
                }
            }
        }
        WorkerOut {
            units: self.units,
            recorders: self.io.recorders,
            tokens: self.io.tokens,
            trace: self.io.trace,
        }
    }

    /// The mode-dependent replay: walk the plan's mode sequence, replaying
    /// this worker's projection of each period's firing list — with the
    /// drain/fill transition program at every mode boundary. Every worker
    /// walks the same sequence, so cross-worker rings line up exactly as in
    /// the validated global order.
    fn run_dependent(mut self, abort: &AtomicBool) -> WorkerOut {
        let dep = self.dep.take().expect("dependent work");
        let io = &mut self.io;
        let scratch = &mut self.scratch;
        let n_modes = dep.periods.len();
        let mut prev: Option<u32> = None;
        for &m in dep.mode_seq.iter() {
            if let Some(p) = prev {
                if p != m {
                    // The seam span covers this worker's whole drain/fill
                    // projection; its arg packs the (from, to) mode pair.
                    let t0 = io.trace.as_ref().map(|t| t.now_ns());
                    for &(u, times) in &dep.transitions[p as usize * n_modes + m as usize] {
                        fire_dependent(&mut self.units, io, scratch, u, times, m, true, abort);
                    }
                    if let Some(start) = t0 {
                        let t = io.trace.as_mut().expect("tracer outlives the run");
                        t.span(EventKind::Seam, (p << 16) | m, start);
                        t.instant(EventKind::ModeSwitch, m);
                    }
                }
            }
            for &(u, times) in &dep.periods[m as usize] {
                let t0 = io.trace.as_ref().map(|t| t.now_ns());
                fire_dependent(&mut self.units, io, scratch, u, times, m, false, abort);
                if let Some(start) = t0 {
                    let t = io.trace.as_mut().expect("tracer outlives the run");
                    t.span(EventKind::Firing, u, start);
                }
            }
            prev = Some(m);
        }
        WorkerOut {
            units: self.units,
            recorders: self.io.recorders,
            tokens: self.io.tokens,
            trace: self.io.trace,
        }
    }
}

/// Fire one unit `times` times inside a mode-dependent replay, with `mode`
/// the executed period's mode (a transition-program firing carries the
/// *incoming* mode). The modal unit dispatches the mode's member and moves
/// only that member's access lists; a firing counts toward
/// [`StaticReport::transition_firings`] when it belongs to a transition
/// program or the script has already requested a different arm (the drain
/// tail of the old period — a mid-period switch point takes effect at the
/// next period boundary).
#[allow(clippy::too_many_arguments)]
fn fire_dependent(
    units: &mut [UnitState],
    io: &mut BufIo,
    scratch: &mut Vec<f64>,
    unit: u32,
    times: u32,
    mode: u32,
    in_transition: bool,
    abort: &AtomicBool,
) {
    match &mut units[unit as usize] {
        UnitState::Node {
            kernel,
            reads,
            writes,
            out_len,
            fired,
            ..
        } => {
            for _ in 0..times {
                scratch.clear();
                for &(b, c) in reads.iter() {
                    for _ in 0..c {
                        scratch.push(io.pop(b, abort));
                    }
                }
                let out = kernel.fire(scratch, *out_len);
                for &(b, c) in writes.iter() {
                    for k in 0..c {
                        io.push(b, out.get(k).copied().unwrap_or(0.0), abort);
                    }
                }
            }
            *fired += times as u64;
        }
        UnitState::Source {
            kernel,
            outputs,
            generated,
            ..
        } => {
            for _ in 0..times {
                let v = kernel.next_sample();
                for &b in outputs.iter() {
                    io.push(b, v, abort);
                }
            }
            *generated += times as u64;
        }
        UnitState::Sink {
            input,
            consumed,
            values,
            meter,
            monitor,
            ..
        } => {
            for _ in 0..times {
                let v = io.pop(*input, abort);
                *consumed += 1;
                meter.record();
                if let Some(m) = monitor.as_mut() {
                    m.record();
                }
                if values.len() < SINK_STREAM_CAP {
                    values.push(v);
                }
            }
            if let Some(m) = io.metrics.as_ref() {
                m.cell().record_sink(times as u64);
            }
        }
        UnitState::Modal {
            members,
            script,
            fired,
            switches,
            last_arm,
            transition_firings,
            ..
        } => {
            let arms = members.len() as u32;
            for _ in 0..times {
                if *last_arm != u32::MAX && mode != *last_arm {
                    *switches += 1;
                }
                *last_arm = mode;
                if in_transition || script.arm_at(*fired).min(arms - 1) != mode {
                    *transition_firings += 1;
                }
                let active = &mut members[mode as usize];
                scratch.clear();
                for &(b, c) in &active.reads {
                    for _ in 0..c {
                        scratch.push(io.pop(b, abort));
                    }
                }
                let out = active.kernel.fire(scratch, active.out_len);
                for &(b, c) in &active.writes {
                    for k in 0..c {
                        io.push(b, out.get(k).copied().unwrap_or(0.0), abort);
                    }
                }
                active.fired += 1;
                *fired += 1;
            }
        }
    }
}

/// Execute one fused super-step (`reps` concatenated iterations of it) as a
/// single pass over two ping-pong scratch buffers.
///
/// Stage `i + 1` consumes exactly the slice stage `i` produced: the link
/// tokens are recorded and counted ([`BufIo::commit_elided`]) but never
/// enter a ring and never allocate. Only the head's reads (the schedule
/// proved the tokens exist up front) and the tail's writes touch real
/// buffer slots — per-buffer push/pop orders, and therefore every value
/// stream, are bit-identical to the unfused replay.
#[allow(clippy::too_many_arguments)]
fn run_fused(
    f: &CompiledFused,
    reps: usize,
    units: &mut [UnitState],
    io: &mut BufIo,
    scratch: &mut Vec<f64>,
    out_buf: &mut Vec<f64>,
    abort: &AtomicBool,
) {
    let last = f.stages.len() - 1;
    let mut cur: &mut Vec<f64> = scratch;
    let mut nxt: &mut Vec<f64> = out_buf;
    for (si, stage) in f.stages.iter().enumerate() {
        let times = stage.times as usize * reps;
        match &mut units[stage.unit as usize] {
            UnitState::Source {
                kernel,
                outputs,
                generated,
                ..
            } => {
                debug_assert!(si == 0, "a source can only head a fused run");
                debug_assert_eq!(outputs.len(), 1, "fused heads have a single write");
                nxt.clear();
                kernel.fill_into(times, nxt);
                *generated += times as u64;
            }
            UnitState::Node {
                kernel,
                reads,
                writes,
                in_len,
                out_len,
                fired,
                ..
            } => {
                if si == 0 {
                    // Gather the head's inputs from its real buffers.
                    cur.clear();
                    if let [(b, c)] = reads[..] {
                        io.pop_block(b, times * c, cur, abort);
                    } else {
                        for _ in 0..times {
                            for &(b, c) in reads.iter() {
                                for _ in 0..c {
                                    cur.push(io.pop(b, abort));
                                }
                            }
                        }
                    }
                }
                nxt.clear();
                kernel.fire_block_into(cur, times, *in_len, *out_len, nxt);
                *fired += times as u64;
                if si == last {
                    // Scatter the tail's outputs to its real buffers.
                    if let [(b, c)] = writes[..] {
                        debug_assert_eq!(c, *out_len);
                        io.push_block(b, nxt, abort);
                    } else {
                        for j in 0..times {
                            for &(b, c) in writes.iter() {
                                for k in 0..c {
                                    let v = nxt.get(j * *out_len + k).copied();
                                    io.push(b, v.unwrap_or(0.0), abort);
                                }
                            }
                        }
                    }
                }
            }
            UnitState::Modal { .. } => {
                unreachable!("modal units are excluded from fusion at synthesis")
            }
            UnitState::Sink {
                consumed,
                values,
                meter,
                monitor,
                ..
            } => {
                debug_assert!(si == last && si > 0, "a sink can only tail a fused run");
                debug_assert_eq!(cur.len(), times, "the link carried the sink's reads");
                *consumed += cur.len() as u64;
                meter.record_block(cur.len() as u64);
                if let Some(m) = monitor.as_mut() {
                    m.record_block(cur.len() as u64);
                }
                if let Some(m) = io.metrics.as_ref() {
                    m.cell().record_sink(cur.len() as u64);
                }
                if values.len() < SINK_STREAM_CAP {
                    let take = (SINK_STREAM_CAP - values.len()).min(cur.len());
                    values.extend_from_slice(&cur[..take]);
                }
            }
        }
        if si != last {
            io.commit_elided(f.links[si], nxt);
            std::mem::swap(&mut cur, &mut nxt);
        }
    }
}

/// Execute `graph` by replaying the synthesised static-order `schedule`:
/// each source covers at least the sample budget of `duration` picoseconds
/// of virtual time (the count the simulator would emit, rounded up to whole
/// schedule iterations), and the engine returns once every worker has
/// replayed its covering iterations.
///
/// # Panics
/// Panics if `schedule` was synthesised for a different graph, or if a
/// kernel panics on a worker (the abort flag unblocks the peers, then the
/// panic propagates).
///
/// Modal schedules run the default [`ModeScript`] (arm 0 forever); use
/// [`execute_staticsched_scripted`] to inject mode changes.
pub fn execute_staticsched(
    graph: &RtGraph,
    schedule: &StaticSchedule,
    lib: &KernelLibrary,
    duration: Picos,
    config: &StaticConfig,
) -> StaticReport {
    execute_staticsched_scripted(
        graph,
        schedule,
        &ModeScript::default(),
        lib,
        duration,
        config,
    )
}

/// [`execute_staticsched`] with a scripted mode-change sequence.
///
/// For a **union-advance** schedule the modal unit (if any) consults
/// `script` at every firing and dispatches that arm's kernel — switching
/// **without draining the pipeline**, because the schedule's token flow is
/// mode-independent and every (mode, mode') seam was re-proven by exact
/// replay at synthesis ([`StaticSchedule::validate_transitions`]).
///
/// For a **mode-dependent** schedule the script is first resolved into a
/// [`ModePlan`](oil_compiler::schedule::ModePlan): each executed period
/// runs one mode's verified firing list, a requested switch takes effect
/// at the next period boundary (the old period's trailing firings are the
/// *drain*, reported as [`StaticReport::transition_firings`]), and the
/// compiler-derived drain/fill transition program runs at every boundary.
///
/// Non-modal schedules ignore the script.
///
/// # Panics
/// Panics (loudly, before executing anything) when the script selects an
/// arm the schedule does not have.
pub fn execute_staticsched_scripted(
    graph: &RtGraph,
    schedule: &StaticSchedule,
    script: &ModeScript,
    lib: &KernelLibrary,
    duration: Picos,
    config: &StaticConfig,
) -> StaticReport {
    assert_eq!(
        schedule.producer_unit.len(),
        graph.buffers.len(),
        "schedule/graph mismatch"
    );
    if let Some(modes) = schedule.modes.as_ref() {
        script
            .validate(modes)
            .unwrap_or_else(|e| panic!("invalid mode script: {e}"));
    }
    let started = Instant::now();
    let threads = schedule.worker_count();
    let n_buffers = graph.buffers.len();
    // The metrics hub outlives the workers: sinks register monitors before
    // the run, the snapshot is taken after every worker joined.
    let hub: Option<Arc<MetricsHub>> = config
        .metrics
        .map(|m| MetricsHub::new("staticsched", threads, m));

    // --- Source budgets (the simulator's horizon count) and the covering
    // iteration count per component.
    let budgets: Vec<u64> = graph
        .sources
        .iter()
        .map(|s| {
            let period_ps = oil_sim::time::picos_nearest(s.period)
                .unwrap_or_else(|e| panic!("period of `{}`: {e}", s.name));
            duration.checked_div(period_ps).unwrap_or(0)
        })
        .collect();
    // A mode-dependent schedule replays the resolved mode plan instead of
    // a fixed covering-iteration count per component.
    let dependent = schedule.modes.as_ref().and_then(|m| m.dependent.as_ref());
    let plan = dependent.map(|dep| {
        let rates = dep.rates(&schedule.units, graph);
        plan_mode_sequence(&rates, script, |id| budgets[id.index()])
    });
    let mode_seq: Option<Arc<Vec<u32>>> = plan.as_ref().map(|p| Arc::new(p.mode_seq.clone()));
    let component_iters = if plan.is_none() {
        schedule.covering_iterations(graph, |id| budgets[id.index()])
    } else {
        Vec::new()
    };
    let iterations = plan
        .as_ref()
        .map(|p| p.mode_seq.len() as u64)
        .unwrap_or_else(|| component_iters.iter().copied().max().unwrap_or(0));

    // --- Per-buffer placement: the worker of each endpoint decides the
    // backing (local deque, cross-worker ring, or record-and-drop).
    let unit_worker = |u: Option<u32>| u.map(|u| schedule.units[u as usize].worker);
    let declared: Vec<usize> = graph
        .buffers
        .iter()
        .map(|b| b.capacity.max(b.initial_tokens).max(1))
        .collect();
    let mut worker_slots: Vec<Vec<Slot>> = (0..threads)
        .map(|_| (0..n_buffers).map(|_| Slot::Absent).collect())
        .collect();
    let mut recorders: Vec<Option<BufferValues>> = Vec::with_capacity(n_buffers);
    let mut setup_tokens = 0u64;
    for (i, b) in graph.buffers.iter().enumerate() {
        let mut recorder = BufferValues {
            name: b.name.clone(),
            ..Default::default()
        };
        for _ in 0..b.initial_tokens {
            recorder.record(0.0);
            setup_tokens += 1;
        }
        let bi = oil_compiler::rtgraph::RtBufferId::new(i);
        let pw = unit_worker(schedule.producer_unit[bi]);
        let cw = unit_worker(schedule.consumer_unit[bi]);
        match (pw, cw) {
            (Some(p), None) => {
                // Unread: record-and-drop on the producer's worker.
                worker_slots[p][i] = Slot::Sunk;
            }
            (Some(p), Some(c)) if p == c => {
                // Fusion may push tokens into a local buffer earlier than
                // the unfused order did; the schedule's fused replay bound
                // (floored at the declared capacity) sizes the ring.
                let cap = declared[i].max(schedule.local_level_max[bi] as usize);
                let mut q = LocalRing::with_capacity(cap);
                for _ in 0..b.initial_tokens {
                    q.push(0.0);
                }
                worker_slots[p][i] = Slot::Local(q);
            }
            (Some(p), Some(c)) => {
                let (mut tx, rx) = ring::spsc::<f64>(declared[i]);
                for _ in 0..b.initial_tokens {
                    tx.push(0.0).expect("initial tokens fit the capacity");
                }
                worker_slots[p][i] = Slot::Prod(tx);
                worker_slots[c][i] = Slot::Cons(rx);
            }
            (None, Some(c)) => {
                // Only initial tokens ever occupy it (validation bounds the
                // consumer's reads to those).
                let mut q = LocalRing::with_capacity(declared[i]);
                for _ in 0..b.initial_tokens {
                    q.push(0.0);
                }
                worker_slots[c][i] = Slot::Local(q);
            }
            (None, None) => {}
        }
        recorders.push(Some(recorder));
    }

    // --- Compile each worker's unit table and step list.
    let mut workers: Vec<Worker> = Vec::with_capacity(threads);
    // unit id -> (worker, local index)
    let mut unit_home: Vec<(usize, u32)> = vec![(0, 0); schedule.units.len()];
    let mut worker_units: Vec<Vec<UnitState>> = (0..threads).map(|_| Vec::new()).collect();
    // Per worker, the display label of each local unit (trace attribution).
    let mut worker_labels: Vec<Vec<String>> = (0..threads).map(|_| Vec::new()).collect();
    for (u, unit) in schedule.units.iter().enumerate() {
        let w = unit.worker;
        if config.trace {
            worker_labels[w].push(match &unit.kind {
                UnitKind::Node(id) => graph.nodes[*id].name.clone(),
                UnitKind::Cluster {
                    representative,
                    members,
                } => format!(
                    "{}(+{})",
                    graph.nodes[*representative].name,
                    members.len().saturating_sub(1)
                ),
                UnitKind::Source(id) => graph.sources[*id].name.clone(),
                UnitKind::Sink(id) => graph.sinks[*id].name.clone(),
                UnitKind::Modal { members } => {
                    let names: Vec<&str> = members
                        .iter()
                        .map(|&m| graph.nodes[m].name.as_str())
                        .collect();
                    format!("modal[{}]", names.join("|"))
                }
            });
        }
        // A buffer endpoint is "free of peers" when the worker's view of it
        // never blocks: a local deque, or a dropped unread buffer.
        let unblocked = |b: usize| matches!(worker_slots[w][b], Slot::Local(_) | Slot::Sunk);
        let state = match &unit.kind {
            UnitKind::Node(id)
            | UnitKind::Cluster {
                representative: id, ..
            } => {
                let n = &graph.nodes[*id];
                let reads: Vec<(usize, usize)> =
                    n.reads.iter().map(|&(b, c)| (b.index(), c)).collect();
                let writes: Vec<(usize, usize)> =
                    n.writes.iter().map(|&(b, c)| (b.index(), c)).collect();
                let disjoint = reads
                    .iter()
                    .all(|&(b, _)| writes.iter().all(|&(wb, _)| wb != b));
                let block = disjoint
                    && reads.iter().all(|&(b, _)| unblocked(b))
                    && writes.iter().all(|&(b, _)| unblocked(b));
                UnitState::Node {
                    node: id.index(),
                    kernel: lib.instantiate(&n.function),
                    in_len: reads.iter().map(|&(_, c)| c).sum(),
                    out_len: writes.iter().map(|&(_, c)| c).max().unwrap_or(0),
                    reads,
                    writes,
                    block,
                    fired: 0,
                }
            }
            UnitKind::Source(id) => {
                let s = &graph.sources[*id];
                let outputs: Vec<usize> = s.outputs.iter().map(|b| b.index()).collect();
                let block = outputs.len() == 1 || outputs.iter().all(|&b| unblocked(b));
                UnitState::Source {
                    source: id.index(),
                    kernel: lib.instantiate_source(&s.function),
                    outputs,
                    block,
                    generated: 0,
                }
            }
            UnitKind::Sink(id) => {
                let s = &graph.sinks[*id];
                UnitState::Sink {
                    sink: id.index(),
                    input: s.input.index(),
                    consumed: 0,
                    values: Vec::new(),
                    meter: ThroughputMeter::new(config.warmup_samples),
                    monitor: hub
                        .as_ref()
                        .map(|h| h.sink_monitor(s.name.clone(), s.period.recip().to_f64())),
                }
            }
            UnitKind::Modal { members } => {
                let arms: Vec<ModalMember> = members
                    .iter()
                    .map(|&m| {
                        let (reads, member_writes) = modal_member_access(graph, m);
                        let member_writes: Vec<(usize, usize)> = member_writes
                            .into_iter()
                            .map(|(b, c)| (b.index(), c))
                            .collect();
                        ModalMember {
                            node: m.index(),
                            kernel: lib.instantiate(&graph.nodes[m].function),
                            reads: reads.into_iter().map(|(b, c)| (b.index(), c)).collect(),
                            out_len: member_writes.iter().map(|&(_, c)| c).max().unwrap_or(0),
                            writes: member_writes,
                            fired: 0,
                        }
                    })
                    .collect();
                let (_, writes) = modal_member_access(graph, members[0]);
                let writes: Vec<(usize, usize)> =
                    writes.into_iter().map(|(b, c)| (b.index(), c)).collect();
                UnitState::Modal {
                    out_len: writes.iter().map(|&(_, c)| c).max().unwrap_or(0),
                    members: arms,
                    writes,
                    script: script.clone(),
                    fired: 0,
                    switches: 0,
                    last_arm: u32::MAX,
                    transition_firings: 0,
                }
            }
        };
        unit_home[u] = (w, worker_units[w].len() as u32);
        worker_units[w].push(state);
    }
    for (w, (units, mut slots)) in worker_units
        .into_iter()
        .zip(std::mem::take(&mut worker_slots))
        .enumerate()
    {
        // Hand each producer-side recorder to its worker.
        let mut recs: Vec<Option<BufferValues>> = (0..n_buffers).map(|_| None).collect();
        for (i, slot) in slots.iter_mut().enumerate() {
            let produces = matches!(slot, Slot::Local(_) | Slot::Prod(_) | Slot::Sunk);
            let bi = oil_compiler::rtgraph::RtBufferId::new(i);
            let is_producer = unit_worker(schedule.producer_unit[bi]) == Some(w);
            if produces && is_producer {
                recs[i] = recorders[i].take();
            }
        }
        // Tokens one stage moves per run execution: sizes the batching so
        // scratch stays cache-friendly.
        let stage_tokens = |s: &oil_compiler::schedule::Step| -> u64 {
            let width = match &units[unit_home[s.unit as usize].1 as usize] {
                UnitState::Node {
                    in_len, out_len, ..
                } => (*in_len).max(*out_len).max(1),
                UnitState::Source { .. } | UnitState::Sink { .. } => 1,
                // Modal units never fuse, so they never size a batch.
                UnitState::Modal { .. } => 1,
            };
            s.times as u64 * width as u64
        };
        // A mode-dependent worker replays the resolved plan instead of a
        // covering-iteration step list (whose per-component counts do not
        // exist here): compile the per-mode projections and per-pair
        // transition programs down to local unit indices.
        let dep = mode_seq.as_ref().map(|seq| {
            let d = dependent.expect("a mode plan implies a dependent schedule");
            DepWork {
                mode_seq: Arc::clone(seq),
                periods: d
                    .steps
                    .iter()
                    .map(|per_worker| {
                        per_worker[w]
                            .iter()
                            .map(|s| (unit_home[s.unit as usize].1, s.times))
                            .collect()
                    })
                    .collect(),
                transitions: d
                    .transitions
                    .iter()
                    .map(|t| {
                        t.iter()
                            .filter(|s| schedule.units[s.unit as usize].worker == w)
                            .map(|s| (unit_home[s.unit as usize].1, s.times))
                            .collect()
                    })
                    .collect(),
            }
        });
        let steps: Vec<CompiledWork> = if dep.is_some() {
            Vec::new()
        } else {
            schedule.fused_workers[w]
                .iter()
                .map(|item| match item {
                    WorkItem::Step(s) => {
                        let unit = &schedule.units[s.unit as usize];
                        CompiledWork::Step(CompiledStep {
                            unit: unit_home[s.unit as usize].1,
                            times: s.times,
                            iters: component_iters[unit.component as usize],
                        })
                    }
                    WorkItem::Fused(run) => {
                        let comp = schedule.units[run.stages[0].unit as usize].component;
                        let batch = if run.batch {
                            let widest = run.stages.iter().map(&stage_tokens).max().unwrap_or(1);
                            (FUSED_BATCH_TOKENS / widest.max(1)).clamp(1, FUSED_BATCH_MAX)
                        } else {
                            1
                        };
                        CompiledWork::Fused(CompiledFused {
                            stages: run
                                .stages
                                .iter()
                                .map(|s| CompiledStage {
                                    unit: unit_home[s.unit as usize].1,
                                    times: s.times,
                                })
                                .collect(),
                            links: run.links.iter().map(|b| b.index()).collect(),
                            iters: component_iters[comp as usize],
                            batch,
                        })
                    }
                })
                .collect()
        };
        let max_iters = steps
            .iter()
            .map(|s| match s {
                CompiledWork::Step(s) => s.iters,
                CompiledWork::Fused(f) => f.iters,
            })
            .max()
            .unwrap_or(0);
        workers.push(Worker {
            steps,
            units,
            io: BufIo {
                slots,
                recorders: recs,
                record_values: config.record_values,
                tokens: 0,
                // All tracers share one epoch so the merged tracks align.
                trace: config.trace.then(|| WorkerTracer::new(started, n_buffers)),
                metrics: hub.as_ref().map(|h| MetricsIo {
                    hub: Arc::clone(h),
                    worker: w,
                    wait: WaitStats::default(),
                }),
            },
            max_iters,
            dep,
            scratch: Vec::new(),
            out_buf: Vec::new(),
        });
    }

    // --- Run. No coordination beyond the cross-worker rings: each worker
    // replays its covering iterations and returns. The abort flag exists
    // only to unblock peers when a worker panics.
    let abort = Arc::new(AtomicBool::new(false));
    let outs: Vec<WorkerOut> = if threads == 1 {
        let worker = workers.pop().expect("one worker");
        vec![worker.run(&abort)]
    } else {
        let handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(w, worker)| {
                let abort = Arc::clone(&abort);
                std::thread::Builder::new()
                    .name(format!("oil-rt-static-{w}"))
                    .spawn(move || {
                        struct AbortOnPanic(Arc<AtomicBool>);
                        impl Drop for AbortOnPanic {
                            fn drop(&mut self) {
                                if std::thread::panicking() {
                                    self.0.store(true, Ordering::SeqCst);
                                }
                            }
                        }
                        let _guard = AbortOnPanic(Arc::clone(&abort));
                        worker.run(&abort)
                    })
                    .expect("spawning a static-order worker thread")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("static-order worker panicked"))
            .collect()
    };

    // --- Assemble the report.
    let mut tokens = setup_tokens;
    let mut node_firings: Vec<(String, u64)> =
        graph.nodes.iter().map(|n| (n.name.clone(), 0u64)).collect();
    let mut source_samples: Vec<(String, u64)> = graph
        .sources
        .iter()
        .map(|s| (s.name.clone(), 0u64))
        .collect();
    let mut sinks: Vec<Option<SinkStream>> = (0..graph.sinks.len()).map(|_| None).collect();
    let mut throughput: Vec<Option<SinkThroughput>> =
        (0..graph.sinks.len()).map(|_| None).collect();
    let mut mode_switches = 0u64;
    let mut transition_firings = 0u64;
    let mut trace_report = config
        .trace
        .then(|| TraceReport::new("staticsched", threads));
    let mut ring_hw: Vec<u32> = vec![0; n_buffers];
    for (w, out) in outs.into_iter().enumerate() {
        if let (Some(tr), Some(t)) = (trace_report.as_mut(), out.trace) {
            let hw = tr.push_track(
                format!("worker-{w}"),
                std::mem::take(&mut worker_labels[w]),
                t,
            );
            for (b, h) in hw.into_iter().enumerate() {
                ring_hw[b] = ring_hw[b].max(h);
            }
        }
        tokens += out.tokens;
        for (b, r) in out.recorders.into_iter().enumerate() {
            if let Some(r) = r {
                recorders[b] = Some(r);
            }
        }
        for unit in out.units {
            match unit {
                UnitState::Node { node, fired, .. } => node_firings[node].1 = fired,
                UnitState::Source {
                    source, generated, ..
                } => source_samples[source].1 = generated,
                UnitState::Sink {
                    sink,
                    consumed,
                    values,
                    meter,
                    monitor,
                    ..
                } => {
                    // Flush the drift detector's partial tail window before
                    // the snapshot below.
                    if let Some(m) = monitor {
                        m.finish();
                    }
                    let s = &graph.sinks[oil_compiler::rtgraph::RtSinkId::new(sink)];
                    sinks[sink] = Some(SinkStream {
                        name: s.name.clone(),
                        consumed,
                        misses: 0,
                        max_latency: 0.0,
                        values,
                    });
                    throughput[sink] = Some(SinkThroughput {
                        name: s.name.clone(),
                        samples: consumed,
                        predicted_hz: s.period.recip().to_f64(),
                        measured_hz: meter.steady_rate_hz(),
                    });
                }
                UnitState::Modal {
                    members,
                    switches,
                    transition_firings: tf,
                    ..
                } => {
                    for m in members {
                        node_firings[m.node].1 = m.fired;
                    }
                    mode_switches += switches;
                    transition_firings += tf;
                }
            }
        }
    }
    if let Some(tr) = trace_report.as_mut() {
        let mut crossing = vec![false; n_buffers];
        for &b in &schedule.cross_buffers {
            crossing[b.index()] = true;
        }
        tr.rings = graph
            .buffers
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let bi = oil_compiler::rtgraph::RtBufferId::new(i);
                RingStat {
                    name: b.name.clone(),
                    // The bound the ring was actually sized to: fusion may
                    // push into a same-worker buffer earlier than the
                    // unfused order, up to the schedule's proven fused
                    // replay level — the CTA capacity still bounds every
                    // cross-worker ring.
                    capacity: if crossing[i] {
                        declared[i]
                    } else {
                        declared[i].max(schedule.local_level_max[bi] as usize)
                    },
                    // Initial tokens occupy the ring before any traced push.
                    highwater: (ring_hw[i] as usize).max(b.initial_tokens),
                    crossing: crossing[i],
                }
            })
            .collect();
        tr.phases = schedule
            .phases
            .iter()
            .map(|p| (p.name.to_string(), p.dur_ns))
            .collect();
    }
    StaticReport {
        threads,
        values: ValueTrace {
            buffers: if config.record_values {
                recorders
                    .into_iter()
                    .map(|r| r.unwrap_or_default())
                    .collect()
            } else {
                Vec::new()
            },
        },
        sinks: sinks
            .into_iter()
            .map(|s| s.expect("every sink is a scheduled unit"))
            .collect(),
        throughput: throughput
            .into_iter()
            .map(|t| t.expect("every sink measured"))
            .collect(),
        node_firings,
        sources: source_samples,
        tokens,
        wall: started.elapsed(),
        iterations,
        cross_buffers: schedule.cross_buffers.len(),
        fusion: schedule.fusion,
        mode_switches,
        transition_firings,
        trace_report,
        metrics: hub.as_ref().map(|h| h.snapshot()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selftimed::{execute_selftimed, SelfTimedConfig};
    use oil_compiler::schedule::{synthesize, SynthesisConfig};
    use oil_compiler::{compile, rtgraph, CompilerOptions};
    use oil_lang::registry::{FunctionRegistry, FunctionSignature};
    use oil_sim::picos;

    fn registry() -> FunctionRegistry {
        let mut r = FunctionRegistry::new();
        for f in ["f", "g", "init", "src", "snk"] {
            r.register(FunctionSignature::pure(f, 1e-5));
        }
        r
    }

    const PIPELINE: &str = r#"
        mod seq P(int a, out int m){ loop{ f(a, out m); } while(1); }
        mod seq Q(int m, out int b){ loop{ g(m:2, out b); } while(1); }
        mod par D(){
            fifo int mid;
            source int x = src() @ 2 kHz;
            sink int y = snk() @ 1 kHz;
            P(x, out mid) || Q(mid, out y)
        }
    "#;

    fn lowered(src: &str) -> (rtgraph::RtGraph, rtgraph::RtPlan) {
        let compiled = compile(src, &registry(), &CompilerOptions::default()).unwrap();
        let graph = rtgraph::lower(&compiled);
        let plan = rtgraph::plan(&graph);
        (graph, plan)
    }

    #[test]
    fn selftimed_streams_are_a_prefix_of_the_static_replay() {
        let (graph, plan) = lowered(PIPELINE);
        let reference = execute_selftimed(
            &graph,
            &plan,
            &KernelLibrary::new(),
            picos(0.1),
            &SelfTimedConfig {
                threads: 1,
                ..SelfTimedConfig::default()
            },
        );
        assert!(!reference.deadlocked);
        for workers in [1, 2, 4] {
            let schedule = synthesize(&graph, &plan, workers, &SynthesisConfig::from_env())
                .expect("schedulable");
            let report = execute_staticsched(
                &graph,
                &schedule,
                &KernelLibrary::new(),
                picos(0.1),
                &StaticConfig::default(),
            );
            assert_eq!(
                reference.values.prefix_divergence(&report.values),
                None,
                "workers={workers}"
            );
            let (cal, fre) = (&reference.sinks[0], &report.sinks[0]);
            let shared = cal.values.len().min(fre.values.len());
            assert_eq!(cal.values[..shared], fre.values[..shared]);
            assert!(fre.consumed >= cal.consumed, "workers={workers}");
        }
    }

    #[test]
    fn static_replay_is_worker_count_invariant() {
        let (graph, plan) = lowered(PIPELINE);
        let run = |workers: usize| {
            let schedule = synthesize(&graph, &plan, workers, &SynthesisConfig::from_env())
                .expect("schedulable");
            execute_staticsched(
                &graph,
                &schedule,
                &KernelLibrary::new(),
                picos(0.1),
                &StaticConfig::default(),
            )
        };
        let base = run(1);
        assert!(base.iterations > 0);
        for workers in [2, 3, 4] {
            let other = run(workers);
            assert_eq!(base.values.first_divergence(&other.values), None);
            assert_eq!(base.node_firings, other.node_firings);
            assert_eq!(base.sources, other.sources);
            for (a, b) in base.sinks.iter().zip(&other.sinks) {
                assert_eq!(a.consumed, b.consumed);
                assert_eq!(a.values, b.values);
            }
        }
    }

    #[test]
    fn modal_clusters_replay_their_quasi_static_resolution() {
        let src = r#"
            mod seq S(int a, out int b){
                loop{ if(...){ t = f(a:2); } else { t = g(a:2); } init(t, out b); } while(1);
            }
            mod par D(){
                source int x = src() @ 2 kHz;
                sink int y = snk() @ 1 kHz;
                S(x, out y)
            }
        "#;
        let (graph, plan) = lowered(src);
        assert!(!plan.is_kpn_safe(), "the scenario under test is modal");
        let reference = execute_selftimed(
            &graph,
            &plan,
            &KernelLibrary::new(),
            picos(0.1),
            &SelfTimedConfig {
                threads: 1,
                ..SelfTimedConfig::default()
            },
        );
        for workers in [1, 2] {
            let schedule = synthesize(&graph, &plan, workers, &SynthesisConfig::from_env())
                .expect("uniform clusters schedule");
            let report = execute_staticsched(
                &graph,
                &schedule,
                &KernelLibrary::new(),
                picos(0.1),
                &StaticConfig::default(),
            );
            // Both engines always select the lowest-id twin, so even the
            // "schedule-dependent" streams match bit for bit.
            assert_eq!(
                reference.values.prefix_divergence(&report.values),
                None,
                "workers={workers}"
            );
            // The starved twin reports zero firings in both engines.
            let starved_ref: Vec<_> = reference
                .node_firings
                .iter()
                .filter(|(_, n)| *n == 0)
                .map(|(name, _)| name.clone())
                .collect();
            let starved_static: Vec<_> = report
                .node_firings
                .iter()
                .filter(|(_, n)| *n == 0)
                .map(|(name, _)| name.clone())
                .collect();
            assert_eq!(starved_ref, starved_static);
        }
    }

    #[test]
    fn sources_cover_their_budget_rounded_to_whole_iterations() {
        let (graph, plan) = lowered(PIPELINE);
        let schedule = synthesize(&graph, &plan, 1, &SynthesisConfig::from_env()).unwrap();
        // 0.0105 s at 2 kHz = 21 samples; q(source) = 2 ⇒ 11 iterations,
        // 22 samples.
        let report = execute_staticsched(
            &graph,
            &schedule,
            &KernelLibrary::new(),
            picos(0.0105),
            &StaticConfig::default(),
        );
        assert_eq!(report.iterations, 11);
        assert_eq!(report.sources[0].1, 22);
        assert_eq!(report.sinks[0].consumed, 11);
    }

    #[test]
    fn a_panicking_kernel_aborts_the_run_instead_of_hanging() {
        let (graph, plan) = lowered(PIPELINE);
        let schedule = synthesize(&graph, &plan, 2, &SynthesisConfig::from_env()).unwrap();
        let mut lib = KernelLibrary::new();
        lib.register(
            "f",
            Box::new(|| Kernel::Custom(Box::new(|_, _| panic!("injected kernel failure")))),
        );
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_staticsched(
                &graph,
                &schedule,
                &lib,
                picos(0.1),
                &StaticConfig::default(),
            )
        }));
        assert!(result.is_err(), "the kernel panic must propagate");
    }
}
