//! Kernel cost calibration: measure ns/firing per coordinated function.
//!
//! The partitioner in `oil_compiler::schedule` balances workers on per-unit
//! cost estimates; this module produces the *measured* estimates — a
//! [`KernelCostModel`] artifact mapping each coordinated function name to
//! its observed nanoseconds per firing on this host. Calibration runs each
//! kernel at a representative burst size (the same
//! [`Kernel::fire_block_into`] path the static-order engine replays) and
//! estimates the per-firing cost with a **deterministic robust estimator**:
//! the timed repeats are sorted, `trim` are dropped from each end, and the
//! median of the rest is taken — no randomness, no mean that one preempted
//! run can poison. Timings are still timings: two calibrations of the same
//! binary will produce *similar*, not identical, artifacts, which is why
//! the model is placement advice only — every schedule it steers is still
//! proven by the exact-integer replay, and the model's fingerprint is
//! recorded in the schedule for provenance.

use crate::kernel::{Kernel, KernelLibrary};
use oil_compiler::costmodel::{KernelCost, KernelCostModel};
use oil_compiler::rtgraph::RtGraph;
use std::collections::BTreeMap;
use std::time::Instant;

/// Calibration knobs. The defaults measure each kernel 9 × 64 firings
/// (plus warmup), trimming the 2 fastest and 2 slowest repeats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileConfig {
    /// Firings per timed repeat. Bursts amortise the clock reads and match
    /// the static engine's block replay granularity.
    pub burst: usize,
    /// Timed repeats per kernel (the estimator's sample count).
    pub repeats: usize,
    /// Repeats dropped from *each* end of the sorted durations before the
    /// median (clamped so at least one sample survives).
    pub trim: usize,
    /// Untimed warmup repeats (cache/branch-predictor settling).
    pub warmup: usize,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            burst: 64,
            repeats: 9,
            trim: 2,
            warmup: 2,
        }
    }
}

/// One calibrated kernel: the measurement plus the shape it ran at.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfiledKernel {
    /// Coordinated function name.
    pub function: String,
    /// Inputs consumed per firing during calibration.
    pub in_len: usize,
    /// Outputs produced per firing during calibration.
    pub out_len: usize,
    /// The robust estimate, ns/firing.
    pub ns_per_firing: f64,
}

/// Calibrate every distinct node function of `graph` against `lib` and
/// assemble the [`KernelCostModel`] artifact (host-fingerprinted, entries
/// in canonical function order). Each function is measured at the
/// input/output shape its first node declares — per-firing rates are a
/// property of the function in OIL, so any node of the function gives the
/// representative shape.
pub fn profile_graph(
    graph: &RtGraph,
    lib: &KernelLibrary,
    config: &ProfileConfig,
) -> KernelCostModel {
    let mut shapes: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for node in graph.nodes.iter() {
        let in_len: usize = node.reads.iter().map(|&(_, c)| c).sum();
        let out_len: usize = node.writes.iter().map(|&(_, c)| c).max().unwrap_or(0);
        shapes.entry(&node.function).or_insert((in_len, out_len));
    }
    let mut model = KernelCostModel::new(KernelCostModel::local_host());
    for (function, &(in_len, out_len)) in &shapes {
        let mut kernel = lib.instantiate(function);
        let ns = profile_kernel(&mut kernel, in_len, out_len, config);
        model.insert(
            function.to_string(),
            KernelCost {
                ns_per_firing: ns,
                burst: config.burst as u32,
                samples: config.repeats as u32,
            },
        );
    }
    model
}

/// Measure one kernel's ns/firing at the given per-firing shape: `warmup`
/// untimed bursts, `repeats` timed bursts of `burst` firings through
/// [`Kernel::fire_block_into`], then the trimmed median over the repeat
/// durations divided by the burst size.
pub fn profile_kernel(
    kernel: &mut Kernel,
    in_len: usize,
    out_len: usize,
    config: &ProfileConfig,
) -> f64 {
    let burst = config.burst.max(1);
    let repeats = config.repeats.max(1);
    let inputs = calibration_signal(burst * in_len);
    let mut out: Vec<f64> = Vec::with_capacity(burst * out_len);
    let mut run = |timed: bool| -> u64 {
        out.clear();
        let t0 = Instant::now();
        kernel.fire_block_into(&inputs, burst, in_len, out_len, &mut out);
        if timed {
            t0.elapsed().as_nanos() as u64
        } else {
            0
        }
    };
    for _ in 0..config.warmup {
        run(false);
    }
    let mut durations: Vec<u64> = (0..repeats).map(|_| run(true)).collect();
    trimmed_median_ns(&mut durations, config.trim) / burst as f64
}

/// The trimmed-median estimator over raw burst durations: sort, drop
/// `trim` from each end (clamped to leave at least one sample), take the
/// median of the survivors (midpoint average for even counts).
/// Deterministic in its inputs — the only nondeterminism in calibration is
/// the clock itself.
pub fn trimmed_median_ns(durations: &mut [u64], trim: usize) -> f64 {
    assert!(!durations.is_empty(), "no samples to estimate from");
    durations.sort_unstable();
    let trim = trim.min((durations.len() - 1) / 2);
    let kept = &durations[trim..durations.len() - trim];
    let mid = kept.len() / 2;
    if kept.len() % 2 == 1 {
        kept[mid] as f64
    } else {
        (kept[mid - 1] as f64 + kept[mid] as f64) / 2.0
    }
}

/// A deterministic pseudo-random calibration input in `[-1, 1)` (the same
/// keyed mix the synthetic kernels use), so calibrations are reproducible
/// modulo the clock.
fn calibration_signal(len: usize) -> Vec<f64> {
    (0..len as u64)
        .map(|i| {
            let h = (0x5851_F42D_4C95_7F2D ^ i)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(23)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trimmed_median_is_robust_to_outliers() {
        // One preempted (huge) repeat must not move the estimate.
        let mut clean = vec![100, 101, 102, 103, 104, 105, 106, 107, 108];
        let mut spiked = vec![100, 101, 102, 103, 104, 105, 106, 107, 1_000_000];
        assert_eq!(trimmed_median_ns(&mut clean, 2), 104.0);
        assert_eq!(trimmed_median_ns(&mut spiked, 2), 104.0);
    }

    #[test]
    fn trim_clamps_to_keep_a_sample() {
        let mut one = vec![42];
        assert_eq!(trimmed_median_ns(&mut one, 5), 42.0);
        let mut two = vec![10, 20];
        assert_eq!(trimmed_median_ns(&mut two, 5), 15.0);
    }

    #[test]
    fn profiling_a_kernel_yields_a_positive_finite_cost() {
        let lib = KernelLibrary::pal();
        let mut mix = lib.instantiate("mix");
        let ns = profile_kernel(&mut mix, 1, 1, &ProfileConfig::default());
        assert!(ns.is_finite() && ns >= 0.0, "got {ns}");
        // A 63-tap FIR over a 25-sample burst costs measurably more than a
        // single mixer multiply.
        let mut lpf = lib.instantiate("LPF");
        let lpf_ns = profile_kernel(&mut lpf, 25, 1, &ProfileConfig::default());
        assert!(lpf_ns > 0.0);
    }

    #[test]
    fn calibration_signal_is_deterministic_and_bounded() {
        let a = calibration_signal(64);
        let b = calibration_signal(64);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-1.0..1.0).contains(v)));
    }
}
