//! A work-stealing thread pool for kernel execution.
//!
//! The scheduler thread submits one job per node firing; worker threads
//! execute them. Each worker owns a deque: it pops its own work from the
//! front (LIFO for cache warmth) and, when empty, steals from the back of a
//! sibling's deque — the classic work-stealing discipline. Submission
//! round-robins across workers, so independent firings land on different
//! workers and long kernels get rebalanced by stealing.
//!
//! The pool executes *values*, never scheduling decisions: which firing
//! happens at which virtual time is fixed by the deterministic scheduler
//! (see [`crate::exec`]), which is why the observable trace is identical at
//! every pool size. That separation is the paper's point — OIL's
//! restrictions make temporal behaviour data-independent, so the data
//! computation can be farmed out to however many cores exist.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    /// One deque per worker. A `Mutex<VecDeque>` per worker keeps contention
    /// to the (rare) steal path; the hot path locks only the owner's deque.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs submitted but not yet finished.
    pending: AtomicUsize,
    /// Successful steals (observability; asserted by tests).
    steals: AtomicU64,
    /// Set when the pool shuts down.
    shutdown: AtomicBool,
    /// Parking lot for idle workers.
    idle: Mutex<()>,
    wake: Condvar,
}

/// A fixed-size work-stealing thread pool.
pub struct WorkStealingPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next: usize,
}

impl WorkStealingPool {
    /// Spawn a pool with `threads` OS worker threads (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            idle: Mutex::new(()),
            wake: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("oil-rt-worker-{me}"))
                    .spawn(move || worker_loop(me, &shared))
                    .expect("spawning a runtime worker thread")
            })
            .collect();
        WorkStealingPool {
            shared,
            workers,
            next: 0,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shared.queues.len()
    }

    /// Submit a job, round-robining across worker deques.
    pub fn submit(&mut self, job: Job) {
        let target = self.next % self.shared.queues.len();
        self.next = self.next.wrapping_add(1);
        self.submit_to(target, job);
    }

    /// Submit a job to a specific worker's deque (tests use this to force
    /// stealing; the engine uses [`WorkStealingPool::submit`]).
    pub fn submit_to(&self, worker: usize, job: Job) {
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        self.shared.queues[worker]
            .lock()
            .expect("worker queue poisoned")
            .push_back(job);
        let _idle = self.shared.idle.lock().expect("idle lock poisoned");
        self.shared.wake.notify_all();
    }

    /// Jobs submitted but not yet finished.
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::SeqCst)
    }

    /// Successful steals so far.
    pub fn steals(&self) -> u64 {
        self.shared.steals.load(Ordering::SeqCst)
    }
}

impl Drop for WorkStealingPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _idle = self.shared.idle.lock().expect("idle lock poisoned");
            self.shared.wake.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(me: usize, shared: &Shared) {
    loop {
        // Own work first (front = most recently submitted to us).
        let job = pop_own(me, shared).or_else(|| steal(me, shared));
        match job {
            Some(job) => {
                job();
                shared.pending.fetch_sub(1, Ordering::SeqCst);
            }
            None => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Park until new work arrives (re-checked under the lock to
                // avoid missed wakeups). No spinning: on oversubscribed or
                // single-core machines busy-waiting starves the scheduler
                // thread, which costs far more than a condvar wakeup.
                let guard = shared.idle.lock().expect("idle lock poisoned");
                if shared.pending.load(Ordering::SeqCst) == 0
                    && !shared.shutdown.load(Ordering::SeqCst)
                {
                    let _guard = shared
                        .wake
                        .wait_timeout(guard, std::time::Duration::from_millis(1))
                        .expect("idle lock poisoned");
                }
            }
        }
    }
}

fn pop_own(me: usize, shared: &Shared) -> Option<Job> {
    shared.queues[me]
        .lock()
        .expect("worker queue poisoned")
        .pop_front()
}

fn steal(me: usize, shared: &Shared) -> Option<Job> {
    let n = shared.queues.len();
    for offset in 1..n {
        let victim = (me + offset) % n;
        let job = shared.queues[victim]
            .lock()
            .expect("worker queue poisoned")
            .pop_back();
        if let Some(job) = job {
            shared.steals.fetch_add(1, Ordering::SeqCst);
            return Some(job);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    fn wait_idle(pool: &WorkStealingPool) {
        let start = std::time::Instant::now();
        while pool.pending() > 0 {
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "pool did not drain"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn executes_every_submitted_job() {
        let counter = Arc::new(AtomicU64::new(0));
        let mut pool = WorkStealingPool::new(4);
        for _ in 0..1000 {
            let counter = Arc::clone(&counter);
            pool.submit(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }));
        }
        wait_idle(&pool);
        assert_eq!(counter.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn idle_workers_steal_from_a_loaded_queue() {
        let counter = Arc::new(AtomicU64::new(0));
        let pool = WorkStealingPool::new(4);
        // Pile every job on worker 0; with 4 workers and jobs that take a
        // while, the other three must steal to finish in time.
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            pool.submit_to(
                0,
                Box::new(move || {
                    std::thread::sleep(Duration::from_millis(2));
                    counter.fetch_add(1, Ordering::SeqCst);
                }),
            );
        }
        wait_idle(&pool);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert!(pool.steals() > 0, "expected at least one steal");
    }

    #[test]
    fn single_thread_pool_works() {
        let counter = Arc::new(AtomicU64::new(0));
        let mut pool = WorkStealingPool::new(1);
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.submit(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }));
        }
        wait_idle(&pool);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(pool.steals(), 0, "one worker has nobody to steal from");
    }

    #[test]
    fn shutdown_joins_all_workers() {
        let pool = WorkStealingPool::new(3);
        assert_eq!(pool.threads(), 3);
        drop(pool); // must not hang
    }
}
