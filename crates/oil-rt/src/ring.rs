//! Lock-free bounded single-producer/single-consumer ring buffers.
//!
//! The runtime's value streams flow through these rings: one per buffer of
//! the runtime graph (capacity from CTA buffer sizing), plus one per
//! time-triggered source (generator thread → scheduler) and one per sink
//! (scheduler → collector thread). The implementation is the classic
//! Lamport ring: a power-free array indexed by two monotonically increasing
//! counters, where the producer only writes `tail` and the consumer only
//! writes `head`, so a release store on one side paired with an acquire load
//! on the other is the entire synchronisation protocol of the lock-free
//! `push`/`pop` fast path — no locks, no CAS.
//!
//! Endpoints that must *wait* for the other side use [`Producer::push_wait`]
//! / [`Consumer::pop_wait`]: a bounded spin (cheap when the other side is
//! actively running), then a bounded run of `yield_now` (oversubscribed
//! machines), then a park/unpark handshake — a parked waiter costs the
//! opposite endpoint one atomic load per operation, and an idle wait burns
//! no CPU, unlike the unbounded `yield_now` loops these paths replace.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::Thread;
use std::time::Duration;

/// Iterations of the hot spin phase of a blocking wait.
pub const WAIT_SPINS: usize = 64;
/// Iterations of the `yield_now` phase of a blocking wait before parking.
pub const WAIT_YIELDS: usize = 16;
/// Upper bound of one park in a blocking wait. The wake protocol unparks
/// eagerly; the timeout only bounds the latency of a missed `abort` signal.
const WAIT_PARK: Duration = Duration::from_micros(200);

/// Blocked-path statistics of one ring endpoint, filled by
/// [`Producer::push_wait_observed`] / [`Consumer::pop_wait_observed`]
/// when tracing is on (`oil_rt::trace`). The unblocked fast path never
/// touches these — a wait is counted only after the lock-free push/pop
/// has already failed once, and the clock is read only on that cold path,
/// so observation cannot perturb an uncongested ring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaitStats {
    /// Operations that entered the blocked path at all.
    pub waits: u64,
    /// `yield_now` calls taken after the spin phase was exhausted.
    pub spin_yields: u64,
    /// `park_timeout` calls taken after the yield phase was exhausted.
    pub parks: u64,
    /// Total nanoseconds spent blocked (from first failure to success or
    /// abort).
    pub wait_ns: u64,
}

/// A registered parked thread waiting for the opposite endpoint to make
/// room/data. `engaged` is the fast-path gate: the opposite endpoint pays
/// one relaxed-ish atomic load per operation while nobody waits, and takes
/// the mutex only to hand the wakeup over.
#[derive(Default)]
struct Waiter {
    engaged: AtomicBool,
    thread: Mutex<Option<Thread>>,
}

impl Waiter {
    /// Register the current thread. Must be followed by a re-check of the
    /// ring state before parking: a wake between the re-check and the park
    /// leaves the park token set, so the park returns immediately.
    fn register(&self) {
        *self.thread.lock().expect("ring waiter poisoned") = Some(std::thread::current());
        self.engaged.store(true, Ordering::SeqCst);
    }

    fn unregister(&self) {
        self.engaged.store(false, Ordering::SeqCst);
        self.thread.lock().expect("ring waiter poisoned").take();
    }

    /// Wake the registered thread, if any.
    fn wake(&self) {
        if self.engaged.load(Ordering::SeqCst) {
            if let Some(t) = self.thread.lock().expect("ring waiter poisoned").take() {
                self.engaged.store(false, Ordering::SeqCst);
                t.unpark();
            }
        }
    }
}

struct Inner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot to pop (only advanced by the consumer).
    head: AtomicUsize,
    /// Next slot to push (only advanced by the producer).
    tail: AtomicUsize,
    /// A consumer parked in [`Consumer::pop_wait`], woken by a push.
    pop_waiter: Waiter,
    /// A producer parked in [`Producer::push_wait`], woken by a pop.
    push_waiter: Waiter,
}

// Safety: the producer/consumer split guarantees each slot is accessed by at
// most one thread at a time: a slot is written by the producer strictly
// before the tail release-store that publishes it, and read by the consumer
// strictly before the head release-store that retires it.
unsafe impl<T: Send> Sync for Inner<T> {}
unsafe impl<T: Send> Send for Inner<T> {}

/// Create a bounded SPSC ring of the given capacity, returning the two
/// endpoint handles. Each handle can move to (at most) one thread.
///
/// # Panics
/// Panics if `capacity` is zero.
pub fn spsc<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "an SPSC ring needs at least one slot");
    let inner = Arc::new(Inner {
        buf: (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        pop_waiter: Waiter::default(),
        push_waiter: Waiter::default(),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
        },
        Consumer { inner },
    )
}

/// The producing endpoint of an SPSC ring.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
}

/// The consuming endpoint of an SPSC ring.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Producer<T> {
    /// Push a value, or hand it back if the ring is full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        let head = self.inner.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == self.inner.buf.len() {
            return Err(value);
        }
        let slot = &self.inner.buf[tail % self.inner.buf.len()];
        // Safety: the slot is unpublished (tail not yet advanced), so the
        // consumer cannot touch it.
        unsafe { (*slot.get()).write(value) };
        self.inner
            .tail
            .store(tail.wrapping_add(1), Ordering::Release);
        self.inner.pop_waiter.wake();
        Ok(())
    }

    /// Push a value, waiting for space: a bounded spin, then a bounded run
    /// of `yield_now`, then park until the consumer pops (or the park
    /// timeout re-checks `abort`). Returns the value if `abort` turned true
    /// while the ring was still full — the wait never spins unboundedly on
    /// a consumer that is gone.
    pub fn push_wait(&mut self, value: T, abort: impl FnMut() -> bool) -> Result<(), T> {
        self.push_wait_observed(value, abort, None)
    }

    /// [`Self::push_wait`] with blocked-path telemetry: when `stats` is
    /// given, the wait is counted and timed into it. The clock is read
    /// only after the lock-free fast path has already failed, so the
    /// unblocked path pays nothing beyond the `Option` test.
    pub fn push_wait_observed(
        &mut self,
        value: T,
        mut abort: impl FnMut() -> bool,
        mut stats: Option<&mut WaitStats>,
    ) -> Result<(), T> {
        let mut value = match self.push(value) {
            Ok(()) => return Ok(()),
            Err(back) => back,
        };
        let t0 = stats.as_ref().map(|_| std::time::Instant::now());
        if let Some(s) = stats.as_deref_mut() {
            s.waits += 1;
        }
        let settle = |stats: Option<&mut WaitStats>| {
            if let (Some(s), Some(t0)) = (stats, t0) {
                s.wait_ns += t0.elapsed().as_nanos() as u64;
            }
        };
        for _ in 0..WAIT_SPINS {
            match self.push(value) {
                Ok(()) => {
                    settle(stats);
                    return Ok(());
                }
                Err(back) => value = back,
            }
            std::hint::spin_loop();
        }
        for _ in 0..WAIT_YIELDS {
            match self.push(value) {
                Ok(()) => {
                    settle(stats);
                    return Ok(());
                }
                Err(back) => value = back,
            }
            if abort() {
                settle(stats);
                return Err(value);
            }
            if let Some(s) = stats.as_deref_mut() {
                s.spin_yields += 1;
            }
            std::thread::yield_now();
        }
        loop {
            self.inner.push_waiter.register();
            // Re-check after registering: a pop between the failed push and
            // the registration would otherwise be a lost wakeup.
            match self.push(value) {
                Ok(()) => {
                    self.inner.push_waiter.unregister();
                    settle(stats);
                    return Ok(());
                }
                Err(back) => value = back,
            }
            if abort() {
                self.inner.push_waiter.unregister();
                settle(stats);
                return Err(value);
            }
            if let Some(s) = stats.as_deref_mut() {
                s.parks += 1;
            }
            std::thread::park_timeout(WAIT_PARK);
            self.inner.push_waiter.unregister();
        }
    }

    /// Number of values currently in the ring.
    pub fn len(&self) -> usize {
        self.inner
            .tail
            .load(Ordering::Relaxed)
            .wrapping_sub(self.inner.head.load(Ordering::Acquire))
    }

    /// True when no value is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.inner.buf.len()
    }

    /// Free slots remaining.
    pub fn space(&self) -> usize {
        self.capacity() - self.len()
    }
}

impl<T> Consumer<T> {
    /// Pop the oldest value, or `None` when the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        let head = self.inner.head.load(Ordering::Relaxed);
        let tail = self.inner.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &self.inner.buf[head % self.inner.buf.len()];
        // Safety: the slot is published (head < tail) and not yet retired,
        // so the producer cannot touch it.
        let value = unsafe { (*slot.get()).assume_init_read() };
        self.inner
            .head
            .store(head.wrapping_add(1), Ordering::Release);
        self.inner.push_waiter.wake();
        Some(value)
    }

    /// Pop a value, waiting for one to arrive: a bounded spin, then a
    /// bounded run of `yield_now`, then park until the producer pushes (or
    /// the park timeout re-checks `abort`). Returns `None` only when
    /// `abort` turned true while the ring was still empty.
    pub fn pop_wait(&mut self, abort: impl FnMut() -> bool) -> Option<T> {
        self.pop_wait_observed(abort, None)
    }

    /// [`Self::pop_wait`] with blocked-path telemetry: when `stats` is
    /// given, the wait is counted and timed into it. The clock is read
    /// only after the lock-free fast path has already failed.
    pub fn pop_wait_observed(
        &mut self,
        mut abort: impl FnMut() -> bool,
        mut stats: Option<&mut WaitStats>,
    ) -> Option<T> {
        if let Some(v) = self.pop() {
            return Some(v);
        }
        let t0 = stats.as_ref().map(|_| std::time::Instant::now());
        if let Some(s) = stats.as_deref_mut() {
            s.waits += 1;
        }
        let settle = |stats: Option<&mut WaitStats>| {
            if let (Some(s), Some(t0)) = (stats, t0) {
                s.wait_ns += t0.elapsed().as_nanos() as u64;
            }
        };
        for _ in 0..WAIT_SPINS {
            if let Some(v) = self.pop() {
                settle(stats);
                return Some(v);
            }
            std::hint::spin_loop();
        }
        for _ in 0..WAIT_YIELDS {
            if let Some(v) = self.pop() {
                settle(stats);
                return Some(v);
            }
            if abort() {
                settle(stats);
                return None;
            }
            if let Some(s) = stats.as_deref_mut() {
                s.spin_yields += 1;
            }
            std::thread::yield_now();
        }
        loop {
            self.inner.pop_waiter.register();
            // Re-check after registering: a push between the failed pop and
            // the registration would otherwise be a lost wakeup.
            if let Some(v) = self.pop() {
                self.inner.pop_waiter.unregister();
                settle(stats);
                return Some(v);
            }
            if abort() {
                self.inner.pop_waiter.unregister();
                settle(stats);
                return None;
            }
            if let Some(s) = stats.as_deref_mut() {
                s.parks += 1;
            }
            std::thread::park_timeout(WAIT_PARK);
            self.inner.pop_waiter.unregister();
        }
    }

    /// Number of values currently in the ring.
    pub fn len(&self) -> usize {
        self.inner
            .tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.inner.head.load(Ordering::Relaxed))
    }

    /// True when no value is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.inner.buf.len()
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        // Drain remaining values so their destructors run. The producer may
        // still push afterwards; those values leak their destructor only if
        // T needs Drop and the producer outlives the consumer — the runtime
        // always drops producers first, and the value types it uses are
        // Copy anyway.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_and_capacity_bound() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        assert!(rx.pop().is_none());
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99), "full ring must reject");
        assert_eq!(tx.len(), 4);
        assert_eq!(tx.space(), 0);
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn wraparound_preserves_order() {
        let (mut tx, mut rx) = spsc::<usize>(3);
        for round in 0..100 {
            tx.push(2 * round).unwrap();
            tx.push(2 * round + 1).unwrap();
            assert_eq!(rx.pop(), Some(2 * round));
            assert_eq!(rx.pop(), Some(2 * round + 1));
        }
    }

    #[test]
    fn cross_thread_transfer_is_lossless_and_ordered() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = spsc::<u64>(64);
        let producer = thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let mut expected = 0u64;
        while expected < N {
            if let Some(v) = rx.pop() {
                assert_eq!(v, expected, "values must arrive in push order");
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert!(rx.pop().is_none());
    }

    #[test]
    fn blocking_waits_transfer_without_burning_cpu() {
        const N: u64 = 50_000;
        let (mut tx, mut rx) = spsc::<u64>(8);
        let producer = thread::spawn(move || {
            for i in 0..N {
                tx.push_wait(i, || false).expect("never aborted");
            }
        });
        for expected in 0..N {
            assert_eq!(rx.pop_wait(|| false), Some(expected));
        }
        producer.join().unwrap();
        assert!(rx.pop().is_none());
    }

    #[test]
    fn parked_consumer_is_woken_by_a_late_push() {
        let (mut tx, mut rx) = spsc::<u32>(2);
        let consumer = thread::spawn(move || rx.pop_wait(|| false));
        // Sleep well past the spin+yield phases so the consumer parks.
        thread::sleep(std::time::Duration::from_millis(50));
        tx.push(7).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(7));
    }

    #[test]
    fn parked_producer_is_woken_by_a_late_pop() {
        let (mut tx, mut rx) = spsc::<u32>(1);
        tx.push(1).unwrap();
        let producer = thread::spawn(move || tx.push_wait(2, || false));
        thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(rx.pop(), Some(1));
        assert!(producer.join().unwrap().is_ok());
        assert_eq!(rx.pop(), Some(2));
    }

    #[test]
    fn aborted_waits_hand_the_state_back() {
        use std::sync::atomic::AtomicBool;
        let (mut tx, mut rx) = spsc::<u32>(1);
        assert_eq!(rx.pop_wait(|| true), None, "empty + aborted");
        tx.push(1).unwrap();
        assert_eq!(tx.push_wait(2, || true), Err(2), "full + aborted");
        // An abort flag that flips while parked is honoured promptly.
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let consumer = thread::spawn(move || {
            let mut rx = rx;
            rx.pop();
            rx.pop_wait(move || stop2.load(Ordering::SeqCst))
        });
        thread::sleep(std::time::Duration::from_millis(30));
        stop.store(true, Ordering::SeqCst);
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn observed_waits_count_only_the_blocked_path() {
        let (mut tx, mut rx) = spsc::<u32>(2);
        let mut stats = WaitStats::default();
        // Uncongested pushes and pops never touch the statistics.
        tx.push_wait_observed(1, || false, Some(&mut stats))
            .unwrap();
        assert_eq!(rx.pop_wait_observed(|| false, Some(&mut stats)), Some(1));
        assert_eq!(stats, WaitStats::default());
        // A blocked push against a full ring is counted and timed.
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(tx.push_wait_observed(3, || true, Some(&mut stats)), Err(3));
        assert_eq!(stats.waits, 1);
        // A parked consumer woken by a late push accumulates yields/parks.
        let mut stats = WaitStats::default();
        let consumer = thread::spawn(move || {
            rx.pop();
            rx.pop();
            let v = rx.pop_wait_observed(|| false, Some(&mut stats));
            (v, stats)
        });
        thread::sleep(std::time::Duration::from_millis(50));
        tx.push(9).unwrap();
        let (v, stats) = consumer.join().unwrap();
        assert_eq!(v, Some(9));
        assert_eq!(stats.waits, 1);
        assert!(stats.parks > 0, "a 50ms stall must reach the park phase");
        assert!(stats.wait_ns > 0);
    }

    #[test]
    fn drop_runs_destructors_of_buffered_values() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Tracked;
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, rx) = spsc::<Tracked>(8);
        for _ in 0..5 {
            tx.push(Tracked).unwrap();
        }
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }
}
