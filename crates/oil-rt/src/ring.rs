//! Lock-free bounded single-producer/single-consumer ring buffers.
//!
//! The runtime's value streams flow through these rings: one per buffer of
//! the runtime graph (capacity from CTA buffer sizing), plus one per
//! time-triggered source (generator thread → scheduler) and one per sink
//! (scheduler → collector thread). The implementation is the classic
//! Lamport ring: a power-free array indexed by two monotonically increasing
//! counters, where the producer only writes `tail` and the consumer only
//! writes `head`, so a release store on one side paired with an acquire load
//! on the other is the entire synchronisation protocol — no locks, no CAS.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct Inner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot to pop (only advanced by the consumer).
    head: AtomicUsize,
    /// Next slot to push (only advanced by the producer).
    tail: AtomicUsize,
}

// Safety: the producer/consumer split guarantees each slot is accessed by at
// most one thread at a time: a slot is written by the producer strictly
// before the tail release-store that publishes it, and read by the consumer
// strictly before the head release-store that retires it.
unsafe impl<T: Send> Sync for Inner<T> {}
unsafe impl<T: Send> Send for Inner<T> {}

/// Create a bounded SPSC ring of the given capacity, returning the two
/// endpoint handles. Each handle can move to (at most) one thread.
///
/// # Panics
/// Panics if `capacity` is zero.
pub fn spsc<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "an SPSC ring needs at least one slot");
    let inner = Arc::new(Inner {
        buf: (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
        },
        Consumer { inner },
    )
}

/// The producing endpoint of an SPSC ring.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
}

/// The consuming endpoint of an SPSC ring.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Producer<T> {
    /// Push a value, or hand it back if the ring is full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        let head = self.inner.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == self.inner.buf.len() {
            return Err(value);
        }
        let slot = &self.inner.buf[tail % self.inner.buf.len()];
        // Safety: the slot is unpublished (tail not yet advanced), so the
        // consumer cannot touch it.
        unsafe { (*slot.get()).write(value) };
        self.inner
            .tail
            .store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Number of values currently in the ring.
    pub fn len(&self) -> usize {
        self.inner
            .tail
            .load(Ordering::Relaxed)
            .wrapping_sub(self.inner.head.load(Ordering::Acquire))
    }

    /// True when no value is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.inner.buf.len()
    }

    /// Free slots remaining.
    pub fn space(&self) -> usize {
        self.capacity() - self.len()
    }
}

impl<T> Consumer<T> {
    /// Pop the oldest value, or `None` when the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        let head = self.inner.head.load(Ordering::Relaxed);
        let tail = self.inner.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &self.inner.buf[head % self.inner.buf.len()];
        // Safety: the slot is published (head < tail) and not yet retired,
        // so the producer cannot touch it.
        let value = unsafe { (*slot.get()).assume_init_read() };
        self.inner
            .head
            .store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Number of values currently in the ring.
    pub fn len(&self) -> usize {
        self.inner
            .tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.inner.head.load(Ordering::Relaxed))
    }

    /// True when no value is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.inner.buf.len()
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        // Drain remaining values so their destructors run. The producer may
        // still push afterwards; those values leak their destructor only if
        // T needs Drop and the producer outlives the consumer — the runtime
        // always drops producers first, and the value types it uses are
        // Copy anyway.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_and_capacity_bound() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        assert!(rx.pop().is_none());
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99), "full ring must reject");
        assert_eq!(tx.len(), 4);
        assert_eq!(tx.space(), 0);
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn wraparound_preserves_order() {
        let (mut tx, mut rx) = spsc::<usize>(3);
        for round in 0..100 {
            tx.push(2 * round).unwrap();
            tx.push(2 * round + 1).unwrap();
            assert_eq!(rx.pop(), Some(2 * round));
            assert_eq!(rx.pop(), Some(2 * round + 1));
        }
    }

    #[test]
    fn cross_thread_transfer_is_lossless_and_ordered() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = spsc::<u64>(64);
        let producer = thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let mut expected = 0u64;
        while expected < N {
            if let Some(v) = rx.pop() {
                assert_eq!(v, expected, "values must arrive in push order");
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert!(rx.pop().is_none());
    }

    #[test]
    fn drop_runs_destructors_of_buffered_values() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Tracked;
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, rx) = spsc::<Tracked>(8);
        for _ in 0..5 {
            tx.push(Tracked).unwrap();
        }
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }
}
