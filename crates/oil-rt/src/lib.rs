//! `oil-rt` — the work-stealing multi-threaded execution runtime.
//!
//! The paper's thesis is that OIL's restrictions make every program
//! *automatically parallelizable* while staying temporally analysable. The
//! discrete-event simulator (`oil-sim`) validates the analysis; this crate
//! validates the **parallelization**: it executes a compiled program's task
//! graph on real OS threads — actual `oil-dsp` kernels computing actual
//! sample streams — and is held, by `tests/runtime_differential.rs`, to
//! produce **bit-identical** per-buffer token traces, deadline-miss counts
//! and overflow counts as the simulator at every thread count.
//!
//! Architecture (see the module docs for detail):
//!
//! * [`ring`] — lock-free bounded SPSC ring buffers with bounded-spin →
//!   yield → park/unpark blocking wait paths; one per runtime-graph buffer
//!   (capacity from CTA buffer sizing), plus the source-generator and
//!   sink-collector conduits;
//! * [`pool`] — the work-stealing thread pool executing kernel firings;
//! * [`kernel`] — DSP-backed and synthetic kernels, mapped from coordinated
//!   function names by a [`KernelLibrary`];
//! * [`exec`] — the deterministic **calendar engine**: virtual time
//!   replayed on a `(time, kind, id)`-ordered calendar with the same
//!   documented tie-breaking rule as the simulator, kernel computation
//!   overlapped on the pool between a firing's start and completion events;
//! * [`selftimed`] — the **free-running engine**: no clock, tasks fire as
//!   soon as tokens and space allow, batched by the repetition-vector plan
//!   (`oil_compiler::rtgraph::plan`), verified against the calendar engine
//!   through the value plane (`tests/selftimed_differential.rs`);
//! * [`staticsched`] — the **compiled static-order engine**: each worker
//!   replays a periodic firing list synthesised and validated at compile
//!   time (`oil_compiler::schedule`), with zero readiness scanning and
//!   synchronisation only on cross-worker buffers
//!   (`tests/staticsched_differential.rs`);
//! * [`measure`] — per-buffer value-stream traces and wall-clock sink
//!   throughput vs the CTA-predicted rates (rate conformance);
//! * [`trace`] — low-overhead per-worker event tracing: firing/seam spans,
//!   park/backpressure counters and ring high-water marks, exported as a
//!   stable JSON summary or a Perfetto-loadable Chrome trace. Off by
//!   default; enabling it never changes value streams;
//! * [`metrics`] — always-on metrics registry: lock-free per-worker
//!   counter/histogram cells, windowed sink throughput and a live CTA
//!   drift detector ([`metrics::DriftVerdict`]). Off by default with the
//!   same one-branch discipline as [`trace`];
//! * [`profile`] — kernel cost calibration: measures ns/firing per
//!   coordinated function (trimmed-median estimator) into an
//!   `oil_compiler::costmodel::KernelCostModel` artifact that
//!   `oil_compiler::schedule` can use for measured-cost partitioning.
//!
//! The runtime consumes the same [`oil_compiler::rtgraph::RtGraph`] lowering
//! as the simulator, so differential testing compares *scheduling
//! semantics*, not graph construction.

pub mod exec;
pub mod kernel;
pub mod measure;
pub mod metrics;
pub mod pool;
pub mod profile;
pub mod ring;
pub mod selftimed;
pub mod staticsched;
pub mod trace;

pub use exec::{env_threads, execute, parse_threads, RtConfig, RtReport, SinkStream};
pub use kernel::{Kernel, KernelLibrary, SourceKernel};
pub use measure::{
    ConformanceVerdict, RateConformance, SinkThroughput, ThroughputMeter, ValueTrace,
};
pub use metrics::{env_metrics, DriftVerdict, MetricsConfig, MetricsHub, MetricsReport, WindowObs};
pub use pool::WorkStealingPool;
pub use profile::{profile_graph, profile_kernel, ProfileConfig};
pub use selftimed::{
    execute_selftimed, execute_selftimed_scripted, SelfTimedConfig, SelfTimedReport,
};
pub use staticsched::{
    execute_staticsched, execute_staticsched_scripted, StaticConfig, StaticReport,
};
pub use trace::{env_trace, TraceReport};

#[cfg(test)]
mod tests {
    use super::*;
    use oil_compiler::{compile, rtgraph, CompilerOptions};
    use oil_lang::registry::{FunctionRegistry, FunctionSignature};
    use oil_sim::{build_simulation_from_graph, picos, SimulationConfig};

    fn registry() -> FunctionRegistry {
        let mut r = FunctionRegistry::new();
        for f in ["f", "g", "init", "src", "snk"] {
            r.register(FunctionSignature::pure(f, 1e-5));
        }
        r
    }

    const PIPELINE: &str = r#"
        mod seq P(int a, out int m){ loop{ f(a, out m); } while(1); }
        mod seq Q(int m, out int b){ loop{ g(m:2, out b); } while(1); }
        mod par D(){
            fifo int mid;
            source int x = src() @ 2 kHz;
            sink int y = snk() @ 1 kHz;
            P(x, out mid) || Q(mid, out y)
        }
    "#;

    #[test]
    fn runtime_matches_simulator_trace_on_a_pipeline() {
        let compiled = compile(PIPELINE, &registry(), &CompilerOptions::default()).unwrap();
        let graph = rtgraph::lower(&compiled);
        let mut net = build_simulation_from_graph(&graph);
        let (_, sim_trace) = net.run_traced(picos(0.25), &SimulationConfig::default());

        for threads in [1, 2, 4] {
            let report = execute(
                &graph,
                &KernelLibrary::new(),
                picos(0.25),
                &RtConfig {
                    threads,
                    ..RtConfig::default()
                },
            );
            assert_eq!(report.threads, threads);
            assert_eq!(
                report.trace.first_divergence(&sim_trace),
                None,
                "threads={threads}"
            );
            assert!(report.meets_real_time_constraints(), "{:?}", report.trace);
            // Real sample values reached the sink.
            let values = report.sink_values("y").expect("sink stream");
            assert!(!values.is_empty());
            assert!(values.iter().any(|v| *v != 0.0));
        }
    }

    #[test]
    fn value_streams_are_identical_across_thread_counts() {
        let compiled = compile(PIPELINE, &registry(), &CompilerOptions::default()).unwrap();
        let graph = rtgraph::lower(&compiled);
        let config = RtConfig::default();
        let base = execute(
            &graph,
            &KernelLibrary::new(),
            picos(0.1),
            &RtConfig {
                threads: 1,
                ..config
            },
        );
        for threads in [2, 3, 8] {
            let other = execute(
                &graph,
                &KernelLibrary::new(),
                picos(0.1),
                &RtConfig { threads, ..config },
            );
            assert_eq!(
                base.sinks, other.sinks,
                "sink sample streams must not depend on the pool size"
            );
            assert_eq!(base.trace, other.trace);
        }
    }

    #[test]
    fn env_threads_parses() {
        // Only checks the parser, not the environment (tests run in
        // parallel; mutating the process environment would race).
        assert_eq!(parse_threads("3"), 3);
        assert_eq!(parse_threads(" 0 "), 0);
        // A malformed override is a loud error, never a silent default.
        assert!(std::panic::catch_unwind(|| parse_threads("three")).is_err());
        assert!(std::panic::catch_unwind(|| parse_threads("")).is_err());
    }

    #[test]
    fn panicking_kernel_fails_loudly_instead_of_hanging() {
        // A kernel that unwinds on a worker thread must surface as a
        // scheduler panic naming the node — never as a silent deadlock on
        // the firing slot.
        let compiled = compile(PIPELINE, &registry(), &CompilerOptions::default()).unwrap();
        let graph = rtgraph::lower(&compiled);
        let mut lib = KernelLibrary::new();
        lib.register(
            "f",
            Box::new(|| Kernel::Custom(Box::new(|_, _| panic!("injected kernel failure")))),
        );
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(&graph, &lib, picos(0.01), &RtConfig::default())
        }));
        let err = result.expect_err("the runtime must propagate the kernel panic");
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            message.contains("panicked during a firing") && message.contains("injected"),
            "unexpected panic message: {message}"
        );
    }
}
