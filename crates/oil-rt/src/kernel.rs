//! Kernel bindings: the actual computation a node firing performs.
//!
//! OIL is a coordination language — the values flowing through the buffers
//! are produced by side-effect-free functions. The simulator only tracks
//! token *origins*; the runtime additionally executes a kernel per firing so
//! its outputs are real sample streams. A [`KernelLibrary`] maps the
//! coordinated function names of a program to kernel factories; unmapped
//! functions get a deterministic synthetic kernel, so every program —
//! including the randomly generated ones — executes with real values.
//!
//! Kernel state (FIR delay lines, oscillator phases, …) is per node and
//! travels with the firing job through the work-stealing pool; because a
//! node's firings are strictly ordered by the virtual clock, the value
//! streams are identical at every thread count.

use oil_dsp::{CompositeSignal, Decimator, FirFilter, Mixer, RationalResampler, ToneGenerator};
use std::collections::BTreeMap;

/// The computation performed by one node, with its cross-firing state.
pub enum Kernel {
    /// Deterministic synthetic mixing: a keyed arithmetic hash of the input
    /// values and the firing counter. The default for functions without a
    /// registered DSP implementation.
    Synthetic {
        /// Mixing key (derived from the function name).
        key: u64,
        /// Firings so far.
        n: u64,
    },
    /// A FIR filter applied samplewise (1 output per input; the last input's
    /// response when the firing consumes a burst).
    Fir(FirFilter),
    /// An integer decimator: a burst of `factor` inputs becomes one output.
    Decimate(Decimator),
    /// A polyphase rational resampler (e.g. the PAL video path's 16 → 10).
    Resample(RationalResampler),
    /// A mixer (frequency shifter), samplewise.
    Mix(Mixer),
    /// A user-provided kernel: `(inputs, out_len) -> outputs`. Must be
    /// deterministic for the runtime's thread-count invariance to hold.
    Custom(CustomKernel),
}

/// The boxed signature of a [`Kernel::Custom`] implementation.
pub type CustomKernel = Box<dyn FnMut(&[f64], usize) -> Vec<f64> + Send>;

impl Kernel {
    /// Execute one firing: consume `inputs` (all reads, flattened in read
    /// order) and produce `out_len` output values. Kernels that naturally
    /// produce fewer values are padded with their last value (or silence);
    /// longer outputs are truncated — the coordination layer, not the
    /// kernel, owns the rates.
    pub fn fire(&mut self, inputs: &[f64], out_len: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(out_len);
        self.fire_extend(inputs, out_len, &mut out);
        out
    }

    /// As [`Self::fire`], appending the firing's `out_len` values onto a
    /// caller-provided buffer instead of allocating a fresh `Vec`. The
    /// pad/truncate rate discipline applies to the appended region only, so
    /// a replay loop can stack many firings into one allocation.
    pub fn fire_extend(&mut self, inputs: &[f64], out_len: usize, out: &mut Vec<f64>) {
        let start = out.len();
        match self {
            Kernel::Synthetic { key, n } => {
                let mut acc = 0x9E37_79B9_7F4A_7C15u64 ^ *key;
                for &x in inputs {
                    acc = acc
                        .rotate_left(17)
                        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                        .wrapping_add(x.to_bits());
                }
                let base = *n;
                *n += 1;
                out.extend((0..out_len).map(|k| {
                    let h = acc
                        .wrapping_add((base << 8) | k as u64)
                        .wrapping_mul(0x94D0_49BB_1331_11EB);
                    // Map to [-1, 1) so synthetic streams look like audio.
                    (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
                }));
            }
            Kernel::Fir(f) => f.process_block_into(inputs, out),
            Kernel::Decimate(d) => d.process_into(inputs, out),
            Kernel::Resample(r) => {
                for &x in inputs {
                    r.push_each(x, |y| out.push(y));
                }
            }
            Kernel::Mix(m) => out.extend(inputs.iter().map(|&x| m.push(x))),
            Kernel::Custom(f) => out.extend(f(inputs, out_len)),
        }
        match (out.len() - start).cmp(&out_len) {
            std::cmp::Ordering::Greater => out.truncate(start + out_len),
            std::cmp::Ordering::Less => {
                // Pad with the last value *this firing* emitted (or silence).
                let pad = if out.len() > start {
                    out[out.len() - 1]
                } else {
                    0.0
                };
                out.resize(start + out_len, pad);
            }
            std::cmp::Ordering::Equal => {}
        }
    }

    /// Execute `firings` consecutive firings in one call: firing `j`
    /// consumes `inputs[j·in_len .. (j+1)·in_len]` and contributes
    /// `out_len` values at `result[j·out_len ..]`. **Bit-identical** to
    /// `firings` separate [`Self::fire`] calls — the fast paths below only
    /// apply where the kernel's natural block processing is the same
    /// per-sample state march (samplewise filters, phase-aligned
    /// decimators/resamplers whose chunk output counts match `out_len`
    /// exactly); everything else falls back to the per-firing loop. The
    /// static-order engine uses this to amortise the per-firing call and
    /// allocation cost over a scheduled run — its schedule proves the run's
    /// tokens exist up front, which a dynamic engine must re-check per
    /// firing.
    pub fn fire_block(
        &mut self,
        inputs: &[f64],
        firings: usize,
        in_len: usize,
        out_len: usize,
    ) -> Vec<f64> {
        let mut out = Vec::with_capacity(firings * out_len);
        self.fire_block_into(inputs, firings, in_len, out_len, &mut out);
        out
    }

    /// As [`Self::fire_block`], appending into a caller-provided buffer so
    /// a replay loop can reuse one allocation across runs.
    pub fn fire_block_into(
        &mut self,
        inputs: &[f64],
        firings: usize,
        in_len: usize,
        out_len: usize,
        out: &mut Vec<f64>,
    ) {
        debug_assert_eq!(inputs.len(), firings * in_len);
        out.reserve(firings * out_len);
        match self {
            // Samplewise kernels: block processing is the identical state
            // march, one output per input. The FIR block path additionally
            // runs the whole window sweep through the multi-output SIMD
            // kernel (bit-identical to the push loop).
            Kernel::Fir(f) if in_len == out_len => {
                f.process_block_into(inputs, out);
            }
            Kernel::Mix(m) if in_len == out_len => {
                out.extend(inputs.iter().map(|&x| m.push(x)));
            }
            // An aligned decimator consuming whole windows per firing emits
            // exactly `out_len` per chunk, so the concatenation is the
            // per-firing result; the block path advances the silent stretches
            // with memcpys.
            Kernel::Decimate(d) if d.aligned() && d.factor > 0 && in_len == out_len * d.factor => {
                d.process_into(inputs, out);
            }
            // An aligned rational resampler whose per-firing phase cycle is
            // whole (`in·up` divisible by `down`) emits exactly
            // `in·up/down = out_len` per chunk.
            Kernel::Resample(r)
                if r.aligned()
                    && r.down > 0
                    && (in_len * r.up).is_multiple_of(r.down)
                    && in_len * r.up == out_len * r.down =>
            {
                for &x in inputs {
                    r.push_each(x, |y| out.push(y));
                }
            }
            // The synthetic kernel is defined per firing; loop it without a
            // per-firing allocation.
            Kernel::Synthetic { key, n } => {
                for j in 0..firings {
                    let chunk = &inputs[j * in_len..(j + 1) * in_len];
                    let mut acc = 0x9E37_79B9_7F4A_7C15u64 ^ *key;
                    for &x in chunk {
                        acc = acc
                            .rotate_left(17)
                            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                            .wrapping_add(x.to_bits());
                    }
                    let base = *n;
                    *n += 1;
                    out.extend((0..out_len).map(|k| {
                        let h = acc
                            .wrapping_add((base << 8) | k as u64)
                            .wrapping_mul(0x94D0_49BB_1331_11EB);
                        (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
                    }));
                }
            }
            // Everything else (custom kernels, unaligned or padded shapes):
            // the per-firing semantics, verbatim, but appended in place so
            // the generic path allocates nothing per firing either.
            _ => {
                for j in 0..firings {
                    self.fire_extend(&inputs[j * in_len..(j + 1) * in_len], out_len, out);
                }
            }
        }
    }
}

/// A time-triggered source's sample generator. Pure sequences: sample `n` is
/// a function of `n` alone, so generator threads can run ahead of the
/// virtual clock without changing the stream.
pub enum SourceKernel {
    /// The synthetic PAL composite RF signal.
    Composite(Box<CompositeSignal>),
    /// A sine tone.
    Tone(ToneGenerator),
    /// A deterministic keyed pseudo-random stream in `[-1, 1)`.
    Synthetic {
        /// Mixing key (derived from the function name).
        key: u64,
        /// Samples produced so far.
        n: u64,
    },
}

impl SourceKernel {
    /// Produce the next sample.
    pub fn next_sample(&mut self) -> f64 {
        match self {
            SourceKernel::Composite(c) => c.next_sample(),
            SourceKernel::Tone(t) => t.next_sample(),
            SourceKernel::Synthetic { key, n } => {
                let h = (*key ^ *n)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(23)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                *n += 1;
                (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
            }
        }
    }

    /// Append the next `len` samples to `out` — bit-identical to a
    /// [`Self::next_sample`] loop, with the kernel dispatch hoisted out of
    /// the per-sample path (the static engine generates whole scheduled
    /// bursts at once).
    pub fn fill_into(&mut self, len: usize, out: &mut Vec<f64>) {
        match self {
            SourceKernel::Composite(c) => c.fill_into(len, out),
            SourceKernel::Tone(t) => {
                out.reserve(len);
                out.extend((0..len).map(|_| t.next_sample()));
            }
            SourceKernel::Synthetic { key, n } => {
                out.reserve(len);
                let k = *key;
                let mut i = *n;
                out.extend((0..len).map(|_| {
                    let h = (k ^ i)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .rotate_left(23)
                        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    i += 1;
                    (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
                }));
                *n = i;
            }
        }
    }
}

/// A stable hash deriving synthetic kernel keys from function names (the
/// same FNV-1a the trace digests use).
fn name_key(name: &str) -> u64 {
    let mut h = oil_sim::trace::Fnv1a::new();
    h.write_str(name);
    h.finish()
}

type KernelFactory = Box<dyn Fn() -> Kernel + Send + Sync>;
type SourceFactory = Box<dyn Fn() -> SourceKernel + Send + Sync>;

/// Maps coordinated function names to kernel factories. Functions without a
/// mapping execute synthetically (deterministic, name-keyed).
#[derive(Default)]
pub struct KernelLibrary {
    kernels: BTreeMap<String, KernelFactory>,
    sources: BTreeMap<String, SourceFactory>,
}

impl KernelLibrary {
    /// An empty library: every function synthetic.
    pub fn new() -> Self {
        KernelLibrary::default()
    }

    /// Register a node-kernel factory for `function`.
    pub fn register(&mut self, function: impl Into<String>, factory: KernelFactory) {
        self.kernels.insert(function.into(), factory);
    }

    /// Register a source-kernel factory for `function`.
    pub fn register_source(&mut self, function: impl Into<String>, factory: SourceFactory) {
        self.sources.insert(function.into(), factory);
    }

    /// A fresh kernel instance for `function`.
    pub fn instantiate(&self, function: &str) -> Kernel {
        match self.kernels.get(function) {
            Some(f) => f(),
            None => Kernel::Synthetic {
                key: name_key(function),
                n: 0,
            },
        }
    }

    /// A fresh source kernel for `function`.
    pub fn instantiate_source(&self, function: &str) -> SourceKernel {
        match self.sources.get(function) {
            Some(f) => f(),
            None => SourceKernel::Synthetic {
                key: name_key(function),
                n: 0,
            },
        }
    }

    /// The PAL decoder's kernel bindings (paper Fig. 11): the RF front end
    /// produces the synthetic composite signal; `mix` shifts the audio
    /// carrier to baseband; `LPF` low-passes and decimates by 25; `lpf_v`
    /// removes the audio band; `resamp` converts 16 video samples into 10;
    /// the `Audio` black box decimates by 8 to the speaker rate; the `Video`
    /// black box passes samples to the display.
    pub fn pal() -> Self {
        const RF_RATE: f64 = 6.4e6;
        let mut lib = KernelLibrary::new();
        lib.register_source(
            "receiveRF",
            Box::new(|| SourceKernel::Composite(Box::new(CompositeSignal::pal_default()))),
        );
        lib.register("mix", Box::new(|| Kernel::Mix(Mixer::new(2.0e6, RF_RATE))));
        lib.register(
            "LPF",
            Box::new(|| Kernel::Decimate(Decimator::new(25, RF_RATE, 63))),
        );
        lib.register(
            "lpf_v",
            Box::new(|| Kernel::Fir(FirFilter::low_pass(1.0e6, RF_RATE, 63))),
        );
        lib.register(
            "resamp",
            Box::new(|| Kernel::Resample(RationalResampler::new(10, 16, RF_RATE, 63))),
        );
        lib.register(
            "Audio",
            Box::new(|| Kernel::Decimate(Decimator::new(8, RF_RATE / 25.0, 63))),
        );
        lib.register(
            "Video",
            Box::new(|| Kernel::Fir(FirFilter::from_taps(vec![1.0]))),
        );
        lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_kernels_are_deterministic_and_shaped() {
        let mut a = KernelLibrary::new().instantiate("f0");
        let mut b = KernelLibrary::new().instantiate("f0");
        let out_a = a.fire(&[0.5, -0.25], 3);
        let out_b = b.fire(&[0.5, -0.25], 3);
        assert_eq!(out_a, out_b, "same function, same firing, same values");
        assert_eq!(out_a.len(), 3);
        assert!(out_a.iter().all(|v| (-1.0..1.0).contains(v)));
        // The firing counter advances the stream.
        let out_a2 = a.fire(&[0.5, -0.25], 3);
        assert_ne!(out_a, out_a2);
        // Different functions get different keys.
        let mut c = KernelLibrary::new().instantiate("g0");
        assert_ne!(c.fire(&[0.5, -0.25], 3), out_b);
    }

    #[test]
    fn dsp_kernels_respect_the_declared_rates() {
        let lib = KernelLibrary::pal();
        let mut lpf = lib.instantiate("LPF");
        assert_eq!(lpf.fire(&[0.1; 25], 1).len(), 1);
        let mut resamp = lib.instantiate("resamp");
        assert_eq!(resamp.fire(&[0.1; 16], 10).len(), 10);
        let mut mix = lib.instantiate("mix");
        assert_eq!(mix.fire(&[0.1], 1).len(), 1);
    }

    #[test]
    fn source_kernels_are_pure_sequences() {
        let lib = KernelLibrary::pal();
        let mut a = lib.instantiate_source("receiveRF");
        let mut b = lib.instantiate_source("receiveRF");
        for _ in 0..100 {
            assert_eq!(a.next_sample(), b.next_sample());
        }
        let mut s = lib.instantiate_source("src");
        let first: Vec<f64> = (0..8).map(|_| s.next_sample()).collect();
        let mut s2 = lib.instantiate_source("src");
        let again: Vec<f64> = (0..8).map(|_| s2.next_sample()).collect();
        assert_eq!(first, again);
    }
}
