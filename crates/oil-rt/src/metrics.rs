//! Always-on runtime metrics: lock-free per-worker cells, windowed sink
//! throughput, and live CTA-drift detection.
//!
//! Tracing (`crate::trace`) answers *what happened* after the fact, with a
//! bounded one-shot buffer. Metrics answer *how is it going* while it goes:
//! cheap enough to leave enabled for a whole soak run, readable while the
//! engines are still executing. The discipline matches the tracer's — each
//! engine holds an `Option<…>` hook and pays **one predictable branch**
//! per instrumented site when metrics are off; when on, every hot-path
//! write lands in the worker's own [`MetricCell`] (`Relaxed` atomics, no
//! sharing, no locks), and only the once-per-window sink bookkeeping takes
//! a mutex (cold by construction).
//!
//! The drift detector is the paper's polynomial-time analysis used as a
//! **live oracle**: the CTA predicts each sink's steady throughput
//! (`1/period`); the registry buckets sink consumption into fixed-size
//! windows and compares each window's observed rate against the
//! prediction. A window below `margin ×` predicted raises
//! [`DriftVerdict::Violated`] immediately — within one window of the
//! slowdown, not at end-of-run; a sustained monotone decline raises
//! [`DriftVerdict::Degrading`] while the rate is still above the floor.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Log2-ns histogram buckets (bucket `i` holds durations in
/// `[2^i, 2^(i+1))` ns, the last bucket everything longer) — the same
/// shape `trace::unit_stats` uses.
pub const HIST_BUCKETS: usize = 32;

/// Metrics knobs. Engines receive `Option<MetricsConfig>` — `None` is off
/// (the historical behaviour, zero overhead beyond one branch per site).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsConfig {
    /// Sink samples per drift window. Smaller windows detect drift sooner
    /// and cost one clock read per closure; the default keeps window
    /// closures far off the hot path.
    pub window: u64,
    /// Violation threshold: a window with
    /// `observed_hz < margin × predicted_hz` is a violation. 1.0 demands
    /// the CTA rate exactly; deployments wanting headroom alarms set it
    /// above 1.
    pub margin: f64,
    /// Consecutive strictly-declining windows (by more than
    /// [`DEGRADE_EPSILON`] relative) that raise
    /// [`DriftVerdict::Degrading`].
    pub degrading_windows: u32,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            window: 1 << 16,
            margin: 1.0,
            degrading_windows: 3,
        }
    }
}

/// Relative decline between consecutive windows below which the
/// degradation streak resets (noise floor).
pub const DEGRADE_EPSILON: f64 = 0.01;

/// One worker's metric cell. Written by its owning worker with `Relaxed`
/// atomics (single writer, so the counts are exact); readable from any
/// thread at any time.
#[derive(Debug, Default)]
pub struct MetricCell {
    firings: AtomicU64,
    firing_ns: AtomicU64,
    firing_hist: [AtomicU64; HIST_BUCKETS],
    parks: AtomicU64,
    backpressure_ns: AtomicU64,
    sink_samples: AtomicU64,
}

impl MetricCell {
    /// Record one firing (or one fused work item) of `dur_ns`.
    #[inline]
    pub fn record_firing(&self, dur_ns: u64) {
        self.firings.fetch_add(1, Ordering::Relaxed);
        self.firing_ns.fetch_add(dur_ns, Ordering::Relaxed);
        let bucket = (64 - dur_ns.leading_zeros() as usize)
            .saturating_sub(1)
            .min(HIST_BUCKETS - 1);
        self.firing_hist[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one park (worker went to sleep waiting for tokens/space).
    #[inline]
    pub fn record_park(&self) {
        self.parks.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `ns` spent blocked on a cross-worker buffer.
    #[inline]
    pub fn record_backpressure(&self, ns: u64) {
        self.backpressure_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record `n` samples consumed by a sink on this worker.
    #[inline]
    pub fn record_sink(&self, n: u64) {
        self.sink_samples.fetch_add(n, Ordering::Relaxed);
    }
}

/// One closed drift window of a sink.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowObs {
    /// Samples the window covers.
    pub samples: u64,
    /// Wall time the window took, ns.
    pub dur_ns: u64,
    /// `samples / dur_ns`, in Hz.
    pub observed_hz: f64,
}

/// The drift oracle's answer for one sink (or the whole run: the worst
/// sink). Ordered by severity: `Ok < Degrading < Violated`.
#[derive(Debug, Clone, PartialEq)]
pub enum DriftVerdict {
    /// Every window met the CTA-predicted rate.
    Ok,
    /// No violation yet, but the observed rate declined monotonically over
    /// the configured number of consecutive windows.
    Degrading {
        /// The declining per-window rates (Hz), oldest first.
        rates_hz: Vec<f64>,
    },
    /// A window fell below `margin × predicted_hz`.
    Violated {
        /// Index of the first violating window.
        window: usize,
        /// That window's observed rate, Hz.
        observed_hz: f64,
        /// The CTA-predicted rate it missed, Hz.
        predicted_hz: f64,
    },
}

impl DriftVerdict {
    fn severity(&self) -> u8 {
        match self {
            DriftVerdict::Ok => 0,
            DriftVerdict::Degrading { .. } => 1,
            DriftVerdict::Violated { .. } => 2,
        }
    }

    /// The worse of two verdicts.
    pub fn max(self, other: DriftVerdict) -> DriftVerdict {
        if other.severity() > self.severity() {
            other
        } else {
            self
        }
    }
}

/// Judge one sink's window history against its predicted rate. An empty
/// history is `Ok` — no evidence is not drift.
pub fn drift_verdict(
    windows: &[WindowObs],
    predicted_hz: f64,
    config: &MetricsConfig,
) -> DriftVerdict {
    for (i, w) in windows.iter().enumerate() {
        if w.observed_hz < config.margin * predicted_hz {
            return DriftVerdict::Violated {
                window: i,
                observed_hz: w.observed_hz,
                predicted_hz,
            };
        }
    }
    let need = config.degrading_windows.max(2) as usize;
    if windows.len() >= need {
        let tail = &windows[windows.len() - need..];
        let declining = tail
            .windows(2)
            .all(|p| p[1].observed_hz < p[0].observed_hz * (1.0 - DEGRADE_EPSILON));
        if declining {
            return DriftVerdict::Degrading {
                rates_hz: tail.iter().map(|w| w.observed_hz).collect(),
            };
        }
    }
    DriftVerdict::Ok
}

struct SinkState {
    name: String,
    predicted_hz: f64,
    windows: Vec<WindowObs>,
}

/// The shared registry: one cell per worker plus the per-sink window
/// histories. Engines hold it in an `Arc`; the caller keeps a clone and
/// can [`Self::snapshot`] at any time — including mid-run.
pub struct MetricsHub {
    engine: &'static str,
    config: MetricsConfig,
    epoch: Instant,
    cells: Vec<MetricCell>,
    sinks: Mutex<Vec<SinkState>>,
}

impl MetricsHub {
    /// A hub for `workers` workers of `engine`.
    pub fn new(engine: &'static str, workers: usize, config: MetricsConfig) -> Arc<MetricsHub> {
        Arc::new(MetricsHub {
            engine,
            config,
            epoch: Instant::now(),
            cells: (0..workers.max(1)).map(|_| MetricCell::default()).collect(),
            sinks: Mutex::new(Vec::new()),
        })
    }

    /// Nanoseconds since the hub's epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The metrics configuration the hub was built with.
    pub fn config(&self) -> &MetricsConfig {
        &self.config
    }

    /// Worker `w`'s cell (clamped into range so a late-registered helper
    /// thread can still record somewhere).
    #[inline]
    pub fn cell(&self, worker: usize) -> &MetricCell {
        &self.cells[worker.min(self.cells.len() - 1)]
    }

    /// Register a sink and get its windowing monitor (called by the worker
    /// that owns the sink, before its run loop).
    pub fn sink_monitor(
        self: &Arc<Self>,
        name: impl Into<String>,
        predicted_hz: f64,
    ) -> SinkMonitor {
        let mut sinks = self.sinks.lock().unwrap();
        let index = sinks.len();
        sinks.push(SinkState {
            name: name.into(),
            predicted_hz,
            windows: Vec::new(),
        });
        drop(sinks);
        SinkMonitor {
            hub: Arc::clone(self),
            index,
            window: self.config.window.max(1),
            since: 0,
            last_close_ns: self.now_ns(),
        }
    }

    fn push_window(&self, index: usize, obs: WindowObs) {
        let mut sinks = self.sinks.lock().unwrap();
        if let Some(s) = sinks.get_mut(index) {
            s.windows.push(obs);
        }
    }

    /// A consistent-enough snapshot of everything recorded so far: exact
    /// per-cell counts (single-writer `Relaxed` cells), the closed windows,
    /// and the drift verdicts they imply. Callable mid-run or at teardown.
    pub fn snapshot(&self) -> MetricsReport {
        let mut firings = 0u64;
        let mut firing_ns = 0u64;
        let mut firing_hist = [0u64; HIST_BUCKETS];
        let mut parks = 0u64;
        let mut backpressure_ns = 0u64;
        let mut sink_samples = 0u64;
        let mut worker_firing_ns = Vec::with_capacity(self.cells.len());
        for c in &self.cells {
            worker_firing_ns.push(c.firing_ns.load(Ordering::Relaxed));
            firings += c.firings.load(Ordering::Relaxed);
            firing_ns += c.firing_ns.load(Ordering::Relaxed);
            for (i, b) in c.firing_hist.iter().enumerate() {
                firing_hist[i] += b.load(Ordering::Relaxed);
            }
            parks += c.parks.load(Ordering::Relaxed);
            backpressure_ns += c.backpressure_ns.load(Ordering::Relaxed);
            sink_samples += c.sink_samples.load(Ordering::Relaxed);
        }
        let sinks = self.sinks.lock().unwrap();
        let mut verdict = DriftVerdict::Ok;
        let sink_reports: Vec<SinkMetrics> = sinks
            .iter()
            .map(|s| {
                let v = drift_verdict(&s.windows, s.predicted_hz, &self.config);
                verdict = verdict.clone().max(v.clone());
                SinkMetrics {
                    sink: s.name.clone(),
                    predicted_hz: s.predicted_hz,
                    windows: s.windows.clone(),
                    verdict: v,
                }
            })
            .collect();
        MetricsReport {
            engine: self.engine,
            workers: self.cells.len(),
            firings,
            firing_ns,
            firing_hist,
            parks,
            backpressure_ns,
            sink_samples,
            worker_firing_ns,
            sinks: sink_reports,
            verdict,
        }
    }
}

/// Per-sink window bookkeeping, owned by the worker running the sink. The
/// per-sample cost is one add and one compare; a clock is read only when a
/// window closes.
pub struct SinkMonitor {
    hub: Arc<MetricsHub>,
    index: usize,
    window: u64,
    since: u64,
    last_close_ns: u64,
}

impl SinkMonitor {
    /// Record one consumed sample.
    #[inline]
    pub fn record(&mut self) {
        self.since += 1;
        if self.since >= self.window {
            self.close();
        }
    }

    /// Record `n` consumed samples at once (fused block replay). A block
    /// spanning several windows closes one merged window — the rate over
    /// the merged span is what was actually observed.
    #[inline]
    pub fn record_block(&mut self, n: u64) {
        self.since += n;
        if self.since >= self.window {
            self.close();
        }
    }

    #[cold]
    fn close(&mut self) {
        let now = self.hub.now_ns();
        let dur_ns = now.saturating_sub(self.last_close_ns).max(1);
        let obs = WindowObs {
            samples: self.since,
            dur_ns,
            observed_hz: self.since as f64 * 1e9 / dur_ns as f64,
        };
        self.hub.push_window(self.index, obs);
        self.last_close_ns = now;
        self.since = 0;
    }

    /// Flush a final partial window at teardown (only if it carries at
    /// least one sample — an empty tail is no evidence).
    pub fn finish(mut self) {
        if self.since > 0 {
            self.close();
        }
    }
}

/// A sink's windowed observations plus its drift verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct SinkMetrics {
    /// Sink name.
    pub sink: String,
    /// CTA-predicted steady rate (`1/period`), Hz.
    pub predicted_hz: f64,
    /// Closed windows, oldest first.
    pub windows: Vec<WindowObs>,
    /// The oracle's answer for this sink.
    pub verdict: DriftVerdict,
}

/// Snapshot of the whole registry (see [`MetricsHub::snapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Which engine recorded.
    pub engine: &'static str,
    /// Worker cells merged into the totals.
    pub workers: usize,
    /// Work items recorded (firings, scan passes, or super-steps —
    /// whatever the engine's hot-path unit of work is).
    pub firings: u64,
    /// Total ns across recorded work items.
    pub firing_ns: u64,
    /// Log2-ns histogram of work-item durations.
    pub firing_hist: [u64; HIST_BUCKETS],
    /// Worker park events.
    pub parks: u64,
    /// Total ns workers spent blocked on cross-worker buffers.
    pub backpressure_ns: u64,
    /// Sink samples recorded into cells.
    pub sink_samples: u64,
    /// Per-worker busy ns across recorded work items (index = worker):
    /// the measured side of predicted-vs-measured utilization.
    pub worker_firing_ns: Vec<u64>,
    /// Per-sink windows and verdicts.
    pub sinks: Vec<SinkMetrics>,
    /// The worst per-sink verdict.
    pub verdict: DriftVerdict,
}

impl MetricsReport {
    /// The `q`-quantile (0..=1) of work-item duration, as the upper bound
    /// of the log2 bucket the quantile falls in (ns). 0 when nothing was
    /// recorded.
    pub fn firing_quantile_ns(&self, q: f64) -> u64 {
        let total: u64 = self.firing_hist.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &n) in self.firing_hist.iter().enumerate() {
            cum += n;
            if cum >= target {
                return 1u64 << (i + 1).min(63);
            }
        }
        1u64 << 63
    }

    /// Per-worker measured utilization over a run that took `wall_ns`:
    /// each worker's busy ns divided by the wall time. The measured
    /// counterpart of a static schedule's predicted per-worker
    /// utilization.
    pub fn measured_utilization(&self, wall_ns: u64) -> Vec<f64> {
        let wall = wall_ns.max(1) as f64;
        self.worker_firing_ns
            .iter()
            .map(|&ns| ns as f64 / wall)
            .collect()
    }

    /// One human line per run: the always-on health summary.
    pub fn summary_line(&self) -> String {
        let verdict = match &self.verdict {
            DriftVerdict::Ok => "ok".to_string(),
            DriftVerdict::Degrading { rates_hz } => {
                format!("DEGRADING({} windows)", rates_hz.len())
            }
            DriftVerdict::Violated {
                window,
                observed_hz,
                predicted_hz,
            } => format!(
                "VIOLATED(window {window}: {observed_hz:.0} Hz < predicted {predicted_hz:.0} Hz)"
            ),
        };
        format!(
            "metrics[{}x{}]: {} items p50={}ns p99={}ns parks={} backpressure={}ns drift={}",
            self.engine,
            self.workers,
            self.firings,
            self.firing_quantile_ns(0.50),
            self.firing_quantile_ns(0.99),
            self.parks,
            self.backpressure_ns,
            verdict
        )
    }

    /// The snapshot as a hand-rolled JSON document (the vendored serde is
    /// a stub), for artifact upload and offline comparison.
    pub fn summary_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"engine\": \"{}\",\n  \"workers\": {},\n  \"firings\": {},\n  \
             \"firing_ns\": {},\n  \"firing_p50_ns\": {},\n  \"firing_p90_ns\": {},\n  \
             \"firing_p99_ns\": {},\n  \"parks\": {},\n  \"backpressure_ns\": {},\n  \
             \"sink_samples\": {},\n",
            crate::trace::json_escape(self.engine),
            self.workers,
            self.firings,
            self.firing_ns,
            self.firing_quantile_ns(0.50),
            self.firing_quantile_ns(0.90),
            self.firing_quantile_ns(0.99),
            self.parks,
            self.backpressure_ns,
            self.sink_samples,
        ));
        out.push_str(&format!(
            "  \"verdict\": \"{}\",\n  \"sinks\": [\n",
            verdict_tag(&self.verdict)
        ));
        for (i, s) in self.sinks.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "    {{\"sink\": \"{}\", \"predicted_hz\": {:.3}, \"verdict\": \"{}\", \
                 \"windows\": [",
                crate::trace::json_escape(&s.sink),
                s.predicted_hz,
                verdict_tag(&s.verdict)
            ));
            for (j, w) in s.windows.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"samples\": {}, \"dur_ns\": {}, \"observed_hz\": {:.3}}}",
                    w.samples, w.dur_ns, w.observed_hz
                ));
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn verdict_tag(v: &DriftVerdict) -> &'static str {
    match v {
        DriftVerdict::Ok => "ok",
        DriftVerdict::Degrading { .. } => "degrading",
        DriftVerdict::Violated { .. } => "violated",
    }
}

/// Read the `OIL_RT_METRICS` toggle from the environment (unset = off; the
/// same `1/0/true/false/on/off` forms — and the same loudness on junk — as
/// `OIL_RT_TRACE`). Engines never read the environment themselves; callers
/// thread the resulting config through
/// [`crate::RtConfig`]/[`crate::SelfTimedConfig`]/[`crate::StaticConfig`].
pub fn env_metrics() -> Option<MetricsConfig> {
    match std::env::var("OIL_RT_METRICS") {
        Ok(v) => parse_metrics(&v),
        Err(_) => None,
    }
}

/// Parse an `OIL_RT_METRICS` value (loud on junk, like
/// `trace::parse_trace`).
pub fn parse_metrics(raw: &str) -> Option<MetricsConfig> {
    match raw.trim() {
        "1" | "true" | "on" => Some(MetricsConfig::default()),
        "0" | "false" | "off" | "" => None,
        other => panic!("OIL_RT_METRICS must be one of 1/0/true/false/on/off, got `{other}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window: u64) -> MetricsConfig {
        MetricsConfig {
            window,
            ..MetricsConfig::default()
        }
    }

    #[test]
    fn cells_accumulate_and_snapshot_merges() {
        let hub = MetricsHub::new("test", 2, cfg(1024));
        hub.cell(0).record_firing(100);
        hub.cell(0).record_firing(1000);
        hub.cell(1).record_firing(10);
        hub.cell(1).record_park();
        hub.cell(1).record_backpressure(77);
        hub.cell(0).record_sink(5);
        let r = hub.snapshot();
        assert_eq!(r.firings, 3);
        assert_eq!(r.firing_ns, 1110);
        assert_eq!(r.parks, 1);
        assert_eq!(r.backpressure_ns, 77);
        assert_eq!(r.sink_samples, 5);
        assert_eq!(r.verdict, DriftVerdict::Ok);
        assert!(r.firing_quantile_ns(0.99) >= 1024);
    }

    #[test]
    fn windows_close_on_sample_count_and_carry_rates() {
        let hub = MetricsHub::new("test", 1, cfg(100));
        let mut mon = hub.sink_monitor("sink", 1.0);
        for _ in 0..250 {
            mon.record();
        }
        mon.finish();
        let r = hub.snapshot();
        assert_eq!(r.sinks.len(), 1);
        // 100 + 100 + 50 (flushed tail).
        let windows = &r.sinks[0].windows;
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].samples, 100);
        assert_eq!(windows[2].samples, 50);
        assert!(windows.iter().all(|w| w.observed_hz > 0.0));
    }

    #[test]
    fn block_records_merge_windows_instead_of_splitting() {
        let hub = MetricsHub::new("test", 1, cfg(100));
        let mut mon = hub.sink_monitor("sink", 1.0);
        mon.record_block(1000);
        mon.finish();
        let r = hub.snapshot();
        assert_eq!(r.sinks[0].windows.len(), 1);
        assert_eq!(r.sinks[0].windows[0].samples, 1000);
    }

    #[test]
    fn drift_verdict_flags_a_slow_window_immediately() {
        let config = cfg(100);
        let fast = WindowObs {
            samples: 100,
            dur_ns: 100,
            observed_hz: 1e9,
        };
        let slow = WindowObs {
            samples: 100,
            dur_ns: 1_000_000_000,
            observed_hz: 100.0,
        };
        assert_eq!(drift_verdict(&[], 1000.0, &config), DriftVerdict::Ok);
        assert_eq!(drift_verdict(&[fast], 1000.0, &config), DriftVerdict::Ok);
        match drift_verdict(&[fast, slow], 1000.0, &config) {
            DriftVerdict::Violated {
                window,
                observed_hz,
                predicted_hz,
            } => {
                assert_eq!(window, 1);
                assert_eq!(observed_hz, 100.0);
                assert_eq!(predicted_hz, 1000.0);
            }
            other => panic!("expected Violated, got {other:?}"),
        }
    }

    #[test]
    fn drift_verdict_reports_sustained_decline_as_degrading() {
        let config = MetricsConfig {
            window: 100,
            margin: 1.0,
            degrading_windows: 3,
        };
        let w = |hz: f64| WindowObs {
            samples: 100,
            dur_ns: 100,
            observed_hz: hz,
        };
        // Declining but still above predicted: Degrading, not Violated.
        let windows = [w(4000.0), w(3000.0), w(2000.0)];
        match drift_verdict(&windows, 1000.0, &config) {
            DriftVerdict::Degrading { rates_hz } => assert_eq!(rates_hz.len(), 3),
            other => panic!("expected Degrading, got {other:?}"),
        }
        // Flat tail: Ok.
        let flat = [w(4000.0), w(4000.0), w(4000.0)];
        assert_eq!(drift_verdict(&flat, 1000.0, &config), DriftVerdict::Ok);
    }

    #[test]
    fn summary_json_is_emitted_and_tagged() {
        let hub = MetricsHub::new("test", 1, cfg(10));
        let mut mon = hub.sink_monitor("s0", 42.0);
        mon.record_block(10);
        mon.finish();
        let json = hub.snapshot().summary_json();
        assert!(json.contains("\"engine\": \"test\""));
        assert!(json.contains("\"sink\": \"s0\""));
        assert!(json.contains("\"verdict\": \"ok\""));
    }

    #[test]
    fn parse_metrics_accepts_the_documented_forms() {
        assert!(parse_metrics("1").is_some());
        assert!(parse_metrics(" on ").is_some());
        assert!(parse_metrics("0").is_none());
        assert!(parse_metrics("off").is_none());
    }

    #[test]
    #[should_panic(expected = "OIL_RT_METRICS")]
    fn parse_metrics_rejects_junk_loudly() {
        parse_metrics("maybe");
    }
}
