//! Low-overhead runtime tracing and CTA-conformance telemetry.
//!
//! The paper's claim is that CTA *predicts* temporal behaviour — rates,
//! buffer levels, seam latency — in polynomial time. This module records
//! what actually happened so the prediction can be held to account at
//! runtime: per-worker event buffers of timestamped spans (unit firings,
//! fused super-steps, transition seams, parks, backpressure waits), ring
//! occupancy high-water marks against the CTA-proven capacities, and the
//! compile-phase timings of the schedule synthesis itself.
//!
//! ## Overhead discipline
//!
//! Tracing must never perturb what it observes:
//!
//! - **Disabled is a single branch.** Every engine stores an
//!   `Option<WorkerTracer>`; the hot paths test `if let Some(t)` and do
//!   nothing else. No clock reads, no allocation, no atomics.
//! - **Enabled writes are worker-local.** A [`WorkerTracer`] is owned
//!   exclusively by one worker thread: recording an event is a bounds
//!   check and a `Vec` push into pre-sized storage, never a lock or a
//!   shared cache line. Buffers are bounded ([`EVENTS_CAP`]); overflow
//!   increments a `dropped` counter instead of growing.
//! - **Clock reads stay off the fast path where possible.** Ring wait
//!   instrumentation ([`crate::ring::WaitStats`]) reads the clock only
//!   after the lock-free fast path has already failed — the blocked path
//!   is cold by construction.
//!
//! Because recording touches only worker-local memory, a traced run is
//! bit-identical to an untraced run on every differential oracle; the
//! `trace_differential` suite proves it on the corpus.
//!
//! ## Exporters
//!
//! [`TraceReport::summary_json`] emits a stable JSON summary (per-unit
//! firing histograms, per-ring high-water vs proven capacity, park/steal/
//! backpressure counts, and — when given a [`RateConformance`] — the
//! observed-vs-predicted sink rates with their verdict).
//! [`TraceReport::chrome_trace_json`] emits Chrome trace-event format:
//! one track per worker plus a compiler track, loadable directly in
//! Perfetto or `chrome://tracing`.

use std::time::Instant;

use crate::measure::RateConformance;
use crate::ring::WaitStats;

/// Per-worker event capacity. Beyond this, events are counted as dropped
/// rather than grown: a trace buffer that reallocates mid-run would put
/// allocator traffic on the measured path.
pub const EVENTS_CAP: usize = 1 << 16;

/// What a recorded event describes. Spans carry a duration; instants
/// record a point in time (duration zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A unit firing pass (span); `arg` = worker-local unit index.
    Firing,
    /// A fused super-step replay (span); `arg` = worker-local unit index
    /// of the head stage.
    SuperStep,
    /// A mode-transition seam — the drain/fill program between two modes
    /// (span); `arg` packs `(from << 16) | to`.
    Seam,
    /// A mode switch took effect (instant); `arg` = the new arm.
    ModeSwitch,
    /// A worker parked on the idle condvar (span over the blocked wait).
    Park,
    /// A worker woke from a park (instant).
    Unpark,
    /// A quiescence census completed on this worker (instant);
    /// `arg` = 1 when the census diagnosed deadlock.
    Census,
    /// A ring push/pop blocked on a full/empty SPSC crossing (span);
    /// `arg` = global buffer index.
    Backpressure,
}

/// One recorded event: nanoseconds since the run epoch, duration, kind
/// and a kind-specific argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Start, in nanoseconds since the engine's epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (zero for instants).
    pub dur_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload (see [`EventKind`]).
    pub arg: u32,
}

/// The per-worker recorder. Owned exclusively by one worker thread; the
/// engine collects it at teardown.
#[derive(Debug)]
pub struct WorkerTracer {
    epoch: Instant,
    events: Vec<TraceEvent>,
    dropped: u64,
    /// Blocked-path statistics from the rings this worker touches.
    pub wait: WaitStats,
    /// Condvar parks taken by this worker (self-timed idle protocol).
    pub parks: u64,
    /// Wakes from those parks.
    pub unparks: u64,
    /// Per global buffer: highest producer-side occupancy this worker
    /// observed right after one of its own pushes.
    pub highwater: Vec<u32>,
}

impl WorkerTracer {
    /// A tracer sharing `epoch` with its sibling workers (one epoch per
    /// run keeps all tracks on one timeline) and tracking `n_buffers`
    /// occupancy high-water marks.
    pub fn new(epoch: Instant, n_buffers: usize) -> Self {
        WorkerTracer {
            epoch,
            events: Vec::with_capacity(EVENTS_CAP.min(1 << 12)),
            dropped: 0,
            wait: WaitStats::default(),
            parks: 0,
            unparks: 0,
            highwater: vec![0; n_buffers],
        }
    }

    /// Nanoseconds since the run epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    #[inline]
    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < EVENTS_CAP {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Record a span that started at `start_ns` (from [`Self::now_ns`])
    /// and ends now.
    #[inline]
    pub fn span(&mut self, kind: EventKind, arg: u32, start_ns: u64) {
        let end = self.now_ns();
        self.push(TraceEvent {
            ts_ns: start_ns,
            dur_ns: end.saturating_sub(start_ns),
            kind,
            arg,
        });
    }

    /// Record an instantaneous event.
    #[inline]
    pub fn instant(&mut self, kind: EventKind, arg: u32) {
        let ts_ns = self.now_ns();
        self.push(TraceEvent {
            ts_ns,
            dur_ns: 0,
            kind,
            arg,
        });
    }

    /// Record a backpressure span on global buffer `b` retroactively: the
    /// wait of `dur_ns` just ended, so the span ran from `now - dur_ns` to
    /// now. Used by engines that learn the blocked duration only from the
    /// [`WaitStats`] delta around a ring call.
    #[inline]
    pub fn backpressure(&mut self, b: u32, dur_ns: u64) {
        let end = self.now_ns();
        self.push(TraceEvent {
            ts_ns: end.saturating_sub(dur_ns),
            dur_ns,
            kind: EventKind::Backpressure,
            arg: b,
        });
    }

    /// Note a post-push occupancy `level` on global buffer `b`.
    #[inline]
    pub fn note_level(&mut self, b: usize, level: usize) {
        let hw = &mut self.highwater[b];
        *hw = (*hw).max(level as u32);
    }

    /// Events dropped after [`EVENTS_CAP`] filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }
}

/// Aggregated counters across all workers of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCounters {
    /// Condvar + ring parks across all workers.
    pub parks: u64,
    /// Wakes from condvar parks.
    pub unparks: u64,
    /// `yield_now` calls on blocked ring paths.
    pub spin_yields: u64,
    /// Ring operations that entered the blocked path.
    pub backpressure_waits: u64,
    /// Total nanoseconds spent blocked on rings.
    pub backpressure_wait_ns: u64,
    /// Successful steals (calendar engine's work-stealing pool).
    pub steals: u64,
    /// Mode switches observed.
    pub mode_switches: u64,
    /// Transition seams replayed.
    pub seams: u64,
    /// Total nanoseconds inside seam (drain/fill) spans.
    pub seam_latency_ns: u64,
    /// The longest single seam span.
    pub seam_latency_max_ns: u64,
}

/// One SPSC crossing (or local ring) in the telemetry: the CTA-proven
/// capacity next to the occupancy high-water mark the run reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingStat {
    /// Buffer name (from the runtime graph).
    pub name: String,
    /// CTA-proven capacity the engine sized the ring from.
    pub capacity: usize,
    /// Highest occupancy observed after a push.
    pub highwater: usize,
    /// Whether the buffer crosses a worker boundary (the only places the
    /// static/self-timed engines synchronise).
    pub crossing: bool,
}

/// One worker's resolved track: events plus the label table that
/// `Firing`/`SuperStep` args index into.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceTrack {
    /// Track name ("worker-0", "scheduler", ...).
    pub name: String,
    /// Recorded events (worker-local order).
    pub events: Vec<TraceEvent>,
    /// Unit labels; `Firing`/`SuperStep` events' `arg` indexes here.
    pub labels: Vec<String>,
}

/// The assembled observability report of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Which engine produced the run.
    pub engine: &'static str,
    /// Worker count.
    pub workers: usize,
    /// One track per worker (plus auxiliary tracks like "scheduler").
    pub tracks: Vec<TraceTrack>,
    /// Aggregated counters.
    pub counters: TraceCounters,
    /// Per-ring capacity vs high-water telemetry.
    pub rings: Vec<RingStat>,
    /// Compile-phase timings `(name, dur_ns)` of the schedule synthesis
    /// (static-order engine only; empty for the dynamic engines).
    pub phases: Vec<(String, u64)>,
    /// Events dropped across all workers after buffers filled.
    pub dropped: u64,
}

impl TraceReport {
    /// An empty report for `engine` with `workers` workers.
    pub fn new(engine: &'static str, workers: usize) -> Self {
        TraceReport {
            engine,
            workers,
            tracks: Vec::new(),
            counters: TraceCounters::default(),
            rings: Vec::new(),
            phases: Vec::new(),
            dropped: 0,
        }
    }

    /// Fold one worker's tracer into the report as a named track,
    /// aggregating its counters and wait statistics. Returns the
    /// tracer's high-water vector so the engine can merge ring levels.
    pub fn push_track(
        &mut self,
        name: impl Into<String>,
        labels: Vec<String>,
        tracer: WorkerTracer,
    ) -> Vec<u32> {
        let c = &mut self.counters;
        c.parks += tracer.parks + tracer.wait.parks;
        c.unparks += tracer.unparks;
        c.spin_yields += tracer.wait.spin_yields;
        c.backpressure_waits += tracer.wait.waits;
        c.backpressure_wait_ns += tracer.wait.wait_ns;
        for ev in &tracer.events {
            match ev.kind {
                EventKind::Seam => {
                    c.seams += 1;
                    c.seam_latency_ns += ev.dur_ns;
                    c.seam_latency_max_ns = c.seam_latency_max_ns.max(ev.dur_ns);
                }
                EventKind::ModeSwitch => c.mode_switches += 1,
                _ => {}
            }
        }
        self.dropped += tracer.dropped;
        self.tracks.push(TraceTrack {
            name: name.into(),
            events: tracer.events,
            labels,
        });
        tracer.highwater
    }

    /// Highest ring high-water mark across the run (0 with no rings).
    pub fn ring_highwater_max(&self) -> usize {
        self.rings.iter().map(|r| r.highwater).max().unwrap_or(0)
    }

    /// Condvar + ring parks across all workers.
    pub fn park_count(&self) -> u64 {
        self.counters.parks
    }

    /// Total nanoseconds blocked on ring backpressure.
    pub fn backpressure_wait_ns(&self) -> u64 {
        self.counters.backpressure_wait_ns
    }

    /// The longest observed transition seam, in nanoseconds (0 when the
    /// run never switched modes).
    pub fn seam_latency_observed_ns(&self) -> u64 {
        self.counters.seam_latency_max_ns
    }

    /// Every ring whose high-water mark stayed within its CTA-proven
    /// capacity? (The differential suite asserts this on the corpus.)
    pub fn rings_within_capacity(&self) -> bool {
        self.rings.iter().all(|r| r.highwater <= r.capacity)
    }

    fn event_name(&self, track: &TraceTrack, ev: &TraceEvent) -> String {
        let unit = |arg: u32| -> &str {
            track
                .labels
                .get(arg as usize)
                .map(String::as_str)
                .unwrap_or("unit?")
        };
        match ev.kind {
            EventKind::Firing => unit(ev.arg).to_string(),
            EventKind::SuperStep => format!("fused:{}", unit(ev.arg)),
            EventKind::Seam => format!("seam {}->{}", ev.arg >> 16, ev.arg & 0xFFFF),
            EventKind::ModeSwitch => format!("mode->{}", ev.arg),
            EventKind::Park => "park".to_string(),
            EventKind::Unpark => "unpark".to_string(),
            EventKind::Census => {
                if ev.arg == 1 {
                    "census:deadlock".to_string()
                } else {
                    "census".to_string()
                }
            }
            EventKind::Backpressure => {
                let name = self
                    .rings
                    .get(ev.arg as usize)
                    .map(|r| r.name.as_str())
                    .unwrap_or("?");
                format!("backpressure {name}")
            }
        }
    }

    /// Chrome trace-event JSON ("X"/"i" events, one track per worker,
    /// thread-name metadata, compile phases on their own track) — opens
    /// directly in Perfetto or `chrome://tracing`.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::with_capacity(1 << 16);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let emit = |out: &mut String, s: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&s);
        };
        let meta = |tid: usize, name: &str| {
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(name)
            )
        };
        // Track 0: compiler phases (cumulative timeline starting at 0).
        if !self.phases.is_empty() {
            emit(&mut out, meta(0, "oil-compiler"), &mut first);
            let mut ts = 0u64;
            for (name, dur_ns) in &self.phases {
                emit(
                    &mut out,
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"compile\",\"ph\":\"X\",\"pid\":1,\
                         \"tid\":0,\"ts\":{},\"dur\":{}}}",
                        json_escape(name),
                        micros(ts),
                        micros(*dur_ns)
                    ),
                    &mut first,
                );
                ts += dur_ns;
            }
        }
        for (i, track) in self.tracks.iter().enumerate() {
            let tid = i + 1;
            emit(&mut out, meta(tid, &track.name), &mut first);
            // Sort by (start, -duration) so enclosing spans precede the
            // spans they contain; Chrome requires no order but the
            // schema validator in the test suite checks stack shape.
            let mut events: Vec<&TraceEvent> = track.events.iter().collect();
            events.sort_by(|a, b| a.ts_ns.cmp(&b.ts_ns).then(b.dur_ns.cmp(&a.dur_ns)));
            for ev in events {
                let name = json_escape(&self.event_name(track, ev));
                let s = if ev.dur_ns == 0
                    && matches!(
                        ev.kind,
                        EventKind::ModeSwitch | EventKind::Census | EventKind::Unpark
                    ) {
                    format!(
                        "{{\"name\":\"{name}\",\"cat\":\"rt\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":1,\"tid\":{tid},\"ts\":{}}}",
                        micros(ev.ts_ns)
                    )
                } else {
                    format!(
                        "{{\"name\":\"{name}\",\"cat\":\"rt\",\"ph\":\"X\",\"pid\":1,\
                         \"tid\":{tid},\"ts\":{},\"dur\":{}}}",
                        micros(ev.ts_ns),
                        micros(ev.dur_ns)
                    )
                };
                emit(&mut out, s, &mut first);
            }
        }
        out.push_str("]}");
        out
    }

    /// Stable JSON summary: per-unit firing histograms, ring high-water
    /// vs CTA capacity, aggregate counters, compile phases and — when
    /// `conformance` is given — the observed-vs-predicted sink rates
    /// with their verdict.
    pub fn summary_json(&self, conformance: Option<&RateConformance>) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1 << 12);
        out.push_str("{\n  \"schema_version\": 1,\n");
        let _ = writeln!(out, "  \"engine\": \"{}\",", self.engine);
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        let c = &self.counters;
        let _ = writeln!(
            out,
            "  \"counters\": {{\"parks\": {}, \"unparks\": {}, \"spin_yields\": {}, \
             \"backpressure_waits\": {}, \"backpressure_wait_ns\": {}, \"steals\": {}, \
             \"mode_switches\": {}, \"seams\": {}, \"seam_latency_ns\": {}, \
             \"seam_latency_max_ns\": {}}},",
            c.parks,
            c.unparks,
            c.spin_yields,
            c.backpressure_waits,
            c.backpressure_wait_ns,
            c.steals,
            c.mode_switches,
            c.seams,
            c.seam_latency_ns,
            c.seam_latency_max_ns
        );
        out.push_str("  \"units\": [");
        let mut first = true;
        for track in &self.tracks {
            for (u, stat) in unit_stats(track) {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "\n    {{\"track\": \"{}\", \"name\": \"{}\", \"count\": {}, \
                     \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
                     \"hist_log2_ns\": [{}]}}",
                    json_escape(&track.name),
                    json_escape(track.labels.get(u).map(String::as_str).unwrap_or("unit?")),
                    stat.count,
                    stat.total_ns,
                    stat.min_ns,
                    stat.max_ns,
                    stat.hist
                        .iter()
                        .map(|n| n.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                );
            }
        }
        out.push_str("\n  ],\n  \"rings\": [");
        let mut first = true;
        for r in &self.rings {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"capacity\": {}, \"highwater\": {}, \
                 \"crossing\": {}}}",
                json_escape(&r.name),
                r.capacity,
                r.highwater,
                r.crossing
            );
        }
        out.push_str("\n  ],\n  \"phases\": [");
        let mut first = true;
        for (name, dur_ns) in &self.phases {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"dur_ns\": {}}}",
                json_escape(name),
                dur_ns
            );
        }
        out.push_str("\n  ],\n");
        if let Some(conf) = conformance {
            let _ = writeln!(
                out,
                "  \"conformance\": {{\"verdict\": \"{}\", \"threshold\": {}, \"sinks\": [",
                conf.verdict(),
                conf.threshold
            );
            for (i, s) in conf.sinks.iter().enumerate() {
                let sep = if i + 1 == conf.sinks.len() { "" } else { "," };
                let _ = writeln!(
                    out,
                    "    {{\"name\": \"{}\", \"predicted_hz\": {}, \"measured_hz\": {}, \
                     \"ratio\": {}}}{sep}",
                    json_escape(&s.name),
                    s.predicted_hz,
                    s.measured_hz.map_or("null".into(), |h| h.to_string()),
                    s.conformance_ratio()
                        .map_or("null".into(), |r| r.to_string())
                );
            }
            out.push_str("  ]},\n");
        }
        let _ = writeln!(out, "  \"dropped\": {}", self.dropped);
        out.push('}');
        out
    }
}

/// Per-unit firing statistics with a log2-bucketed duration histogram.
struct UnitStat {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    /// `hist[k]` counts spans with `dur_ns` in `[2^k, 2^(k+1))`
    /// (`hist[0]` includes zero-length spans).
    hist: [u64; 32],
}

fn unit_stats(track: &TraceTrack) -> Vec<(usize, UnitStat)> {
    let mut stats: Vec<Option<UnitStat>> = Vec::new();
    for ev in &track.events {
        if !matches!(ev.kind, EventKind::Firing | EventKind::SuperStep) {
            continue;
        }
        let u = ev.arg as usize;
        if stats.len() <= u {
            stats.resize_with(u + 1, || None);
        }
        let s = stats[u].get_or_insert(UnitStat {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            hist: [0; 32],
        });
        s.count += 1;
        s.total_ns += ev.dur_ns;
        s.min_ns = s.min_ns.min(ev.dur_ns);
        s.max_ns = s.max_ns.max(ev.dur_ns);
        let bucket = (64 - ev.dur_ns.leading_zeros() as usize)
            .saturating_sub(1)
            .min(31);
        s.hist[bucket] += 1;
    }
    stats
        .into_iter()
        .enumerate()
        .filter_map(|(u, s)| s.map(|s| (u, s)))
        .collect()
}

/// Microseconds with nanosecond fraction, as Chrome's `ts`/`dur` expect.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Minimal JSON string escaping for names (graph identifiers are plain,
/// but the exporters must stay well-formed for any input).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Parse an `OIL_RT_TRACE` value. Same discipline as `OIL_RT_THREADS`:
/// junk panics loudly instead of silently disabling the telemetry the
/// user asked for.
pub fn parse_trace(raw: &str) -> bool {
    match raw.trim() {
        "1" | "true" | "on" => true,
        "0" | "false" | "off" => false,
        other => panic!("OIL_RT_TRACE must be one of 1/0/true/false/on/off, got `{other}`"),
    }
}

/// Read the `OIL_RT_TRACE` toggle from the environment (unset = off).
/// Engines never read the environment themselves — callers thread this
/// into [`crate::RtConfig`]/[`crate::SelfTimedConfig`]/[`crate::StaticConfig`].
pub fn env_trace() -> bool {
    match std::env::var("OIL_RT_TRACE") {
        Ok(v) => parse_trace(&v),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn tracer() -> WorkerTracer {
        WorkerTracer::new(Instant::now() - Duration::from_micros(10), 2)
    }

    #[test]
    fn spans_and_instants_are_recorded_in_order() {
        let mut t = tracer();
        let t0 = t.now_ns();
        t.span(EventKind::Firing, 0, t0);
        t.instant(EventKind::ModeSwitch, 1);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].kind, EventKind::Firing);
        assert!(t.events()[1].ts_ns >= t.events()[0].ts_ns);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn overflow_counts_drops_instead_of_growing() {
        let mut t = tracer();
        for _ in 0..EVENTS_CAP + 7 {
            t.instant(EventKind::Unpark, 0);
        }
        assert_eq!(t.events().len(), EVENTS_CAP);
        assert_eq!(t.dropped(), 7);
    }

    #[test]
    fn high_water_marks_are_monotone() {
        let mut t = tracer();
        t.note_level(0, 3);
        t.note_level(0, 1);
        t.note_level(1, 5);
        assert_eq!(t.highwater, vec![3, 5]);
    }

    #[test]
    fn chrome_export_names_tracks_and_units() {
        let mut report = TraceReport::new("test", 1);
        let mut t = tracer();
        let t0 = t.now_ns();
        t.span(EventKind::Firing, 0, t0);
        t.instant(EventKind::ModeSwitch, 2);
        report.push_track("worker-0", vec!["fir".into()], t);
        let json = report.chrome_trace_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"worker-0\""));
        assert!(json.contains("\"fir\""));
        assert!(json.contains("\"mode->2\""));
    }

    #[test]
    fn summary_reports_rings_and_counters() {
        let mut report = TraceReport::new("test", 2);
        report.rings.push(RingStat {
            name: "b0".into(),
            capacity: 8,
            highwater: 5,
            crossing: true,
        });
        report.phases.push(("fusion".into(), 1234));
        let json = report.summary_json(None);
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"capacity\": 8"));
        assert!(json.contains("\"highwater\": 5"));
        assert!(json.contains("\"fusion\""));
        assert!(report.rings_within_capacity());
        assert_eq!(report.ring_highwater_max(), 5);
    }

    #[test]
    fn seam_spans_feed_the_latency_counters() {
        let mut report = TraceReport::new("test", 1);
        let mut t = tracer();
        t.push(TraceEvent {
            ts_ns: 10,
            dur_ns: 40,
            kind: EventKind::Seam,
            arg: (1 << 16) | 2,
        });
        t.push(TraceEvent {
            ts_ns: 100,
            dur_ns: 25,
            kind: EventKind::Seam,
            arg: (2 << 16) | 1,
        });
        t.instant(EventKind::ModeSwitch, 1);
        report.push_track("worker-0", Vec::new(), t);
        assert_eq!(report.counters.seams, 2);
        assert_eq!(report.counters.seam_latency_ns, 65);
        assert_eq!(report.seam_latency_observed_ns(), 40);
        assert_eq!(report.counters.mode_switches, 1);
    }

    #[test]
    fn parse_trace_accepts_the_documented_forms() {
        assert!(parse_trace("1"));
        assert!(parse_trace("true"));
        assert!(parse_trace(" on "));
        assert!(!parse_trace("0"));
        assert!(!parse_trace("false"));
        assert!(!parse_trace("off"));
    }

    #[test]
    #[should_panic(expected = "OIL_RT_TRACE")]
    fn parse_trace_rejects_junk_loudly() {
        parse_trace("yes please");
    }

    #[test]
    fn json_escape_keeps_exports_well_formed() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }
}
