//! The deterministic parallel execution engine.
//!
//! The engine executes a lowered [`RtGraph`] on real OS threads while
//! keeping the *observable* behaviour — per-buffer token traces, deadline
//! misses, overflows — bit-identical to the discrete-event simulator at
//! every thread count. The trick is the paper's own observation: OIL's
//! restrictions make temporal behaviour **data-independent** (rates are
//! static, guarded statements still fire), so scheduling and computation
//! separate cleanly:
//!
//! * a single **scheduler** replays virtual time: a calendar of
//!   `(time, kind, id)`-ordered events with the same documented
//!   tie-breaking rule as `oil_sim::network` (sources deliver, completing
//!   nodes commit, sinks consume; lower ids first) decides *when* every
//!   firing starts and completes;
//! * the **value plane** runs in parallel: each firing's kernel executes on
//!   the work-stealing pool ([`crate::pool`]) between its start and
//!   completion events, source generators run ahead on their own threads,
//!   and sink collectors aggregate on theirs, all plumbed through lock-free
//!   SPSC rings ([`crate::ring`]);
//! * the scheduler only ever *waits* for a kernel at the firing's completion
//!   event, so any number of independent firings overlap in wall-clock time
//!   while virtual time stays deterministic.
//!
//! Because a node's firings are totally ordered and every buffer push/pop
//! happens at a scheduler-chosen virtual instant, the value streams and the
//! token traces are pure functions of the graph — `tests/runtime_differential.rs`
//! holds the engine to bit-identical agreement with `oil-sim` over hundreds
//! of generated programs at 1, 2 and N threads.

use crate::kernel::{Kernel, KernelLibrary};
use crate::measure::{BufferValues, ValueTrace};
use crate::metrics::{MetricsConfig, MetricsHub, MetricsReport, SinkMonitor};
use crate::pool::WorkStealingPool;
use crate::ring::{self, Consumer, Producer};
use crate::trace::{EventKind, RingStat, TraceReport, WorkerTracer};
use oil_compiler::rtgraph::{RtGraph, RtNodeId, RtSinkId, RtSourceId};
use oil_dataflow::index::{Idx, IndexVec};
use oil_dataflow::taskgraph::ports_satisfied;
use oil_sim::time::picos_nearest;
use oil_sim::trace::{BufferTrace, ExecutionTrace};
use oil_sim::Picos;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration of a runtime execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtConfig {
    /// Worker threads for kernel execution; `0` uses the machine's available
    /// parallelism. The `OIL_RT_THREADS` environment variable (see
    /// [`env_threads`]) conventionally overrides this in test harnesses.
    pub threads: usize,
    /// Sink ticks ignored before misses are counted (pipeline warm-up), as
    /// in [`oil_sim::SimulationConfig`].
    pub warmup_ticks: u64,
    /// Record the full per-buffer token trace (tests); counters are always
    /// kept.
    pub record_traces: bool,
    /// Record the per-buffer *value* streams ([`crate::measure::ValueTrace`]).
    /// On by default (the differential oracles need them); benchmarks turn
    /// this off — a `Vec` push per pushed sample taxes every hot path.
    pub record_values: bool,
    /// Record scheduler trace events and ring telemetry ([`crate::trace`]).
    /// Off costs a single predictable branch per instrumentation point;
    /// recording writes only scheduler-local memory, so traces and value
    /// streams are bit-identical either way.
    pub trace: bool,
    /// Run with the always-on metrics registry ([`crate::metrics`]): the
    /// scheduler's event-step histogram, windowed sink throughput and the
    /// CTA drift detector. Same overhead discipline as `trace`.
    pub metrics: Option<MetricsConfig>,
}

impl Default for RtConfig {
    fn default() -> Self {
        RtConfig {
            threads: 0,
            warmup_ticks: 4,
            record_traces: true,
            record_values: true,
            trace: false,
            metrics: None,
        }
    }
}

/// The `OIL_RT_THREADS` environment override, if set.
///
/// A malformed value is a loud panic, not a silent fall-through to the
/// default: an override that does not apply is worse than no override
/// (matching the `OIL_RT_CONFORMANCE` / `OIL_RT_FUSION` validation
/// discipline). Parsing lives in [`parse_threads`] so the rejection path
/// is testable without mutating the process environment.
pub fn env_threads() -> Option<usize> {
    std::env::var("OIL_RT_THREADS")
        .ok()
        .map(|v| parse_threads(&v))
}

/// Parse an `OIL_RT_THREADS` value: a base-10 thread count (`0` means
/// "use the machine's available parallelism", as in [`RtConfig::threads`]).
/// Anything else panics — see [`env_threads`].
pub fn parse_threads(raw: &str) -> usize {
    raw.trim()
        .parse()
        .unwrap_or_else(|_| panic!("OIL_RT_THREADS must be a thread count (0 = auto), got `{raw}`"))
}

/// Sample stream collected at one sink.
#[derive(Debug, Clone, PartialEq)]
pub struct SinkStream {
    /// Sink name.
    pub name: String,
    /// Samples consumed.
    pub consumed: u64,
    /// Deadline misses (after warm-up).
    pub misses: u64,
    /// Worst observed end-to-end latency, in seconds.
    pub max_latency: f64,
    /// The consumed sample values, in order (capped at
    /// [`SINK_STREAM_CAP`]; `consumed` keeps the true count).
    pub values: Vec<f64>,
}

/// Upper bound on stored sink samples (counters keep counting beyond it).
pub const SINK_STREAM_CAP: usize = 1 << 16;

/// Everything one runtime execution observed.
#[derive(Debug, Clone, PartialEq)]
pub struct RtReport {
    /// Worker threads used.
    pub threads: usize,
    /// The observable trace (buffer pushes only when
    /// [`RtConfig::record_traces`]; source/sink counters always).
    pub trace: ExecutionTrace,
    /// Per-buffer value streams (recorded when [`RtConfig::record_values`]).
    /// For KPN-safe graphs these are schedule-invariant, so this is the
    /// reference the self-timed engine's prefix oracle compares against.
    pub values: ValueTrace,
    /// Per node: (name, completed firings).
    pub node_firings: Vec<(String, u64)>,
    /// Per buffer: (name, physical capacity, max occupancy). The physical
    /// capacity is the declared (CTA-sized) capacity plus one write burst
    /// per producing node: admission checks the declared capacity, but a
    /// completing firing commits unconditionally (space was checked when it
    /// was admitted), so concurrent producers can transiently exceed the
    /// declared value by at most their in-flight bursts — the same
    /// semantics as the simulator.
    pub buffers: Vec<(String, usize, usize)>,
    /// Per sink: the real output sample streams.
    pub sinks: Vec<SinkStream>,
    /// Work-stealing pool steals (observability).
    pub steals: u64,
    /// Wall-clock execution time.
    pub wall: Duration,
    /// Total tokens pushed across all buffers.
    pub tokens: u64,
    /// Scheduler event track and ring telemetry (`Some` iff
    /// [`RtConfig::trace`]).
    pub trace_report: Option<TraceReport>,
    /// Scheduler metric cell, per-sink windows and the drift verdict
    /// (`Some` iff [`RtConfig::metrics`]). Parks/backpressure stay 0 here:
    /// the calendar engine's single scheduler thread never blocks on a
    /// graph ring.
    pub metrics: Option<MetricsReport>,
}

impl RtReport {
    /// True if no sink missed a deadline and no source overflowed.
    pub fn meets_real_time_constraints(&self) -> bool {
        self.trace.total_misses() == 0 && self.trace.total_overflows() == 0
    }

    /// The collected sample stream of a sink (matched by name fragment).
    pub fn sink_values(&self, name: &str) -> Option<&[f64]> {
        self.sinks
            .iter()
            .find(|s| s.name.contains(name))
            .map(|s| s.values.as_slice())
    }
}

/// A token travelling through a buffer ring: the origin timestamp of the
/// source sample it derives from (the simulator's trace currency) plus the
/// actual sample value (the runtime's extra).
#[derive(Debug, Clone, Copy)]
struct Token {
    origin: Picos,
    value: f64,
}

/// A sample delivered to a sink collector.
struct SinkSample {
    origin: Picos,
    at: Picos,
    value: f64,
}

/// What a sink collector thread accumulated.
struct SinkCollect {
    consumed: u64,
    max_latency_ps: Picos,
    values: Vec<f64>,
}

/// What a firing job delivered: the outputs and the kernel coming home, or
/// the panic message of a kernel that unwound (the job catches the panic so
/// the scheduler fails loudly instead of parking forever on a slot the dead
/// worker can no longer fill).
type FiringResult = Result<(Vec<f64>, Kernel), String>;

struct FiringSlot {
    /// Fast-path flag: set with release ordering after `result` is filled,
    /// so the scheduler can spin briefly instead of paying a condvar
    /// round-trip per firing (kernel firings are often only microseconds).
    ready: AtomicBool,
    result: Mutex<Option<FiringResult>>,
    done: Condvar,
}

impl FiringSlot {
    fn new() -> Arc<Self> {
        Arc::new(FiringSlot {
            ready: AtomicBool::new(false),
            result: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    fn fill(&self, result: FiringResult) {
        *self.result.lock().expect("firing slot poisoned") = Some(result);
        self.ready.store(true, Ordering::Release);
        self.done.notify_one();
    }

    fn wait(&self) -> FiringResult {
        // Fast path: the kernel often finished long before its completion
        // event comes up, so a single flag check skips the lock-and-park.
        if !self.ready.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        let mut guard = self.result.lock().expect("firing slot poisoned");
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = self.done.wait(guard).expect("firing slot poisoned");
        }
    }
}

/// Render a caught panic payload for error messages.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Event kinds, ranked exactly like `oil_sim::network`'s documented
/// tie-breaking rule: sources deliver first, completing nodes commit second,
/// sinks consume last; within a kind, lower ids first.
const RANK_SOURCE: u8 = 0;
const RANK_COMPLETE: u8 = 1;
const RANK_SINK: u8 = 2;

#[derive(Debug, Clone, Copy)]
enum RtEvent {
    SourceTick(RtSourceId),
    NodeComplete(RtNodeId),
    SinkTick(RtSinkId),
}

/// The calendar: an ordered map keyed by `(time, rank, id)`. Deliberately a
/// different structure from the simulator's binary heap — the two engines
/// share only the documented ordering contract, not code.
#[derive(Default)]
struct Calendar {
    events: BTreeMap<(Picos, u8, u32), RtEvent>,
}

impl Calendar {
    fn schedule(&mut self, time: Picos, event: RtEvent) {
        let key = match event {
            RtEvent::SourceTick(i) => (time, RANK_SOURCE, i.index() as u32),
            RtEvent::NodeComplete(i) => (time, RANK_COMPLETE, i.index() as u32),
            RtEvent::SinkTick(i) => (time, RANK_SINK, i.index() as u32),
        };
        let previous = self.events.insert(key, event);
        debug_assert!(previous.is_none(), "double-scheduled event {key:?}");
    }

    fn pop(&mut self) -> Option<(Picos, RtEvent)> {
        self.events.pop_first().map(|((t, _, _), e)| (t, e))
    }
}

/// Execute `graph` for `duration` picoseconds of virtual time with the
/// kernels of `lib`.
///
/// # Panics
/// Panics if a response time or period cannot be placed on the picosecond
/// clock (impossible for compiler-lowered graphs).
pub fn execute(
    graph: &RtGraph,
    lib: &KernelLibrary,
    duration: Picos,
    config: &RtConfig,
) -> RtReport {
    let started = Instant::now();
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        config.threads
    };
    let mut pool = WorkStealingPool::new(threads);

    // --- Buffers: one SPSC ring each, pre-loaded with the initial tokens.
    //
    // Admission and source-tick space checks use the *declared* (CTA-sized)
    // capacity, exactly like the simulator. A completing firing, however,
    // commits its writes unconditionally — space was checked when it was
    // admitted, and other producers may have pushed since — so the declared
    // capacity can be transiently exceeded by at most one write burst per
    // producing node. The ring is physically sized for that worst case so
    // the lock-free push can never fail.
    let n_buffers = graph.buffers.len();
    let declared: Vec<usize> = graph
        .buffers
        .iter()
        .map(|b| b.capacity.max(b.initial_tokens).max(1))
        .collect();
    let mut inflight_headroom: Vec<usize> = vec![0; n_buffers];
    for n in &graph.nodes {
        for &(b, c) in &n.writes {
            inflight_headroom[b.index()] += c;
        }
    }
    let mut producers: Vec<Producer<Token>> = Vec::with_capacity(n_buffers);
    let mut consumers: Vec<Consumer<Token>> = Vec::with_capacity(n_buffers);
    let mut pushes: Vec<Vec<Picos>> = vec![Vec::new(); n_buffers];
    let mut values: Vec<BufferValues> = graph
        .buffers
        .iter()
        .map(|b| BufferValues {
            name: b.name.clone(),
            ..Default::default()
        })
        .collect();
    let mut max_occupancy: Vec<usize> = vec![0; n_buffers];
    let mut tokens_pushed: u64 = 0;
    for (i, b) in graph.buffers.iter().enumerate() {
        let (mut tx, rx) = ring::spsc::<Token>(declared[i] + inflight_headroom[i]);
        for _ in 0..b.initial_tokens {
            tx.push(Token {
                origin: 0,
                value: 0.0,
            })
            .expect("initial tokens fit the capacity");
            if config.record_traces {
                pushes[i].push(0);
            }
            if config.record_values {
                values[i].record(0.0);
            }
            tokens_pushed += 1;
        }
        max_occupancy[i] = b.initial_tokens;
        producers.push(tx);
        consumers.push(rx);
    }

    // --- Sources: a generator thread each, feeding an SPSC sample ring.
    // Each generator lowers its `alive` flag on exit (normal or panicking)
    // so a scheduler waiting for a sample fails loudly instead of spinning
    // on a ring no one will ever fill again.
    let stop = Arc::new(AtomicBool::new(false));
    let mut source_feeds: Vec<Consumer<f64>> = Vec::new();
    let mut source_alive: Vec<Arc<AtomicBool>> = Vec::new();
    let mut source_threads = Vec::new();
    for s in &graph.sources {
        let (tx, rx) = ring::spsc::<f64>(1024);
        let mut kernel = lib.instantiate_source(&s.function);
        let stop = Arc::clone(&stop);
        let alive = Arc::new(AtomicBool::new(true));
        source_alive.push(Arc::clone(&alive));
        source_threads.push(
            std::thread::Builder::new()
                .name(format!("oil-rt-source-{}", s.name))
                .spawn(move || {
                    // Lower the flag even if the generator kernel unwinds.
                    struct AliveGuard(Arc<AtomicBool>);
                    impl Drop for AliveGuard {
                        fn drop(&mut self) {
                            self.0.store(false, Ordering::SeqCst);
                        }
                    }
                    let _guard = AliveGuard(alive);
                    let mut tx = tx;
                    let mut pending: Option<f64> = None;
                    while !stop.load(Ordering::Relaxed) {
                        let v = pending.take().unwrap_or_else(|| kernel.next_sample());
                        // Blocking backpressure: spin briefly, then park
                        // until the scheduler drains a sample (or shutdown).
                        if let Err(back) = tx.push_wait(v, || stop.load(Ordering::Relaxed)) {
                            pending = Some(back);
                        }
                    }
                })
                .expect("spawning a source generator thread"),
        );
        source_feeds.push(rx);
    }

    // --- Sinks: a collector thread each, draining an SPSC sample ring.
    let mut sink_feeds: Vec<Producer<SinkSample>> = Vec::new();
    let mut sink_threads: Vec<std::thread::JoinHandle<SinkCollect>> = Vec::new();
    for s in &graph.sinks {
        let (tx, mut rx) = ring::spsc::<SinkSample>(1024);
        let stop = Arc::clone(&stop);
        sink_threads.push(
            std::thread::Builder::new()
                .name(format!("oil-rt-sink-{}", s.name))
                .spawn(move || {
                    let mut collect = SinkCollect {
                        consumed: 0,
                        max_latency_ps: 0,
                        values: Vec::new(),
                    };
                    loop {
                        match rx.pop_wait(|| stop.load(Ordering::Relaxed)) {
                            Some(sample) => {
                                collect.consumed += 1;
                                collect.max_latency_ps = collect
                                    .max_latency_ps
                                    .max(sample.at.saturating_sub(sample.origin));
                                if collect.values.len() < SINK_STREAM_CAP {
                                    collect.values.push(sample.value);
                                }
                            }
                            None => {
                                // Aborted: the scheduler stopped. Drain what
                                // is still buffered, then return.
                                while let Some(sample) = rx.pop() {
                                    collect.consumed += 1;
                                    collect.max_latency_ps = collect
                                        .max_latency_ps
                                        .max(sample.at.saturating_sub(sample.origin));
                                    if collect.values.len() < SINK_STREAM_CAP {
                                        collect.values.push(sample.value);
                                    }
                                }
                                return collect;
                            }
                        }
                    }
                })
                .expect("spawning a sink collector thread"),
        );
        sink_feeds.push(tx);
    }

    // --- Quantise the rational times onto the picosecond clock, with the
    // same checked conversion the simulator builder uses.
    let response_ps: IndexVec<RtNodeId, Picos> = graph
        .nodes
        .iter()
        .map(|n| {
            picos_nearest(n.response).unwrap_or_else(|e| panic!("response of `{}`: {e}", n.name))
        })
        .collect::<Vec<_>>()
        .into();
    let source_period: IndexVec<RtSourceId, Picos> = graph
        .sources
        .iter()
        .map(|s| picos_nearest(s.period).unwrap_or_else(|e| panic!("period of `{}`: {e}", s.name)))
        .collect::<Vec<_>>()
        .into();
    let sink_period: IndexVec<RtSinkId, Picos> = graph
        .sinks
        .iter()
        .map(|s| picos_nearest(s.period).unwrap_or_else(|e| panic!("period of `{}`: {e}", s.name)))
        .collect::<Vec<_>>()
        .into();

    // --- Scheduler state.
    let mut calendar = Calendar::default();
    for i in graph.sources.indices() {
        calendar.schedule(source_period[i], RtEvent::SourceTick(i));
    }
    for i in graph.sinks.indices() {
        calendar.schedule(sink_period[i], RtEvent::SinkTick(i));
    }
    let n_nodes = graph.nodes.len();
    let mut kernels: IndexVec<RtNodeId, Option<Kernel>> = graph
        .nodes
        .iter()
        .map(|n| Some(lib.instantiate(&n.function)))
        .collect::<Vec<_>>()
        .into();
    let mut in_flight: IndexVec<RtNodeId, Option<Arc<FiringSlot>>> = vec![None; n_nodes].into();
    let mut firing_origin: IndexVec<RtNodeId, Picos> = vec![0; n_nodes].into();
    let mut firings: IndexVec<RtNodeId, u64> = vec![0u64; n_nodes].into();
    let mut produced: IndexVec<RtSourceId, u64> = vec![0u64; graph.sources.len()].into();
    let mut overflows: IndexVec<RtSourceId, u64> = vec![0u64; graph.sources.len()].into();
    let mut consumed: IndexVec<RtSinkId, u64> = vec![0u64; graph.sinks.len()].into();
    let mut misses: IndexVec<RtSinkId, u64> = vec![0u64; graph.sinks.len()].into();
    let mut ticks: IndexVec<RtSinkId, u64> = vec![0u64; graph.sinks.len()].into();
    let mut now: Picos = 0;
    // Single-track tracing: the scheduler thread makes every decision, so
    // one tracer covers the engine. Kernel computation overlaps on the pool
    // but is observed from here (a firing's span ends at its completion
    // event). Firing args index nodes, then sources, then sinks.
    let mut tracer = config.trace.then(|| WorkerTracer::new(started, n_buffers));
    let (n_nodes_total, n_sources_total) = (graph.nodes.len(), graph.sources.len());
    // One metric cell: the scheduler thread makes every timed decision, so
    // the engine records into a single-worker hub (kernel computation
    // overlaps on the pool but is observed from here, like the tracer).
    let hub: Option<Arc<MetricsHub>> = config.metrics.map(|m| MetricsHub::new("calendar", 1, m));
    let mut sink_monitors: Vec<Option<SinkMonitor>> = graph
        .sinks
        .iter()
        .map(|s| {
            hub.as_ref()
                .map(|h| h.sink_monitor(s.name.clone(), s.period.recip().to_f64()))
        })
        .collect();

    // Push a token and maintain occupancy/trace accounting.
    macro_rules! push_token {
        ($buffer:expr, $token:expr) => {{
            let b: usize = $buffer;
            let token: Token = $token;
            producers[b]
                .push(token)
                .expect("space was checked before the firing was admitted");
            max_occupancy[b] = max_occupancy[b].max(producers[b].len());
            if config.record_traces {
                pushes[b].push(token.origin);
            }
            if config.record_values {
                values[b].record(token.value);
            }
            tokens_pushed += 1;
        }};
    }

    // Start every node that can fire at `now` (the simulator's data-driven
    // admission rule: enough values on every read, enough space on every
    // write, node not already firing; nodes scanned in id order to
    // fixpoint).
    macro_rules! admit_ready_firings {
        () => {
            loop {
                let mut progressed = false;
                for ni in graph.nodes.indices() {
                    if in_flight[ni].is_some() {
                        continue;
                    }
                    let node = &graph.nodes[ni];
                    let inputs_ready = ports_satisfied(&node.reads, |b| consumers[b.index()].len());
                    let outputs_ready = ports_satisfied(&node.writes, |b| {
                        declared[b.index()].saturating_sub(producers[b.index()].len())
                    });
                    if !(inputs_ready && outputs_ready) {
                        continue;
                    }
                    // Consume the inputs now (the firing occupies them for
                    // its whole response time) and track the oldest origin.
                    let mut origin = now;
                    let mut inputs = Vec::new();
                    for &(b, c) in &node.reads {
                        for _ in 0..c {
                            let token = consumers[b.index()]
                                .pop()
                                .expect("occupancy was checked above");
                            origin = origin.min(token.origin);
                            inputs.push(token.value);
                        }
                    }
                    firing_origin[ni] = origin;
                    let out_len = node.writes.iter().map(|&(_, c)| c).max().unwrap_or(0);
                    let mut kernel = kernels[ni].take().expect("kernel is home when idle");
                    let slot = FiringSlot::new();
                    in_flight[ni] = Some(Arc::clone(&slot));
                    pool.submit(Box::new(move || {
                        let fired = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            let outputs = kernel.fire(&inputs, out_len);
                            (outputs, kernel)
                        }));
                        slot.fill(fired.map_err(panic_message));
                    }));
                    calendar.schedule(now + response_ps[ni], RtEvent::NodeComplete(ni));
                    progressed = true;
                }
                if !progressed {
                    break;
                }
            }
        };
    }

    admit_ready_firings!();

    while let Some((time, event)) = calendar.pop() {
        if time > duration {
            break;
        }
        now = time;
        // One clock per timed interval: the tracer's when tracing (so span
        // and histogram agree), else the hub's.
        let t0 = match (tracer.as_ref(), hub.as_ref()) {
            (Some(t), _) => Some(t.now_ns()),
            (None, Some(h)) => Some(h.now_ns()),
            (None, None) => None,
        };
        match event {
            RtEvent::SourceTick(i) => {
                // Take the next sample from the generator thread (it runs
                // ahead; an empty ring just means it has not caught up
                // yet). A dead generator — its kernel panicked — can never
                // refill the ring, so fail loudly instead of spinning.
                let alive = &source_alive[i.index()];
                let stats = tracer.as_mut().map(|t| &mut t.wait);
                let value = source_feeds[i.index()]
                    .pop_wait_observed(|| !alive.load(Ordering::SeqCst), stats)
                    .unwrap_or_else(|| {
                        panic!(
                            "source kernel of `{}` panicked; its generator thread is gone",
                            graph.sources[i].name
                        )
                    });
                for &b in &graph.sources[i].outputs {
                    if declared[b.index()] > producers[b.index()].len() {
                        push_token!(b.index(), Token { origin: now, value });
                        produced[i] += 1;
                    } else {
                        overflows[i] += 1;
                    }
                }
                calendar.schedule(now + source_period[i], RtEvent::SourceTick(i));
            }
            RtEvent::SinkTick(i) => {
                let tick_number = ticks[i];
                ticks[i] += 1;
                let b = graph.sinks[i].input.index();
                if let Some(token) = consumers[b].pop() {
                    consumed[i] += 1;
                    if let Some(m) = sink_monitors[i.index()].as_mut() {
                        m.record();
                    }
                    if let Some(h) = hub.as_ref() {
                        h.cell(0).record_sink(1);
                    }
                    let sample = SinkSample {
                        origin: token.origin,
                        at: now,
                        value: token.value,
                    };
                    // The collector drains promptly; park briefly if it lags
                    // (it cannot abort: the collector thread outlives the
                    // scheduler loop by construction).
                    let stats = tracer.as_mut().map(|t| &mut t.wait);
                    sink_feeds[i.index()]
                        .push_wait_observed(sample, || false, stats)
                        .unwrap_or_else(|_| unreachable!("push_wait without abort cannot fail"));
                } else if tick_number >= config.warmup_ticks {
                    misses[i] += 1;
                }
                calendar.schedule(now + sink_period[i], RtEvent::SinkTick(i));
            }
            RtEvent::NodeComplete(ni) => {
                let slot = in_flight[ni].take().expect("completion of an idle node");
                let (outputs, kernel) = slot.wait().unwrap_or_else(|message| {
                    panic!(
                        "kernel of node `{}` panicked during a firing: {message}",
                        graph.nodes[ni].name
                    )
                });
                kernels[ni] = Some(kernel);
                let origin = firing_origin[ni];
                for &(b, c) in &graph.nodes[ni].writes {
                    for k in 0..c {
                        push_token!(
                            b.index(),
                            Token {
                                origin,
                                value: outputs.get(k).copied().unwrap_or(0.0)
                            }
                        );
                    }
                }
                firings[ni] += 1;
            }
        }
        if let Some(start) = t0 {
            if let Some(h) = hub.as_ref() {
                let now_ns = match tracer.as_ref() {
                    Some(t) => t.now_ns(),
                    None => h.now_ns(),
                };
                h.cell(0).record_firing(now_ns.saturating_sub(start));
            }
            if let Some(t) = tracer.as_mut() {
                let arg = match event {
                    RtEvent::NodeComplete(ni) => ni.index(),
                    RtEvent::SourceTick(i) => n_nodes_total + i.index(),
                    RtEvent::SinkTick(i) => n_nodes_total + n_sources_total + i.index(),
                };
                t.span(EventKind::Firing, arg as u32, start);
            }
        }
        admit_ready_firings!();
    }

    // --- Tear down the value plane and assemble the report.
    stop.store(true, Ordering::SeqCst);
    drop(source_feeds); // unblock generators waiting on a full ring
    for t in source_threads {
        let _ = t.join();
    }
    drop(sink_feeds);
    let collects: Vec<SinkCollect> = sink_threads
        .into_iter()
        .map(|t| t.join().expect("sink collector panicked"))
        .collect();
    let steals = pool.steals();
    drop(pool);
    for m in sink_monitors.drain(..).flatten() {
        m.finish();
    }

    let trace_report = tracer.map(|t| {
        let mut tr = TraceReport::new("calendar", threads);
        let labels: Vec<String> = graph
            .nodes
            .iter()
            .map(|n| n.name.clone())
            .chain(graph.sources.iter().map(|s| s.name.clone()))
            .chain(graph.sinks.iter().map(|s| s.name.clone()))
            .collect();
        tr.push_track("scheduler", labels, t);
        tr.counters.steals = steals;
        tr.rings = graph
            .buffers
            .iter()
            .enumerate()
            .map(|(i, b)| RingStat {
                name: b.name.clone(),
                // The physical bound this engine proves: declared (CTA)
                // capacity plus the in-flight commit headroom — the same
                // semantics as [`RtReport::buffers`].
                capacity: declared[i] + inflight_headroom[i],
                highwater: max_occupancy[i],
                // Every graph ring is pushed and popped by the scheduler
                // thread itself; only the source/sink conduits cross
                // threads, and they are not graph buffers.
                crossing: false,
            })
            .collect();
        tr
    });

    let trace = ExecutionTrace {
        buffers: if config.record_traces {
            graph
                .buffers
                .iter()
                .zip(pushes)
                .map(|(b, pushes)| BufferTrace {
                    name: b.name.clone(),
                    pushes,
                })
                .collect()
        } else {
            Vec::new()
        },
        sources: graph
            .sources
            .iter_enumerated()
            .map(|(i, s)| (s.name.clone(), produced[i], overflows[i]))
            .collect(),
        sinks: graph
            .sinks
            .iter_enumerated()
            .map(|(i, s)| (s.name.clone(), consumed[i], misses[i]))
            .collect(),
    };
    let sinks = graph
        .sinks
        .iter_enumerated()
        .zip(collects)
        .map(|((i, s), c)| {
            debug_assert_eq!(c.consumed, consumed[i], "collector saw every sample");
            SinkStream {
                name: s.name.clone(),
                consumed: consumed[i],
                misses: misses[i],
                max_latency: c.max_latency_ps as f64 / 1e12,
                values: c.values,
            }
        })
        .collect();
    RtReport {
        threads,
        trace,
        values: ValueTrace {
            buffers: if config.record_values {
                values
            } else {
                Vec::new()
            },
        },
        node_firings: graph
            .nodes
            .iter_enumerated()
            .map(|(i, n)| (n.name.clone(), firings[i]))
            .collect(),
        buffers: graph
            .buffers
            .iter()
            .enumerate()
            .map(|(i, b)| {
                (
                    b.name.clone(),
                    declared[i] + inflight_headroom[i],
                    max_occupancy[i],
                )
            })
            .collect(),
        sinks,
        steals,
        wall: started.elapsed(),
        tokens: tokens_pushed,
        trace_report,
        metrics: hub.as_ref().map(|h| h.snapshot()),
    }
}
