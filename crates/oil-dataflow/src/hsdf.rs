//! Homogeneous SDF (HSDF) expansion and Maximum Cycle Mean throughput.
//!
//! Exact throughput analysis of an SDF graph classically proceeds by
//! expanding it to its homogeneous equivalent (one node per firing of each
//! actor within an iteration) and computing the Maximum Cycle Mean of the
//! result. The expansion is **exponential in the rates** (the repetition
//! vector entries), which is exactly the cost the paper's CTA approach
//! avoids; the benchmark `scaling_poly_vs_exact` measures this difference.

use crate::index::{ActorId, IndexVec};
use crate::mcr::{CycleRatio, RatioGraph};
use crate::sdf::{SdfError, SdfGraph};
use serde::{Deserialize, Serialize};

/// A node of the homogeneous expansion: firing `k` of actor `actor`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Firing {
    /// The actor in the original SDF graph.
    pub actor: ActorId,
    /// Firing index within one iteration, `0 .. q[actor]`.
    pub index: u64,
}

/// An edge of the homogeneous expansion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HsdfEdge {
    /// Producing firing (node index).
    pub src: usize,
    /// Consuming firing (node index).
    pub dst: usize,
    /// Number of iteration boundaries crossed (initial tokens of the
    /// homogeneous edge).
    pub tokens: u64,
}

/// The homogeneous (single-rate) expansion of an SDF graph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HsdfGraph {
    /// One node per firing.
    pub firings: Vec<Firing>,
    /// Firing duration per node (copied from the original actor).
    pub durations: Vec<f64>,
    /// Precedence edges.
    pub edges: Vec<HsdfEdge>,
}

impl HsdfGraph {
    /// Expand `graph` into its homogeneous equivalent.
    ///
    /// For every SDF edge and every consuming firing, a dependency edge is
    /// added from the producing firing that supplies the last token that
    /// firing needs, following the standard token-counting construction.
    pub fn expand(graph: &SdfGraph) -> Result<Self, SdfError> {
        let q = graph.repetition_vector()?;
        let mut firings = Vec::new();
        let mut durations = Vec::new();
        let mut first_node: IndexVec<ActorId, usize> = IndexVec::from_elem(0, graph.actors.len());
        for (a, actor) in graph.actors.iter_enumerated() {
            first_node[a] = firings.len();
            for k in 0..q[a] {
                firings.push(Firing { actor: a, index: k });
                durations.push(actor.firing_duration);
            }
        }

        let mut edges = Vec::new();
        for e in &graph.edges {
            let p = e.production;
            let c = e.consumption;
            let d = e.initial_tokens;
            // Consuming firing j (0-based) of dst needs tokens
            // (j*c+1 ..= (j+1)*c). The token numbered t (1-based, counting
            // initial tokens first) is produced by firing ceil((t-d)/p) of
            // src (1-based) when t > d, possibly in an earlier iteration.
            // In steady state, consumer firing j (0-based) of dst in
            // iteration n needs the first n*q[dst]*c + (j+1)*c tokens on the
            // edge, of which d are initial. The last of those is produced by
            // global producer firing ceil((need)/p) (1-based, possibly in an
            // earlier iteration, possibly non-positive when the initial
            // tokens cover it for iteration 0 — the dependency then points
            // `iterations_back` iterations into the past, which becomes the
            // token count of the homogeneous edge). Dependencies on earlier
            // producer firings follow transitively from the producer's own
            // firing order, so one edge per consumer firing suffices.
            for j in 0..q[e.dst] {
                let need = ((j + 1) * c) as i128 - d as i128;
                // 1-based producer firing index relative to the consumer's
                // iteration; may be zero or negative.
                let prod_firing_1 = -((-need).div_euclid(p as i128));
                let k0 = prod_firing_1 - 1; // 0-based, may be negative
                let qsrc = q[e.src] as i128;
                let within = k0.rem_euclid(qsrc);
                let iterations_back = (within - k0) / qsrc;
                let src_node = first_node[e.src] + within as usize;
                let dst_node = first_node[e.dst] + j as usize;
                edges.push(HsdfEdge {
                    src: src_node,
                    dst: dst_node,
                    tokens: iterations_back as u64,
                });
            }
        }

        Ok(HsdfGraph {
            firings,
            durations,
            edges,
        })
    }

    /// Number of firings (nodes).
    pub fn node_count(&self) -> usize {
        self.firings.len()
    }

    /// Number of precedence edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Maximum cycle mean of the expansion: the minimum achievable iteration
    /// period of the original SDF graph under self-timed execution with
    /// unbounded buffers. Returns `None` for acyclic graphs (throughput is
    /// then bounded only by the source).
    pub fn maximum_cycle_mean(&self) -> Option<f64> {
        let mut g = RatioGraph::new(self.node_count());
        for e in &self.edges {
            // Cost: the firing duration of the source firing (time from the
            // start of src to the start of dst); transit: tokens.
            g.add_edge(e.src, e.dst, self.durations[e.src], e.tokens as f64);
        }
        match g.maximum_cycle_mean(1e-12) {
            CycleRatio::Ratio(r) => Some(r),
            CycleRatio::Acyclic => None,
            CycleRatio::Infeasible => Some(f64::INFINITY),
        }
    }

    /// Exact throughput in iterations per second implied by the MCM, or
    /// `None` if the graph is acyclic (unbounded by dependencies).
    pub fn throughput(&self) -> Option<f64> {
        self.maximum_cycle_mean()
            .map(|mcm| if mcm <= 0.0 { f64::INFINITY } else { 1.0 / mcm })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_graph_expands_to_itself() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1.0);
        let b = g.add_actor("b", 2.0);
        g.add_edge(a, b, 1, 1, 0);
        g.add_edge(b, a, 1, 1, 1);
        let h = HsdfGraph::expand(&g).unwrap();
        assert_eq!(h.node_count(), 2);
        assert_eq!(h.edge_count(), 2);
        // Cycle: duration 1 + 2 over 1 token -> MCM 3.
        let mcm = h.maximum_cycle_mean().unwrap();
        assert!((mcm - 3.0).abs() < 1e-9, "{mcm}");
        assert!((h.throughput().unwrap() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn fig2a_expansion_counts() {
        // q = (2, 3): 5 firings.
        let g = SdfGraph::rate_converter(3, 3, 2, 2, 4, 1.0);
        let h = HsdfGraph::expand(&g).unwrap();
        assert_eq!(h.node_count(), 5);
        assert!(h.edge_count() >= 5);
        let mcm = h.maximum_cycle_mean().unwrap();
        assert!(mcm.is_finite());
        assert!(mcm > 0.0);
    }

    #[test]
    fn expansion_size_grows_with_rates() {
        // a -n-> -1- b : q = (1, n); node count 1 + n.
        for n in [2u64, 8, 64] {
            let mut g = SdfGraph::new();
            let a = g.add_actor("a", 1.0);
            let b = g.add_actor("b", 1.0);
            g.add_edge(a, b, n, 1, 0);
            let h = HsdfGraph::expand(&g).unwrap();
            assert_eq!(h.node_count(), (1 + n) as usize);
        }
    }

    #[test]
    fn acyclic_graph_has_no_mcm() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1.0);
        let b = g.add_actor("b", 1.0);
        g.add_edge(a, b, 2, 1, 0);
        let h = HsdfGraph::expand(&g).unwrap();
        assert_eq!(h.maximum_cycle_mean(), None);
        assert_eq!(h.throughput(), None);
    }

    #[test]
    fn self_loop_actor_period() {
        // An actor with a self-loop and one token fires strictly sequentially.
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 0.5);
        g.add_edge(a, a, 1, 1, 1);
        let h = HsdfGraph::expand(&g).unwrap();
        let mcm = h.maximum_cycle_mean().unwrap();
        assert!((mcm - 0.5).abs() < 1e-9);
    }

    #[test]
    fn multi_rate_cycle_mcm_matches_hand_computation() {
        // f (dur 1) produces 2 to g (dur 1) which produces 1 back to f which
        // consumes 1; 2 initial tokens on the back edge.
        // q = (1, 2). Per iteration f fires once, g twice.
        let mut g = SdfGraph::new();
        let f = g.add_actor("f", 1.0);
        let gg = g.add_actor("g", 1.0);
        g.add_edge(f, gg, 2, 1, 0);
        g.add_edge(gg, f, 1, 2, 2);
        let h = HsdfGraph::expand(&g).unwrap();
        let mcm = h.maximum_cycle_mean().unwrap();
        // The critical cycle: f -> g(last firing) -> f with 1 iteration of
        // tokens: (1 + 1)/1 = 2... the exact value depends on token
        // placement; assert it is at least the bottleneck bound (2 time units
        // of g work per iteration) and finite.
        assert!(mcm >= 2.0 - 1e-9, "{mcm}");
        assert!(mcm.is_finite());
    }
}
