//! Homogeneous SDF (HSDF) expansion and Maximum Cycle Mean throughput.
//!
//! Exact throughput analysis of an SDF graph classically proceeds by
//! expanding it to its homogeneous equivalent (one node per firing of each
//! actor within an iteration) and computing the Maximum Cycle Mean of the
//! result. The expansion is **exponential in the rates** (the repetition
//! vector entries), which is exactly the cost the paper's CTA approach
//! avoids; the benchmark `scaling_poly_vs_exact` measures this difference.

use crate::index::{ActorId, IndexVec};
use crate::mcr::{CycleRatio, RatioGraph};
use crate::rational::Rational;
use crate::sdf::{SdfError, SdfGraph};
use serde::{Deserialize, Serialize};

/// The exact maximum cycle ratio of an HSDF graph (see
/// [`HsdfGraph::maximum_cycle_ratio_exact`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExactCycleRatio {
    /// The graph has no cycle: throughput is unconstrained by dependencies.
    Acyclic,
    /// Some cycle has positive total duration but zero tokens: no schedule
    /// exists (the graph deadlocks).
    Infeasible,
    /// The exact maximum over all cycles of `Σ duration / Σ tokens`, i.e. the
    /// minimum achievable iteration period in seconds.
    Ratio(Rational),
}

/// A node of the homogeneous expansion: firing `k` of actor `actor`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Firing {
    /// The actor in the original SDF graph.
    pub actor: ActorId,
    /// Firing index within one iteration, `0 .. q[actor]`.
    pub index: u64,
}

/// An edge of the homogeneous expansion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HsdfEdge {
    /// Producing firing (node index).
    pub src: usize,
    /// Consuming firing (node index).
    pub dst: usize,
    /// Number of iteration boundaries crossed (initial tokens of the
    /// homogeneous edge).
    pub tokens: u64,
}

/// The homogeneous (single-rate) expansion of an SDF graph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HsdfGraph {
    /// One node per firing.
    pub firings: Vec<Firing>,
    /// Firing duration per node (copied from the original actor).
    pub durations: Vec<f64>,
    /// Precedence edges.
    pub edges: Vec<HsdfEdge>,
}

impl HsdfGraph {
    /// Default node budget for [`Self::expand`]. The expansion is exponential
    /// in the rates, so adversarial rate ratios must be refused, not OOMed on.
    pub const DEFAULT_NODE_BUDGET: u64 = 1_000_000;

    /// Expand `graph` into its homogeneous equivalent.
    ///
    /// For every SDF edge and every consuming firing, a dependency edge is
    /// added from the producing firing that supplies the last token that
    /// firing needs, following the standard token-counting construction.
    pub fn expand(graph: &SdfGraph) -> Result<Self, SdfError> {
        Self::expand_with_budget(graph, Self::DEFAULT_NODE_BUDGET)
    }

    /// As [`Self::expand`], refusing graphs whose expansion would exceed
    /// `max_nodes` firing nodes with [`SdfError::BudgetExceeded`]. The node
    /// count is computed from the repetition vector *before* any allocation,
    /// so an over-budget graph costs O(|actors|), not O(expansion).
    pub fn expand_with_budget(graph: &SdfGraph, max_nodes: u64) -> Result<Self, SdfError> {
        let q = graph.repetition_vector()?;
        let nodes: Option<u64> = q.iter().try_fold(0u64, |acc, &n| acc.checked_add(n));
        match nodes {
            Some(n) if n <= max_nodes => {}
            _ => {
                return Err(SdfError::BudgetExceeded {
                    what: format!("HSDF expansion would exceed the node budget {max_nodes}"),
                })
            }
        }
        let mut firings = Vec::new();
        let mut durations = Vec::new();
        let mut first_node: IndexVec<ActorId, usize> = IndexVec::from_elem(0, graph.actors.len());
        for (a, actor) in graph.actors.iter_enumerated() {
            first_node[a] = firings.len();
            for k in 0..q[a] {
                firings.push(Firing { actor: a, index: k });
                durations.push(actor.firing_duration);
            }
        }

        let mut edges = Vec::new();
        for e in &graph.edges {
            let p = e.production;
            let c = e.consumption;
            let d = e.initial_tokens;
            // Consuming firing j (0-based) of dst needs tokens
            // (j*c+1 ..= (j+1)*c). The token numbered t (1-based, counting
            // initial tokens first) is produced by firing ceil((t-d)/p) of
            // src (1-based) when t > d, possibly in an earlier iteration.
            // In steady state, consumer firing j (0-based) of dst in
            // iteration n needs the first n*q[dst]*c + (j+1)*c tokens on the
            // edge, of which d are initial. The last of those is produced by
            // global producer firing ceil((need)/p) (1-based, possibly in an
            // earlier iteration, possibly non-positive when the initial
            // tokens cover it for iteration 0 — the dependency then points
            // `iterations_back` iterations into the past, which becomes the
            // token count of the homogeneous edge). Dependencies on earlier
            // producer firings follow transitively from the producer's own
            // firing order, so one edge per consumer firing suffices.
            for j in 0..q[e.dst] {
                let need = ((j + 1) * c) as i128 - d as i128;
                // 1-based producer firing index relative to the consumer's
                // iteration; may be zero or negative.
                let prod_firing_1 = -((-need).div_euclid(p as i128));
                let k0 = prod_firing_1 - 1; // 0-based, may be negative
                let qsrc = q[e.src] as i128;
                let within = k0.rem_euclid(qsrc);
                let iterations_back = (within - k0) / qsrc;
                let src_node = first_node[e.src] + within as usize;
                let dst_node = first_node[e.dst] + j as usize;
                edges.push(HsdfEdge {
                    src: src_node,
                    dst: dst_node,
                    tokens: iterations_back as u64,
                });
            }
        }

        Ok(HsdfGraph {
            firings,
            durations,
            edges,
        })
    }

    /// Number of firings (nodes).
    pub fn node_count(&self) -> usize {
        self.firings.len()
    }

    /// Number of precedence edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Maximum cycle mean of the expansion: the minimum achievable iteration
    /// period of the original SDF graph under self-timed execution with
    /// unbounded buffers. Returns `None` for acyclic graphs (throughput is
    /// then bounded only by the source).
    pub fn maximum_cycle_mean(&self) -> Option<f64> {
        let mut g = RatioGraph::new(self.node_count());
        for e in &self.edges {
            // Cost: the firing duration of the source firing (time from the
            // start of src to the start of dst); transit: tokens.
            g.add_edge(e.src, e.dst, self.durations[e.src], e.tokens as f64);
        }
        match g.maximum_cycle_mean(1e-12) {
            CycleRatio::Ratio(r) => Some(r),
            CycleRatio::Acyclic => None,
            CycleRatio::Infeasible => Some(f64::INFINITY),
        }
    }

    /// Exact throughput in iterations per second implied by the MCM, or
    /// `None` if the graph is acyclic (unbounded by dependencies).
    pub fn throughput(&self) -> Option<f64> {
        self.maximum_cycle_mean()
            .map(|mcm| if mcm <= 0.0 { f64::INFINITY } else { 1.0 / mcm })
    }

    /// The **exact** maximum cycle ratio `max_cycles Σ duration / Σ tokens`
    /// in rational arithmetic — the baseline the differential harness compares
    /// bit-for-bit against CTA's exact maximal rates (the float
    /// [`Self::maximum_cycle_mean`] carries a tolerance; this does not).
    ///
    /// Works by parametric search: starting from `λ = 0`, run a longest-path
    /// Bellman-Ford with edge weights `duration(src) − λ·tokens`; every
    /// witness positive cycle raises `λ` to that cycle's exact ratio, and the
    /// loop ends when no positive cycle remains. Each round permanently
    /// retires its witness cycle, so the number of rounds is bounded by the
    /// number of simple cycles (`max_rounds` guards pathological graphs).
    ///
    /// Returns `None` when a firing duration has no lossless rational
    /// representation or the round budget is exhausted.
    pub fn maximum_cycle_ratio_exact(&self) -> Option<ExactCycleRatio> {
        let durations: Vec<Rational> = self
            .durations
            .iter()
            .map(|&d| Rational::from_f64_lossless(d))
            .collect::<Option<_>>()?;
        self.maximum_cycle_ratio_exact_with(&durations)
    }

    /// As [`Self::maximum_cycle_ratio_exact`], with the per-node durations
    /// supplied as exact rationals. Generators that know the *intended*
    /// rational duration (e.g. an integer number of microseconds, whose `f64`
    /// image is only approximate) use this to keep the whole comparison chain
    /// in one arithmetic.
    ///
    /// # Panics
    /// Panics if `durations.len()` differs from the node count.
    pub fn maximum_cycle_ratio_exact_with(
        &self,
        durations: &[Rational],
    ) -> Option<ExactCycleRatio> {
        let n = self.node_count();
        assert_eq!(durations.len(), n, "one duration per firing node");
        if self.edges.is_empty() || n == 0 {
            return Some(ExactCycleRatio::Acyclic);
        }

        let mut lambda = Rational::ZERO;
        let mut found_cycle = false;
        let max_rounds = self.edges.len() * self.edges.len() + 8;
        for _ in 0..=max_rounds {
            // Longest-path relaxation from an implicit source at every node.
            // λ is constant for the round, so each edge's rational weight is
            // computed once (the relaxation passes over edges n times).
            let mut dist: Vec<Rational> = vec![Rational::ZERO; n];
            let mut pred: Vec<Option<usize>> = vec![None; n];
            let weights: Vec<Rational> = self
                .edges
                .iter()
                .map(|e| durations[e.src] - lambda * Rational::from_int(e.tokens as i128))
                .collect();
            let mut updated: Option<usize> = None;
            for _ in 0..n {
                updated = None;
                for (ei, e) in self.edges.iter().enumerate() {
                    let nd = dist[e.src] + weights[ei];
                    if nd > dist[e.dst] {
                        dist[e.dst] = nd;
                        pred[e.dst] = Some(ei);
                        updated = Some(e.dst);
                    }
                }
                if updated.is_none() {
                    break;
                }
            }
            let Some(start) = updated else {
                // No positive cycle at this lambda: done. `lambda` is the
                // exact MCM if any witness cycle was seen; otherwise every
                // cycle has ratio <= 0, i.e. zero-duration cycles only (all
                // durations are non-negative) — or no cycle at all.
                return Some(if found_cycle {
                    ExactCycleRatio::Ratio(lambda)
                } else if self.has_cycle() {
                    ExactCycleRatio::Ratio(Rational::ZERO)
                } else {
                    ExactCycleRatio::Acyclic
                });
            };
            // Walk predecessors n steps to land inside the cycle, extract it.
            let mut v = start;
            for _ in 0..n {
                v = self.edges[pred[v].expect("relaxed nodes have predecessors")].src;
            }
            let (mut cost, mut tokens) = (Rational::ZERO, 0u64);
            let mut cur = v;
            loop {
                let e = &self.edges[pred[cur].expect("cycle nodes have predecessors")];
                cost += durations[e.src];
                tokens += e.tokens;
                cur = e.src;
                if cur == v {
                    break;
                }
            }
            if tokens == 0 {
                return Some(ExactCycleRatio::Infeasible);
            }
            let ratio = cost / Rational::from_int(tokens as i128);
            if ratio <= lambda {
                // Predecessor extraction landed on an already-retired cycle
                // (possible when relaxations interleave); give up gracefully
                // rather than loop — callers treat `None` as budget-exceeded.
                return None;
            }
            lambda = ratio;
            found_cycle = true;
        }
        None
    }

    /// True if the expansion contains any cycle (ignoring token counts).
    fn has_cycle(&self) -> bool {
        // Kahn's algorithm: a topological order exists iff the graph is
        // acyclic.
        let n = self.node_count();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            indegree[e.dst] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
        let mut seen = 0usize;
        while let Some(v) = queue.pop() {
            seen += 1;
            for e in &self.edges {
                if e.src == v {
                    indegree[e.dst] -= 1;
                    if indegree[e.dst] == 0 {
                        queue.push(e.dst);
                    }
                }
            }
        }
        seen < n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Idx;

    #[test]
    fn homogeneous_graph_expands_to_itself() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1.0);
        let b = g.add_actor("b", 2.0);
        g.add_edge(a, b, 1, 1, 0);
        g.add_edge(b, a, 1, 1, 1);
        let h = HsdfGraph::expand(&g).unwrap();
        assert_eq!(h.node_count(), 2);
        assert_eq!(h.edge_count(), 2);
        // Cycle: duration 1 + 2 over 1 token -> MCM 3.
        let mcm = h.maximum_cycle_mean().unwrap();
        assert!((mcm - 3.0).abs() < 1e-9, "{mcm}");
        assert!((h.throughput().unwrap() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn fig2a_expansion_counts() {
        // q = (2, 3): 5 firings.
        let g = SdfGraph::rate_converter(3, 3, 2, 2, 4, 1.0);
        let h = HsdfGraph::expand(&g).unwrap();
        assert_eq!(h.node_count(), 5);
        assert!(h.edge_count() >= 5);
        let mcm = h.maximum_cycle_mean().unwrap();
        assert!(mcm.is_finite());
        assert!(mcm > 0.0);
    }

    #[test]
    fn expansion_size_grows_with_rates() {
        // a -n-> -1- b : q = (1, n); node count 1 + n.
        for n in [2u64, 8, 64] {
            let mut g = SdfGraph::new();
            let a = g.add_actor("a", 1.0);
            let b = g.add_actor("b", 1.0);
            g.add_edge(a, b, n, 1, 0);
            let h = HsdfGraph::expand(&g).unwrap();
            assert_eq!(h.node_count(), (1 + n) as usize);
        }
    }

    #[test]
    fn exact_cycle_ratio_matches_float_mcm() {
        // Two-actor cycle: durations 1 and 2 (exactly representable), one
        // token: MCM exactly 3.
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1.0);
        let b = g.add_actor("b", 2.0);
        g.add_edge(a, b, 1, 1, 0);
        g.add_edge(b, a, 1, 1, 1);
        let h = HsdfGraph::expand(&g).unwrap();
        assert_eq!(
            h.maximum_cycle_ratio_exact(),
            Some(ExactCycleRatio::Ratio(Rational::from_int(3)))
        );

        // Multi-token cycle: ratio 3/2, a value the float MCM only
        // approximates but the exact one nails.
        let mut g2 = SdfGraph::new();
        let a = g2.add_actor("a", 1.0);
        let b = g2.add_actor("b", 2.0);
        g2.add_edge(a, b, 1, 1, 1);
        g2.add_edge(b, a, 1, 1, 1);
        let h2 = HsdfGraph::expand(&g2).unwrap();
        let exact = h2.maximum_cycle_ratio_exact().unwrap();
        assert_eq!(exact, ExactCycleRatio::Ratio(Rational::new(3, 2)));
        let float = h2.maximum_cycle_mean().unwrap();
        assert!((float - 1.5).abs() < 1e-9);
    }

    #[test]
    fn exact_cycle_ratio_classifies_acyclic_and_infeasible() {
        let mut acyclic = SdfGraph::new();
        let a = acyclic.add_actor("a", 1.0);
        let b = acyclic.add_actor("b", 1.0);
        acyclic.add_edge(a, b, 1, 1, 0);
        let h = HsdfGraph::expand(&acyclic).unwrap();
        assert_eq!(
            h.maximum_cycle_ratio_exact(),
            Some(ExactCycleRatio::Acyclic)
        );

        // A token-free cycle with positive duration can never execute. The
        // deadlock guard in `expand` callers normally filters these, so build
        // the HSDF graph directly.
        let infeasible = HsdfGraph {
            firings: vec![
                Firing {
                    actor: ActorId::new(0),
                    index: 0,
                },
                Firing {
                    actor: ActorId::new(1),
                    index: 0,
                },
            ],
            durations: vec![1.0, 1.0],
            edges: vec![
                HsdfEdge {
                    src: 0,
                    dst: 1,
                    tokens: 0,
                },
                HsdfEdge {
                    src: 1,
                    dst: 0,
                    tokens: 0,
                },
            ],
        };
        assert_eq!(
            infeasible.maximum_cycle_ratio_exact(),
            Some(ExactCycleRatio::Infeasible)
        );
    }

    #[test]
    fn expansion_budget_refuses_adversarial_rates() {
        // q = (1, 1_000_000): two actors, a million-node expansion.
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1.0);
        let b = g.add_actor("b", 1.0);
        g.add_edge(a, b, 1_000_000, 1, 0);
        assert!(matches!(
            HsdfGraph::expand_with_budget(&g, 1000),
            Err(crate::sdf::SdfError::BudgetExceeded { .. })
        ));
        // The default budget still admits it (1e6 + 1 > budget? exactly at
        // the boundary: 1_000_001 nodes exceeds DEFAULT_NODE_BUDGET).
        assert!(HsdfGraph::expand(&g).is_err());
    }

    #[test]
    fn acyclic_graph_has_no_mcm() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1.0);
        let b = g.add_actor("b", 1.0);
        g.add_edge(a, b, 2, 1, 0);
        let h = HsdfGraph::expand(&g).unwrap();
        assert_eq!(h.maximum_cycle_mean(), None);
        assert_eq!(h.throughput(), None);
    }

    #[test]
    fn self_loop_actor_period() {
        // An actor with a self-loop and one token fires strictly sequentially.
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 0.5);
        g.add_edge(a, a, 1, 1, 1);
        let h = HsdfGraph::expand(&g).unwrap();
        let mcm = h.maximum_cycle_mean().unwrap();
        assert!((mcm - 0.5).abs() < 1e-9);
    }

    #[test]
    fn multi_rate_cycle_mcm_matches_hand_computation() {
        // f (dur 1) produces 2 to g (dur 1) which produces 1 back to f which
        // consumes 1; 2 initial tokens on the back edge.
        // q = (1, 2). Per iteration f fires once, g twice.
        let mut g = SdfGraph::new();
        let f = g.add_actor("f", 1.0);
        let gg = g.add_actor("g", 1.0);
        g.add_edge(f, gg, 2, 1, 0);
        g.add_edge(gg, f, 1, 2, 2);
        let h = HsdfGraph::expand(&g).unwrap();
        let mcm = h.maximum_cycle_mean().unwrap();
        // The critical cycle: f -> g(last firing) -> f with 1 iteration of
        // tokens: (1 + 1)/1 = 2... the exact value depends on token
        // placement; assert it is at least the bottleneck bound (2 time units
        // of g work per iteration) and finite.
        assert!(mcm >= 2.0 - 1e-9, "{mcm}");
        assert!(mcm.is_finite());
    }
}
