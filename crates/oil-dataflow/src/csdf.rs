//! Cyclo-Static Dataflow (CSDF) graphs.
//!
//! CSDF generalises SDF by letting an actor's production/consumption rates
//! cycle through a fixed sequence of phases. The OIL compiler uses CSDF when
//! a statement accesses a stream with different counts in different loop
//! iterations of a static pattern (e.g. the sequential schedule of the
//! paper's Figure 2b, where the same function is called with different slice
//! lengths). Analyses here mirror the SDF ones: phase-aware repetition
//! vectors, consistency and conversion to an equivalent SDF graph for
//! throughput analysis.

use crate::index::{ActorId, IndexVec};
use crate::rational::lcm;
use crate::sdf::{EdgeId, SdfError, SdfGraph};
use serde::{Deserialize, Serialize};

/// A CSDF actor: a name, a firing duration per phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsdfActor {
    /// Actor name.
    pub name: String,
    /// Firing duration of each phase, in seconds. The number of phases is
    /// `durations.len()`.
    pub durations: Vec<f64>,
}

impl CsdfActor {
    /// Number of phases.
    pub fn phases(&self) -> usize {
        self.durations.len()
    }
}

/// A CSDF edge with per-phase production and consumption sequences.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsdfEdge {
    /// Producing actor.
    pub src: ActorId,
    /// Consuming actor.
    pub dst: ActorId,
    /// Tokens produced in each phase of `src` (length = src phase count).
    pub production: Vec<u64>,
    /// Tokens consumed in each phase of `dst` (length = dst phase count).
    pub consumption: Vec<u64>,
    /// Initial tokens.
    pub initial_tokens: u64,
}

/// A Cyclo-Static Dataflow graph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CsdfGraph {
    /// Actors (index-compatible with the aggregated SDF conversion).
    pub actors: IndexVec<ActorId, CsdfActor>,
    /// Edges (index-compatible with the aggregated SDF conversion).
    pub edges: IndexVec<EdgeId, CsdfEdge>,
}

impl CsdfGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an actor with the given per-phase firing durations.
    pub fn add_actor(&mut self, name: impl Into<String>, durations: Vec<f64>) -> ActorId {
        assert!(
            !durations.is_empty(),
            "a CSDF actor needs at least one phase"
        );
        self.actors.push(CsdfActor {
            name: name.into(),
            durations,
        })
    }

    /// Add an edge with per-phase production/consumption sequences.
    pub fn add_edge(
        &mut self,
        src: ActorId,
        dst: ActorId,
        production: Vec<u64>,
        consumption: Vec<u64>,
        initial_tokens: u64,
    ) -> EdgeId {
        assert_eq!(
            production.len(),
            self.actors[src].phases(),
            "production phases mismatch"
        );
        assert_eq!(
            consumption.len(),
            self.actors[dst].phases(),
            "consumption phases mismatch"
        );
        assert!(
            production.iter().sum::<u64>() > 0 && consumption.iter().sum::<u64>() > 0,
            "an edge must transfer at least one token per actor period"
        );
        self.edges.push(CsdfEdge {
            src,
            dst,
            production,
            consumption,
            initial_tokens,
        })
    }

    /// Total tokens produced on `edge` per full period (all phases) of its
    /// source actor.
    pub fn production_per_period(&self, edge: EdgeId) -> u64 {
        self.edges[edge].production.iter().sum()
    }

    /// Total tokens consumed on `edge` per full period of its destination.
    pub fn consumption_per_period(&self, edge: EdgeId) -> u64 {
        self.edges[edge].consumption.iter().sum()
    }

    /// Convert to an SDF graph by aggregating each actor's phases into one
    /// firing per period (sum of phase durations, sums of phase rates). This
    /// is conservative for throughput analysis at iteration granularity and
    /// is how the OIL compiler treats cyclically scheduled statements before
    /// deriving CTA components.
    pub fn to_sdf(&self) -> SdfGraph {
        let mut g = SdfGraph::new();
        for a in &self.actors {
            g.add_actor(a.name.clone(), a.durations.iter().sum());
        }
        for e in &self.edges {
            g.add_edge(
                e.src,
                e.dst,
                e.production.iter().sum::<u64>().max(1),
                e.consumption.iter().sum::<u64>().max(1),
                e.initial_tokens,
            );
        }
        g
    }

    /// Phase-aware repetition vector: entry `i` is the number of *phases*
    /// actor `i` executes per graph iteration (a multiple of its phase
    /// count). Derived from the aggregated SDF repetition vector.
    pub fn phase_repetition_vector(&self) -> Result<IndexVec<ActorId, u64>, SdfError> {
        let q = self.to_sdf().repetition_vector()?;
        Ok(q.iter()
            .zip(&self.actors)
            .map(|(&qi, a)| qi * a.phases() as u64)
            .collect())
    }

    /// True if the aggregated balance equations have a solution.
    pub fn is_consistent(&self) -> bool {
        self.to_sdf().is_consistent()
    }

    /// Deadlock-freedom via fine-grained (phase-level) symbolic execution of
    /// one iteration.
    pub fn check_deadlock_free(&self) -> Result<(), SdfError> {
        let phase_q = self.phase_repetition_vector()?;
        let n = self.actors.len();
        let mut remaining = phase_q.clone();
        let mut phase: IndexVec<ActorId, usize> = IndexVec::from_elem(0, n);
        let mut tokens: IndexVec<EdgeId, u64> =
            self.edges.iter().map(|e| e.initial_tokens).collect();

        let mut incoming: IndexVec<ActorId, Vec<EdgeId>> = IndexVec::from_elem(Vec::new(), n);
        let mut outgoing: IndexVec<ActorId, Vec<EdgeId>> = IndexVec::from_elem(Vec::new(), n);
        for (eid, e) in self.edges.iter_enumerated() {
            incoming[e.dst].push(eid);
            outgoing[e.src].push(eid);
        }

        let total: u64 = phase_q.iter().sum();
        let mut fired = 0u64;
        loop {
            let mut progressed = false;
            for a in self.actors.indices() {
                while remaining[a] > 0 {
                    let ph = phase[a] % self.actors[a].phases();
                    let ready = incoming[a]
                        .iter()
                        .all(|&e| tokens[e] >= self.edges[e].consumption[ph]);
                    if !ready {
                        break;
                    }
                    for &e in &incoming[a] {
                        tokens[e] -= self.edges[e].consumption[ph];
                    }
                    for &e in &outgoing[a] {
                        tokens[e] += self.edges[e].production[phase[a] % self.actors[a].phases()];
                    }
                    phase[a] += 1;
                    remaining[a] -= 1;
                    fired += 1;
                    progressed = true;
                }
            }
            if fired == total {
                return Ok(());
            }
            if !progressed {
                return Err(SdfError::Deadlock { remaining });
            }
        }
    }

    /// The hyperperiod (in phases) of two actors' phase counts; useful when
    /// aligning schedules.
    pub fn phase_hyperperiod(&self, a: ActorId, b: ActorId) -> u64 {
        lcm(
            self.actors[a].phases() as u128,
            self.actors[b].phases() as u128,
        ) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sequential schedule of Fig. 2b as a CSDF: one "f" actor called
    /// twice per loop iteration (phases producing 3 then 3) and one "g" actor
    /// called three times (phases 2, 2, 2).
    fn fig2b_csdf() -> CsdfGraph {
        let mut g = CsdfGraph::new();
        let f = g.add_actor("f", vec![1e-3, 1e-3]);
        let gg = g.add_actor("g", vec![1e-3, 1e-3, 1e-3]);
        g.add_edge(f, gg, vec![3, 3], vec![2, 2, 2], 0);
        g.add_edge(gg, f, vec![2, 2, 2], vec![3, 3], 4);
        g
    }

    #[test]
    fn csdf_consistency_and_phase_repetition() {
        let g = fig2b_csdf();
        assert!(g.is_consistent());
        let pq = g.phase_repetition_vector().unwrap();
        // Aggregated: f produces 6/period, g consumes 6/period -> q = (1, 1);
        // in phases that is (2, 3).
        assert_eq!(pq.as_slice(), &[2, 3]);
    }

    #[test]
    fn csdf_deadlock_freedom_depends_on_initial_tokens() {
        let g = fig2b_csdf();
        assert!(g.check_deadlock_free().is_ok());

        let mut bad = CsdfGraph::new();
        let f = bad.add_actor("f", vec![1e-3, 1e-3]);
        let gg = bad.add_actor("g", vec![1e-3, 1e-3, 1e-3]);
        bad.add_edge(f, gg, vec![3, 3], vec![2, 2, 2], 0);
        bad.add_edge(gg, f, vec![2, 2, 2], vec![3, 3], 2);
        assert!(bad.check_deadlock_free().is_err());
    }

    #[test]
    fn csdf_to_sdf_aggregation() {
        let g = fig2b_csdf();
        let sdf = g.to_sdf();
        assert_eq!(sdf.actor_count(), 2);
        let f = sdf.actor_by_name("f").unwrap();
        let gg = sdf.actor_by_name("g").unwrap();
        let forward = sdf.edges_between(f, gg)[0];
        assert_eq!(sdf.edges[forward].production, 6);
        assert_eq!(sdf.edges[forward].consumption, 6);
        assert!((sdf.actors[f].firing_duration - 2e-3).abs() < 1e-12);
        assert!((sdf.actors[gg].firing_duration - 3e-3).abs() < 1e-12);
        assert_eq!(sdf.repetition_vector().unwrap().as_slice(), &[1, 1]);
    }

    #[test]
    fn inconsistent_csdf_detected() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", vec![1.0]);
        let b = g.add_actor("b", vec![1.0]);
        g.add_edge(a, b, vec![2], vec![3], 0);
        g.add_edge(b, a, vec![1], vec![1], 5);
        assert!(!g.is_consistent());
        assert!(g.phase_repetition_vector().is_err());
    }

    #[test]
    fn per_period_totals_and_hyperperiod() {
        let g = fig2b_csdf();
        let bx = crate::index::Idx::new(0);
        assert_eq!(g.production_per_period(bx), 6);
        assert_eq!(g.consumption_per_period(bx), 6);
        let (f, gg) = (g.edges[bx].src, g.edges[bx].dst);
        assert_eq!(g.phase_hyperperiod(f, gg), 6);
    }

    #[test]
    fn zero_rate_phases_allowed_if_period_positive() {
        // A distributor that only produces on its second phase.
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", vec![1e-3, 1e-3]);
        let b = g.add_actor("b", vec![1e-3]);
        g.add_edge(a, b, vec![0, 2], vec![1], 0);
        assert!(g.is_consistent());
        assert!(g.check_deadlock_free().is_ok());
    }

    #[test]
    #[should_panic(expected = "phases mismatch")]
    fn phase_length_mismatch_panics() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", vec![1.0, 1.0]);
        let b = g.add_actor("b", vec![1.0]);
        g.add_edge(a, b, vec![1], vec![1], 0);
    }
}
