//! Synchronous Dataflow (SDF) graphs.
//!
//! SDF (Lee & Messerschmitt) is the model underlying StreamIt and the
//! intermediate abstraction the OIL compiler uses between tasks and CTA
//! components (paper Section V-B1): every task becomes an actor — with the
//! same [`ActorId`] — and every buffer a pair of oppositely directed edges
//! carrying data and free space.
//!
//! Provided analyses:
//!
//! * repetition vector / rate consistency (balance equations, exact rational
//!   arithmetic),
//! * deadlock detection by symbolic execution of one graph iteration,
//! * conversion helpers used by [`crate::hsdf`] and [`crate::statespace`].

use crate::define_index_type;
use crate::index::{ActorId, Idx, IndexVec};
use crate::rational::Rational;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

define_index_type! {
    /// An edge of an [`SdfGraph`].
    pub struct EdgeId = "e";
}

/// An SDF actor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SdfActor {
    /// Human-readable name (task or function name).
    pub name: String,
    /// Firing duration (response time of the corresponding task) in seconds.
    pub firing_duration: f64,
}

/// An SDF edge: a FIFO with fixed production/consumption rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SdfEdge {
    /// Producing actor.
    pub src: ActorId,
    /// Consuming actor.
    pub dst: ActorId,
    /// Tokens produced per firing of `src`.
    pub production: u64,
    /// Tokens consumed per firing of `dst`.
    pub consumption: u64,
    /// Tokens present before execution starts.
    pub initial_tokens: u64,
    /// Optional name (buffer name) for reporting.
    pub name: String,
}

/// A Synchronous Dataflow graph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SdfGraph {
    /// The actors.
    pub actors: IndexVec<ActorId, SdfActor>,
    /// The edges.
    pub edges: IndexVec<EdgeId, SdfEdge>,
}

/// Why an SDF graph cannot execute indefinitely in bounded memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SdfError {
    /// The balance equations only admit the all-zero solution.
    Inconsistent {
        /// An edge witnessing the inconsistency.
        edge: EdgeId,
    },
    /// The graph is consistent but deadlocks: no actor can fire although the
    /// iteration is incomplete.
    Deadlock {
        /// Remaining firings per actor when execution stalled.
        remaining: IndexVec<ActorId, u64>,
    },
    /// The graph has no actors.
    Empty,
    /// An analysis exceeded its size/overflow budget (e.g. adversarial rate
    /// ratios blow up the repetition vector, the HSDF expansion or the
    /// explored state space). The analysis is *skipped*, not wrong: callers
    /// such as the differential harness log and move on instead of aborting.
    BudgetExceeded {
        /// Which analysis/quantity exceeded the budget.
        what: String,
    },
}

impl fmt::Display for SdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdfError::Inconsistent { edge } => {
                write!(
                    f,
                    "SDF graph is rate-inconsistent (witnessed by edge {edge})"
                )
            }
            SdfError::Deadlock { .. } => write!(f, "SDF graph deadlocks within one iteration"),
            SdfError::Empty => write!(f, "SDF graph has no actors"),
            SdfError::BudgetExceeded { what } => {
                write!(f, "exact analysis exceeded its budget: {what}")
            }
        }
    }
}

impl std::error::Error for SdfError {}

impl SdfGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an actor, returning its id.
    pub fn add_actor(&mut self, name: impl Into<String>, firing_duration: f64) -> ActorId {
        self.actors.push(SdfActor {
            name: name.into(),
            firing_duration,
        })
    }

    /// Add an edge, returning its id.
    pub fn add_edge(
        &mut self,
        src: ActorId,
        dst: ActorId,
        production: u64,
        consumption: u64,
        initial_tokens: u64,
    ) -> EdgeId {
        let name = format!("e{}_{}", src.index(), dst.index());
        self.add_named_edge(name, src, dst, production, consumption, initial_tokens)
    }

    /// Add an edge with an explicit name, returning its id.
    pub fn add_named_edge(
        &mut self,
        name: impl Into<String>,
        src: ActorId,
        dst: ActorId,
        production: u64,
        consumption: u64,
        initial_tokens: u64,
    ) -> EdgeId {
        assert!(
            src.index() < self.actors.len() && dst.index() < self.actors.len(),
            "edge endpoints must exist"
        );
        assert!(
            production > 0 && consumption > 0,
            "SDF rates must be positive"
        );
        self.edges.push(SdfEdge {
            src,
            dst,
            production,
            consumption,
            initial_tokens,
            name: name.into(),
        })
    }

    /// Number of actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Compute the repetition vector: the smallest positive integer vector
    /// `q` such that for every edge `production * q[src] == consumption *
    /// q[dst]`. Returns [`SdfError::Inconsistent`] if only the zero vector
    /// satisfies the balance equations.
    pub fn repetition_vector(&self) -> Result<IndexVec<ActorId, u64>, SdfError> {
        if self.actors.is_empty() {
            return Err(SdfError::Empty);
        }
        // Rational firing ratios per connected component, propagated by BFS.
        let mut ratio: IndexVec<ActorId, Option<Rational>> =
            IndexVec::from_elem(None, self.actors.len());
        let mut adj: IndexVec<ActorId, Vec<(ActorId, Rational, EdgeId)>> =
            IndexVec::from_elem(Vec::new(), self.actors.len());
        for (eid, e) in self.edges.iter_enumerated() {
            // q[dst] = q[src] * production / consumption
            let f = Rational::new(e.production as i128, e.consumption as i128);
            adj[e.src].push((e.dst, f, eid));
            adj[e.dst].push((e.src, f.recip(), eid));
        }

        let mut q: IndexVec<ActorId, u64> = IndexVec::from_elem(0, self.actors.len());
        for start in self.actors.indices() {
            if ratio[start].is_some() {
                continue;
            }
            // Breadth-first propagation of firing ratios within this
            // connected component.
            ratio[start] = Some(Rational::ONE);
            let mut component = vec![start];
            let mut queue = vec![start];
            while let Some(v) = queue.pop() {
                let rv = ratio[v].unwrap();
                for &(w, f, eid) in &adj[v] {
                    let expected = rv.checked_mul(f).ok_or_else(|| SdfError::BudgetExceeded {
                        what: "firing-ratio propagation overflowed i128 \
                                       (adversarial rate ratios)"
                            .into(),
                    })?;
                    match ratio[w] {
                        None => {
                            ratio[w] = Some(expected);
                            component.push(w);
                            queue.push(w);
                        }
                        Some(existing) => {
                            if existing != expected {
                                return Err(SdfError::Inconsistent { edge: eid });
                            }
                        }
                    }
                }
            }

            // Scale this component's ratios to its smallest integer vector,
            // with every step checked: adversarial rate ratios (long chains of
            // multiplicative factors) can push the entries past `u64`, which
            // must surface as a budget error, not silent truncation.
            let budget = |what: &str| SdfError::BudgetExceeded { what: what.into() };
            let mut denom_lcm: u128 = 1;
            for &v in &component {
                let den = ratio[v].unwrap().denom() as u128;
                let g = crate::rational::gcd(denom_lcm, den).max(1);
                denom_lcm = (denom_lcm / g)
                    .checked_mul(den)
                    .ok_or_else(|| budget("repetition-vector denominator LCM overflowed u128"))?;
            }
            let mut g: u128 = 0;
            let mut scaled_entries: Vec<(ActorId, u128)> = Vec::with_capacity(component.len());
            for &v in &component {
                let r = ratio[v].unwrap();
                let scaled = (r.numer() as u128)
                    .checked_mul(denom_lcm / r.denom() as u128)
                    .ok_or_else(|| budget("repetition-vector entry overflowed u128"))?;
                scaled_entries.push((v, scaled));
                g = crate::rational::gcd(g, scaled);
            }
            let g = g.max(1);
            for (v, scaled) in scaled_entries {
                q[v] = u64::try_from(scaled / g)
                    .map_err(|_| budget("repetition-vector entry exceeds u64"))?;
            }
        }
        Ok(q)
    }

    /// True if the balance equations admit a non-trivial solution.
    pub fn is_consistent(&self) -> bool {
        self.repetition_vector().is_ok()
    }

    /// Default firing budget for [`Self::check_deadlock_free`]: one symbolic
    /// iteration of any reasonable graph fits comfortably; adversarial rate
    /// ratios (repetition vectors in the millions) exceed it and are reported
    /// as [`SdfError::BudgetExceeded`] instead of hanging the caller.
    pub const DEFAULT_FIRING_BUDGET: u64 = 10_000_000;

    /// Check for deadlock freedom by symbolically executing one iteration
    /// (every actor `a` fires `q[a]` times) in data-driven order. Returns the
    /// repetition vector on success.
    pub fn check_deadlock_free(&self) -> Result<IndexVec<ActorId, u64>, SdfError> {
        self.check_deadlock_free_budgeted(Self::DEFAULT_FIRING_BUDGET)
    }

    /// As [`Self::check_deadlock_free`], but refusing to execute more than
    /// `max_firings` symbolic firings: graphs whose iteration length exceeds
    /// the budget yield [`SdfError::BudgetExceeded`] instead of running (or
    /// overflowing token counters) for an unbounded amount of time.
    pub fn check_deadlock_free_budgeted(
        &self,
        max_firings: u64,
    ) -> Result<IndexVec<ActorId, u64>, SdfError> {
        let q = self.repetition_vector()?;
        let mut remaining = q.clone();
        let mut tokens: IndexVec<EdgeId, u64> =
            self.edges.iter().map(|e| e.initial_tokens).collect();
        let mut incoming: IndexVec<ActorId, Vec<EdgeId>> =
            IndexVec::from_elem(Vec::new(), self.actors.len());
        let mut outgoing: IndexVec<ActorId, Vec<EdgeId>> =
            IndexVec::from_elem(Vec::new(), self.actors.len());
        for (eid, e) in self.edges.iter_enumerated() {
            incoming[e.dst].push(eid);
            outgoing[e.src].push(eid);
        }

        let total: u64 = q
            .iter()
            .try_fold(0u64, |acc, &n| acc.checked_add(n))
            .filter(|&t| t <= max_firings)
            .ok_or_else(|| SdfError::BudgetExceeded {
                what: format!("iteration length exceeds the firing budget {max_firings}"),
            })?;
        let mut fired: u64 = 0;
        loop {
            let mut progressed = false;
            for a in self.actors.indices() {
                while remaining[a] > 0
                    && incoming[a]
                        .iter()
                        .all(|&e| tokens[e] >= self.edges[e].consumption)
                {
                    for &e in &incoming[a] {
                        tokens[e] -= self.edges[e].consumption;
                    }
                    for &e in &outgoing[a] {
                        tokens[e] =
                            tokens[e]
                                .checked_add(self.edges[e].production)
                                .ok_or_else(|| SdfError::BudgetExceeded {
                                    what: "token count overflowed u64 during symbolic execution"
                                        .into(),
                                })?;
                    }
                    remaining[a] -= 1;
                    fired += 1;
                    progressed = true;
                }
            }
            if fired == total {
                return Ok(q);
            }
            if !progressed {
                return Err(SdfError::Deadlock { remaining });
            }
        }
    }

    /// The total number of actor firings in one graph iteration.
    pub fn iteration_length(&self) -> Result<u64, SdfError> {
        Ok(self.repetition_vector()?.iter().sum())
    }

    /// An upper bound on throughput (iterations per second) obtained by
    /// ignoring all dependencies: the bottleneck actor alone limits the rate.
    pub fn throughput_upper_bound(&self) -> Result<f64, SdfError> {
        let q = self.repetition_vector()?;
        let mut bound = f64::INFINITY;
        for (a, actor) in self.actors.iter_enumerated() {
            if actor.firing_duration > 0.0 && q[a] > 0 {
                bound = bound.min(1.0 / (actor.firing_duration * q[a] as f64));
            }
        }
        Ok(bound)
    }

    /// Find an actor id by name.
    pub fn actor_by_name(&self, name: &str) -> Option<ActorId> {
        self.actors.position(|a| a.name == name)
    }

    /// Group edges by (src, dst) pair; useful for reporting.
    pub fn edges_between(&self, src: ActorId, dst: ActorId) -> Vec<EdgeId> {
        self.edges
            .iter_enumerated()
            .filter(|(_, e)| e.src == src && e.dst == dst)
            .map(|(i, _)| i)
            .collect()
    }

    /// Build the "Fig. 2a" style cyclic two-actor rate converter used
    /// throughout the paper and this crate's tests: actor `f` produces
    /// `p_f`/consumes `c_f` tokens, actor `g` produces `p_g`/consumes `c_g`
    /// tokens, with `delta` initial tokens on the edge feeding `f`.
    pub fn rate_converter(
        p_f: u64,
        c_f: u64,
        p_g: u64,
        c_g: u64,
        delta: u64,
        firing_duration: f64,
    ) -> SdfGraph {
        let mut g = SdfGraph::new();
        let f = g.add_actor("f", firing_duration);
        let gg = g.add_actor("g", firing_duration);
        g.add_named_edge("bx", f, gg, p_f, c_g, 0);
        g.add_named_edge("by", gg, f, p_g, c_f, delta);
        g
    }

    /// Summary of the graph as a map from actor name to repetition count.
    pub fn repetition_map(&self) -> Result<BTreeMap<String, u64>, SdfError> {
        let q = self.repetition_vector()?;
        Ok(self
            .actors
            .iter()
            .zip(q)
            .map(|(a, n)| (a.name.clone(), n))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The task graph of the paper's Figure 2a: f reads 3 / writes 3, g reads
    /// 2 / writes 2, four initial tokens on by.
    fn fig2a() -> SdfGraph {
        SdfGraph::rate_converter(3, 3, 2, 2, 4, 1e-6)
    }

    #[test]
    fn fig2a_repetition_vector() {
        let g = fig2a();
        let q = g.repetition_vector().unwrap();
        // g must execute 3/2 as often as f -> smallest integer vector (2, 3).
        assert_eq!(q.as_slice(), &[2, 3]);
        assert_eq!(g.iteration_length().unwrap(), 5);
    }

    #[test]
    fn fig2a_is_deadlock_free_with_four_initial_tokens() {
        let g = fig2a();
        assert!(g.check_deadlock_free().is_ok());
    }

    #[test]
    fn fig2a_deadlocks_without_enough_initial_tokens() {
        let g = SdfGraph::rate_converter(3, 3, 2, 2, 2, 1e-6);
        match g.check_deadlock_free() {
            Err(SdfError::Deadlock { remaining }) => {
                assert!(remaining.iter().sum::<u64>() > 0);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn inconsistent_graph_detected() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1.0);
        let b = g.add_actor("b", 1.0);
        g.add_edge(a, b, 2, 3, 0);
        g.add_edge(b, a, 1, 1, 10);
        assert!(!g.is_consistent());
        assert!(matches!(
            g.repetition_vector(),
            Err(SdfError::Inconsistent { .. })
        ));
    }

    #[test]
    fn empty_graph_is_error() {
        assert!(matches!(
            SdfGraph::new().repetition_vector(),
            Err(SdfError::Empty)
        ));
    }

    #[test]
    fn chain_repetition_vector() {
        // a -2-> -1- b -3-> -1- c : q = (1, 2, 6)
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1.0);
        let b = g.add_actor("b", 1.0);
        let c = g.add_actor("c", 1.0);
        g.add_edge(a, b, 2, 1, 0);
        g.add_edge(b, c, 3, 1, 0);
        assert_eq!(g.repetition_vector().unwrap().as_slice(), &[1, 2, 6]);
        assert!(g.check_deadlock_free().is_ok());
    }

    #[test]
    fn disconnected_components_each_get_smallest_vector() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1.0);
        let b = g.add_actor("b", 1.0);
        let c = g.add_actor("c", 1.0);
        let d = g.add_actor("d", 1.0);
        g.add_edge(a, b, 1, 2, 0);
        g.add_edge(c, d, 5, 1, 0);
        let q = g.repetition_vector().unwrap();
        assert_eq!(q.as_slice(), &[2, 1, 1, 5]);
    }

    #[test]
    fn pal_conversion_chain_rates() {
        // RF (6.4 MS/s) -> SRC_A (25:1) -> Audio (8:1) -> speakers.
        let mut g = SdfGraph::new();
        let rf = g.add_actor("rf", 0.0);
        let src_a = g.add_actor("src_a", 1e-6);
        let audio = g.add_actor("audio", 1e-6);
        let spk = g.add_actor("speakers", 0.0);
        g.add_edge(rf, src_a, 1, 25, 0);
        g.add_edge(src_a, audio, 1, 8, 0);
        g.add_edge(audio, spk, 1, 1, 0);
        let q = g.repetition_map().unwrap();
        assert_eq!(q["rf"], 200);
        assert_eq!(q["src_a"], 8);
        assert_eq!(q["audio"], 1);
        assert_eq!(q["speakers"], 1);
    }

    #[test]
    fn throughput_upper_bound_uses_bottleneck() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1e-3);
        let b = g.add_actor("b", 2e-3);
        g.add_edge(a, b, 1, 1, 0);
        g.add_edge(b, a, 1, 1, 1);
        let bound = g.throughput_upper_bound().unwrap();
        assert!((bound - 500.0).abs() < 1e-9);
    }

    #[test]
    fn edges_between_and_lookup() {
        let g = fig2a();
        let f = g.actor_by_name("f").unwrap();
        let gg = g.actor_by_name("g").unwrap();
        assert_eq!(g.edges_between(f, gg).len(), 1);
        assert_eq!(g.edges_between(gg, f).len(), 1);
        assert!(g.actor_by_name("zzz").is_none());
        assert_eq!(g.actor_count(), 2);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "rates must be positive")]
    fn zero_rate_edge_panics() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1.0);
        let b = g.add_actor("b", 1.0);
        g.add_edge(a, b, 0, 1, 0);
    }

    #[test]
    fn adversarial_rate_chain_reports_budget_not_truncation() {
        // A chain multiplying the firing ratio by 100 per hop: after ~10 hops
        // the repetition-vector entries exceed u64 and after ~19 they exceed
        // i128 inside the ratio propagation. Both must surface as
        // BudgetExceeded, never as a silently truncated vector.
        let mut g = SdfGraph::new();
        let mut prev = g.add_actor("a0", 1e-6);
        for i in 0..25 {
            let next = g.add_actor(format!("a{}", i + 1), 1e-6);
            g.add_edge(prev, next, 100, 1, 0);
            prev = next;
        }
        assert!(matches!(
            g.repetition_vector(),
            Err(SdfError::BudgetExceeded { .. })
        ));
        // The graph is *rate-consistent* in the mathematical sense, but the
        // budget guard refuses it — is_consistent reflects analysability.
        assert!(!g.is_consistent());
    }

    #[test]
    fn deadlock_check_respects_firing_budget() {
        // q = (1, 10_000): the symbolic iteration needs 10_001 firings.
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1e-6);
        let b = g.add_actor("b", 1e-6);
        g.add_edge(a, b, 10_000, 1, 0);
        assert!(g.check_deadlock_free().is_ok());
        assert!(matches!(
            g.check_deadlock_free_budgeted(100),
            Err(SdfError::BudgetExceeded { .. })
        ));
    }

    proptest! {
        /// The repetition vector always satisfies the balance equations.
        #[test]
        fn prop_repetition_vector_balances(
            p1 in 1u64..8, c1 in 1u64..8, p2 in 1u64..8
        ) {
            // Only graphs whose cycle ratio is 1 are consistent; build a
            // 2-cycle whose product of rate ratios is forced to 1 by reusing
            // the rates crosswise.
            let mut g = SdfGraph::new();
            let a = g.add_actor("a", 1.0);
            let b = g.add_actor("b", 1.0);
            g.add_edge(a, b, p1, c1, 0);
            g.add_edge(b, a, c1 * p2, p1 * p2, 100);
            let q = g.repetition_vector().unwrap();
            for e in &g.edges {
                prop_assert_eq!(e.production * q[e.src], e.consumption * q[e.dst]);
            }
            // Smallest vector: gcd of entries is 1.
            let g0 = crate::rational::gcd(q[a] as u128, q[b] as u128);
            prop_assert_eq!(g0, 1);
        }

        /// Acyclic graphs never deadlock.
        #[test]
        fn prop_acyclic_graphs_deadlock_free(
            rates in proptest::collection::vec((1u64..6, 1u64..6), 1..6)
        ) {
            let mut g = SdfGraph::new();
            let mut prev = g.add_actor("a0", 1.0);
            for (i, (p, c)) in rates.iter().enumerate() {
                let next = g.add_actor(format!("a{}", i + 1), 1.0);
                g.add_edge(prev, next, *p, *c, 0);
                prev = next;
            }
            prop_assert!(g.check_deadlock_free().is_ok());
        }
    }
}
