//! Dataflow models and baseline temporal analyses for the OIL toolchain.
//!
//! The OIL compiler extracts a **task graph** from every sequential module
//! (one task per function call or assignment, one circular buffer per
//! variable, method of Geuns et al. LCTES'13), abstracts each task as a
//! **dataflow actor** and finally derives a CTA component from it. This crate
//! provides those intermediate models plus the *exact* dataflow analyses the
//! paper compares against:
//!
//! * [`index`] — typed graph indices ([`PortId`], [`ActorId`], [`ChannelId`],
//!   [`GroupId`]) and index-keyed vectors ([`IndexVec`]) shared by every
//!   layer, so cross-indexing mistakes are type errors.
//! * [`rational`] — exact rational arithmetic used by repetition vectors,
//!   rate computations and (since the exact-rational refactor) every CTA
//!   analysis result.
//! * [`taskgraph`] — tasks, guards and circular buffers with multiple
//!   producers/consumers.
//! * [`sdf`] — Synchronous Dataflow graphs, repetition vectors, consistency
//!   and deadlock analysis.
//! * [`csdf`] — Cyclo-Static Dataflow actors with phase-dependent rates.
//! * [`hsdf`] — expansion of an SDF graph to its homogeneous equivalent and
//!   Maximum Cycle Mean throughput analysis.
//! * [`statespace`] — exact self-timed state-space throughput analysis, the
//!   exponential-time baseline referred to in the paper's related work.
//! * [`mcr`] — maximum cycle ratio analysis on weighted graphs (shared by the
//!   CTA consistency algorithm and by the HSDF analysis).
//! * [`buffer`] — circular buffers with multiple overlapping windows, the
//!   communication primitive of the paper's execution substrate.

pub mod buffer;
pub mod csdf;
pub mod hsdf;
pub mod index;
pub mod mcr;
pub mod rational;
pub mod sdf;
pub mod statespace;
pub mod taskgraph;
pub mod unionfind;

pub use buffer::CircularBuffer;
pub use csdf::CsdfGraph;
pub use hsdf::{ExactCycleRatio, HsdfGraph};
pub use index::{ActorId, ChannelId, GroupId, Idx, IndexVec, PortId};
pub use rational::Rational;
pub use sdf::{EdgeId, SdfActor, SdfEdge, SdfGraph};
pub use statespace::SelfTimedAnalysis;
pub use taskgraph::{BufferId, LoopId, Task, TaskBuffer, TaskGraph};
