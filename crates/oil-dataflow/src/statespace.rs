//! Exact self-timed state-space throughput analysis.
//!
//! This is the *exponential-time* exact analysis the paper contrasts CTA
//! against (Section II: "exact analysis algorithms to verify the satisfaction
//! of temporal constraints have an exponential time complexity"). The SDF
//! graph is executed self-timed (every actor fires as soon as it has enough
//! tokens); because the graph is consistent and deterministic, the execution
//! eventually revisits a token/actor state at an iteration boundary and the
//! steady-state period is the time between the two visits.
//!
//! The state space can be exponential in the repetition vector and in the
//! number of initial tokens, which is exactly what the benchmark
//! `scaling_poly_vs_exact` demonstrates against CTA's polynomial algorithms.

use crate::index::{ActorId, IndexVec};
use crate::rational::Rational;
use crate::sdf::{EdgeId, SdfError, SdfGraph};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Result of an exact self-timed execution analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelfTimedAnalysis {
    /// The steady-state iteration period in seconds.
    pub period: f64,
    /// Number of transient iterations before the periodic phase is entered.
    pub transient_iterations: u64,
    /// Number of iterations in one steady-state cycle of the state space.
    pub cycle_iterations: u64,
    /// Duration of one steady-state cycle in integer picoseconds: the exact
    /// time between the two visits of the repeated boundary state. Together
    /// with [`Self::cycle_iterations`] this gives the period as an exact
    /// rational (see [`Self::period_exact`]); `0` when the analysis did not
    /// converge within its iteration bound.
    pub cycle_picos: u64,
    /// Number of distinct iteration-boundary states explored.
    pub states_explored: usize,
    /// Maximum number of tokens simultaneously present on each edge during
    /// the steady state (a lower bound on the needed buffer capacity).
    pub max_tokens_per_edge: IndexVec<EdgeId, u64>,
}

impl SelfTimedAnalysis {
    /// Steady-state throughput in graph iterations per second.
    pub fn throughput(&self) -> f64 {
        if self.period <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.period
        }
    }

    /// The steady-state iteration period in seconds as an **exact rational**:
    /// `cycle_picos / (cycle_iterations · 10¹²)`. This is the value the
    /// differential harness compares bit-for-bit against CTA's exact maximal
    /// rates. `None` when the analysis did not converge (no repeated state
    /// within the iteration bound).
    pub fn period_exact(&self) -> Option<Rational> {
        if self.cycle_iterations == 0 {
            return None;
        }
        Some(Rational::new(
            self.cycle_picos as i128,
            self.cycle_iterations as i128 * 1_000_000_000_000,
        ))
    }
}

/// Fixed-point time in picoseconds used to make states hashable and the
/// simulation exactly repeatable.
type Picos = u64;

fn to_picos(seconds: f64) -> Picos {
    (seconds * 1e12).round() as Picos
}

/// One iteration-boundary state: the token distribution, the remaining busy
/// time of every in-flight actor and how many firings each actor has run
/// ahead of the completed iteration count.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BoundaryState {
    tokens: Vec<u64>,
    busy_offsets: Vec<Picos>,
    ahead: Vec<u64>,
}

/// How many iterations an actor may run ahead of the slowest actor. This
/// keeps the explored state space finite (token counts stay bounded even on
/// acyclic paths) while still allowing pipelined, overlapped execution across
/// iteration boundaries, so pipeline throughput is dominated by the
/// bottleneck actor as under true self-timed execution.
const LOOKAHEAD_ITERATIONS: u64 = 4;

/// Execute `graph` self-timed with unbounded buffers until an
/// iteration-boundary state repeats, and return the steady-state period.
///
/// `max_iterations` bounds the exploration so pathological graphs cannot run
/// away; analysis of a well-formed graph converges far earlier. When the
/// bound is hit the average period so far is reported as an estimate (useful
/// for benchmarking); use [`analyze_self_timed_budgeted`] to get a hard
/// [`SdfError::BudgetExceeded`] instead.
pub fn analyze_self_timed(
    graph: &SdfGraph,
    max_iterations: u64,
) -> Result<SelfTimedAnalysis, SdfError> {
    analyze_impl(graph, max_iterations, usize::MAX, false)
}

/// As [`analyze_self_timed`], but *strict*: the exploration refuses to keep
/// more than `max_states` distinct boundary states, refuses graphs with
/// non-finite or out-of-range firing durations, and reports hitting any
/// budget (including `max_iterations` without convergence) as
/// [`SdfError::BudgetExceeded`]. This is the entry point for harnesses that
/// feed *generated* (possibly adversarial) graphs and must skip-and-log
/// rather than OOM or accept an estimate as exact.
pub fn analyze_self_timed_budgeted(
    graph: &SdfGraph,
    max_iterations: u64,
    max_states: usize,
) -> Result<SelfTimedAnalysis, SdfError> {
    analyze_impl(graph, max_iterations, max_states, true)
}

fn analyze_impl(
    graph: &SdfGraph,
    max_iterations: u64,
    max_states: usize,
    strict: bool,
) -> Result<SelfTimedAnalysis, SdfError> {
    if strict {
        // ~1.8e7 seconds is the largest duration whose picosecond count fits
        // a u64; anything near it is an adversarial input, not a workload.
        for a in &graph.actors {
            let d = a.firing_duration;
            if !d.is_finite() || d < 0.0 || d * 1e12 >= u64::MAX as f64 {
                return Err(SdfError::BudgetExceeded {
                    what: format!("firing duration {d} is outside the picosecond time base"),
                });
            }
        }
    }
    let q = graph.check_deadlock_free()?;
    let n = graph.actors.len();
    let durations: IndexVec<ActorId, Picos> = graph
        .actors
        .iter()
        .map(|a| to_picos(a.firing_duration))
        .collect();

    let mut incoming: IndexVec<ActorId, Vec<EdgeId>> = IndexVec::from_elem(Vec::new(), n);
    let mut outgoing: IndexVec<ActorId, Vec<EdgeId>> = IndexVec::from_elem(Vec::new(), n);
    for (eid, e) in graph.edges.iter_enumerated() {
        incoming[e.dst].push(eid);
        outgoing[e.src].push(eid);
    }

    let mut tokens: IndexVec<EdgeId, u64> = graph.edges.iter().map(|e| e.initial_tokens).collect();
    let mut max_tokens = tokens.clone();
    // At most one firing of an actor is in flight at a time, modelling the
    // implicit self-edge every task has in the paper's task graphs.
    let mut busy: IndexVec<ActorId, Option<Picos>> = IndexVec::from_elem(None, n);
    let mut now: Picos = 0;
    // Cumulative completed firings per actor.
    let mut total_fired: IndexVec<ActorId, u64> = IndexVec::from_elem(0, n);
    let mut iteration: u64 = 0;

    let mut seen: HashMap<BoundaryState, (u64, Picos)> = HashMap::new();
    seen.insert(
        BoundaryState {
            tokens: tokens.as_slice().to_vec(),
            busy_offsets: vec![0; n],
            ahead: vec![0; n],
        },
        (0, 0),
    );

    while iteration < max_iterations {
        // Start every firing that can start now (consumption is atomic at
        // start, production occurs at completion). Actors may run up to
        // LOOKAHEAD_ITERATIONS iterations ahead of the completed iteration.
        loop {
            let mut progressed = false;
            for a in graph.actors.indices() {
                if busy[a].is_some() {
                    continue;
                }
                let started = total_fired[a];
                if started >= (iteration + LOOKAHEAD_ITERATIONS) * q[a] {
                    continue;
                }
                let ready = incoming[a]
                    .iter()
                    .all(|&e| tokens[e] >= graph.edges[e].consumption);
                if ready {
                    for &e in &incoming[a] {
                        tokens[e] -= graph.edges[e].consumption;
                    }
                    busy[a] = Some(now + durations[a]);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }

        // Advance time to the next completion.
        let next = busy.iter().flatten().copied().min();
        let mut idle = false;
        match next {
            Some(t) => {
                now = t;
                for a in graph.actors.indices() {
                    if busy[a] == Some(t) {
                        busy[a] = None;
                        total_fired[a] += 1;
                        for &e in &outgoing[a] {
                            tokens[e] = tokens[e]
                                .checked_add(graph.edges[e].production)
                                .ok_or_else(|| SdfError::BudgetExceeded {
                                    what: "token count overflowed u64 during state-space \
                                           exploration"
                                        .into(),
                                })?;
                            max_tokens[e] = max_tokens[e].max(tokens[e]);
                        }
                    }
                }
            }
            None => idle = true,
        }

        // Iteration boundary: every actor has completed the firings of the
        // current iteration (it may already be busy with later ones).
        let boundary_reached = total_fired
            .iter()
            .zip(&q)
            .all(|(f, qq)| *f >= (iteration + 1) * qq);
        if idle && !boundary_reached {
            // Stuck mid-iteration: cannot happen for graphs that passed the
            // deadlock check, but guard against an infinite loop regardless.
            break;
        }
        if boundary_reached {
            iteration += 1;
            let state = BoundaryState {
                tokens: tokens.as_slice().to_vec(),
                busy_offsets: busy
                    .iter()
                    .map(|b| b.map(|t| t.saturating_sub(now)).unwrap_or(0))
                    .collect(),
                ahead: total_fired
                    .iter()
                    .zip(&q)
                    .map(|(f, qq)| f.saturating_sub(iteration * qq))
                    .collect(),
            };
            if let Some(&(prev_iter, prev_time)) = seen.get(&state) {
                let cycle_iterations = iteration - prev_iter;
                let cycle_picos = now - prev_time;
                let period_picos = cycle_picos as f64 / cycle_iterations as f64;
                return Ok(SelfTimedAnalysis {
                    period: period_picos / 1e12,
                    transient_iterations: prev_iter,
                    cycle_iterations,
                    cycle_picos,
                    states_explored: seen.len(),
                    max_tokens_per_edge: max_tokens,
                });
            }
            if seen.len() >= max_states {
                return Err(SdfError::BudgetExceeded {
                    what: format!("state-space exploration exceeded {max_states} boundary states"),
                });
            }
            seen.insert(state, (iteration, now));
        }
    }

    if strict {
        return Err(SdfError::BudgetExceeded {
            what: format!("no repeated boundary state within {max_iterations} iterations"),
        });
    }
    // Did not converge within the bound; report the average period so far as
    // an estimate (still useful for benchmarking the cost of exploration).
    Ok(SelfTimedAnalysis {
        period: if iteration > 0 {
            now as f64 / 1e12 / iteration as f64
        } else {
            f64::INFINITY
        },
        transient_iterations: iteration,
        cycle_iterations: 0,
        cycle_picos: 0,
        states_explored: seen.len(),
        max_tokens_per_edge: max_tokens,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hsdf::HsdfGraph;

    #[test]
    fn two_actor_cycle_period() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1e-3);
        let b = g.add_actor("b", 2e-3);
        g.add_edge(a, b, 1, 1, 0);
        g.add_edge(b, a, 1, 1, 1);
        let res = analyze_self_timed(&g, 1000).unwrap();
        assert!((res.period - 3e-3).abs() < 1e-9, "{}", res.period);
        assert!(res.cycle_iterations >= 1);
    }

    #[test]
    fn fig2a_self_timed_period_positive_and_finite() {
        let g = SdfGraph::rate_converter(3, 3, 2, 2, 4, 1e-3);
        let res = analyze_self_timed(&g, 1000).unwrap();
        assert!(res.period.is_finite());
        assert!(res.period > 0.0);
        // One iteration requires 2 firings of f and 3 of g; with a single
        // implicit processor per actor the period is at least the per-actor
        // work: max(2, 3) * 1 ms.
        assert!(res.period >= 3e-3 - 1e-9, "{}", res.period);
    }

    #[test]
    fn deadlocking_graph_reported() {
        let g = SdfGraph::rate_converter(3, 3, 2, 2, 1, 1e-3);
        assert!(analyze_self_timed(&g, 100).is_err());
    }

    #[test]
    fn pipeline_with_enough_tokens_matches_bottleneck() {
        // a -> b -> c, all single-rate, cycle back c -> a with plenty of
        // tokens: the bottleneck actor dominates.
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1e-3);
        let b = g.add_actor("b", 4e-3);
        let c = g.add_actor("c", 2e-3);
        g.add_edge(a, b, 1, 1, 0);
        g.add_edge(b, c, 1, 1, 0);
        g.add_edge(c, a, 1, 1, 8);
        let res = analyze_self_timed(&g, 1000).unwrap();
        assert!((res.period - 4e-3).abs() < 1e-9, "{}", res.period);
    }

    #[test]
    fn self_timed_period_matches_hsdf_mcm_for_single_rate_cycles() {
        for (da, db, tokens) in [(1e-3, 2e-3, 1u64), (5e-4, 5e-4, 2), (3e-3, 1e-3, 1)] {
            let mut g = SdfGraph::new();
            let a = g.add_actor("a", da);
            let b = g.add_actor("b", db);
            g.add_edge(a, b, 1, 1, 0);
            g.add_edge(b, a, 1, 1, tokens);
            let exact = analyze_self_timed(&g, 1000).unwrap();
            let h = HsdfGraph::expand(&g).unwrap();
            let mcm = h.maximum_cycle_mean().unwrap();
            // With one initial token the period equals the MCM; with more
            // tokens the actors' own sequential behaviour (implicit
            // self-edge) can dominate, so the self-timed period is at least
            // the MCM divided by the token count and at least the largest
            // firing duration.
            assert!(
                exact.period + 1e-12 >= mcm / tokens as f64,
                "{} vs {}",
                exact.period,
                mcm
            );
            assert!(exact.period + 1e-12 >= da.max(db));
        }
    }

    #[test]
    fn max_tokens_tracks_buffer_usage() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1e-3);
        let b = g.add_actor("b", 3e-3);
        let forward = g.add_edge(a, b, 1, 1, 0);
        let back = g.add_edge(b, a, 1, 1, 3);
        let res = analyze_self_timed(&g, 1000).unwrap();
        // Edge a->b can accumulate tokens while b is busy.
        assert!(res.max_tokens_per_edge[forward] >= 1);
        assert!(res.max_tokens_per_edge[back] <= 3);
    }

    #[test]
    fn exact_period_matches_float_period() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1e-3);
        let b = g.add_actor("b", 2e-3);
        g.add_edge(a, b, 1, 1, 0);
        g.add_edge(b, a, 1, 1, 1);
        let res = analyze_self_timed(&g, 1000).unwrap();
        // 3 ms per iteration, exactly.
        assert_eq!(
            res.period_exact(),
            Some(crate::rational::Rational::new(3, 1000))
        );
        assert!((res.period - res.period_exact().unwrap().to_f64()).abs() < 1e-15);
    }

    #[test]
    fn budgeted_analysis_reports_budget_errors() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1e-3);
        let b = g.add_actor("b", 7e-4);
        g.add_edge(a, b, 2, 3, 0);
        g.add_edge(b, a, 3, 2, 12);
        // A one-state budget cannot hold the transient.
        assert!(matches!(
            analyze_self_timed_budgeted(&g, 10_000, 1),
            Err(SdfError::BudgetExceeded { .. })
        ));
        // A one-iteration bound cannot reach a repeated state: strict mode
        // refuses instead of returning an estimate.
        assert!(matches!(
            analyze_self_timed_budgeted(&g, 1, 1_000_000),
            Err(SdfError::BudgetExceeded { .. })
        ));
        // Generous budgets converge and agree with the unbudgeted analysis.
        let strict = analyze_self_timed_budgeted(&g, 10_000, 1_000_000).unwrap();
        let loose = analyze_self_timed(&g, 10_000).unwrap();
        assert_eq!(strict, loose);
    }

    #[test]
    fn non_finite_durations_rejected_in_strict_mode() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", f64::INFINITY);
        g.add_edge(a, a, 1, 1, 1);
        assert!(matches!(
            analyze_self_timed_budgeted(&g, 100, 1000),
            Err(SdfError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn states_explored_grows_with_initial_tokens() {
        let count_states = |tokens: u64| {
            let mut g = SdfGraph::new();
            let a = g.add_actor("a", 1e-3);
            let b = g.add_actor("b", 7e-4);
            g.add_edge(a, b, 2, 3, 0);
            g.add_edge(b, a, 3, 2, tokens);
            analyze_self_timed(&g, 10_000).unwrap().states_explored
        };
        // More initial tokens means a longer transient and at least as many
        // distinct boundary states.
        assert!(count_states(12) >= count_states(6));
    }
}
