//! Circular buffers with multiple overlapping windows.
//!
//! The execution substrate of the paper uses the circular buffers of Bijlsma
//! et al. (HiPEAC 2011): a generalisation of a FIFO in which **multiple
//! producers and multiple consumers** each own a sliding window into the same
//! circular array. A value written by the single active producer window
//! becomes visible to every consumer window; a location is recycled once all
//! consumer windows have released it. This is the runtime realisation of the
//! `TaskBuffer`s the compiler creates for every variable.
//!
//! The implementation here is a functional single-threaded model used by the
//! simulator ([`oil-sim`]) and by tests; it checks the same acquire/release
//! protocol a lock-free implementation would enforce with read/write
//! pointers.

use serde::{Deserialize, Serialize};

/// Error conditions of the circular-buffer protocol.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BufferError {
    /// A producer tried to acquire more space than is currently free.
    InsufficientSpace {
        /// Requested number of locations.
        requested: usize,
        /// Currently available locations.
        available: usize,
    },
    /// A consumer tried to acquire more values than are currently available
    /// to it.
    InsufficientData {
        /// Requested number of values.
        requested: usize,
        /// Values currently visible to that consumer.
        available: usize,
    },
    /// A consumer id out of range was used.
    UnknownConsumer(usize),
}

impl std::fmt::Display for BufferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BufferError::InsufficientSpace {
                requested,
                available,
            } => {
                write!(
                    f,
                    "insufficient space: requested {requested}, available {available}"
                )
            }
            BufferError::InsufficientData {
                requested,
                available,
            } => {
                write!(
                    f,
                    "insufficient data: requested {requested}, available {available}"
                )
            }
            BufferError::UnknownConsumer(id) => write!(f, "unknown consumer {id}"),
        }
    }
}

impl std::error::Error for BufferError {}

/// A circular buffer with one producer window and any number of consumer
/// windows, each observing every written value exactly once.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircularBuffer<T> {
    /// Backing storage.
    data: Vec<Option<T>>,
    /// Capacity in elements.
    capacity: usize,
    /// Total number of elements ever written (monotonic).
    written: u64,
    /// Per-consumer count of elements ever read (monotonic).
    read: Vec<u64>,
}

impl<T: Clone> CircularBuffer<T> {
    /// Create a buffer with `capacity` locations and `consumers` consumer
    /// windows.
    pub fn new(capacity: usize, consumers: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        CircularBuffer {
            data: vec![None; capacity],
            capacity,
            written: 0,
            read: vec![0; consumers.max(1)],
        }
    }

    /// Capacity in elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of consumer windows.
    pub fn consumer_count(&self) -> usize {
        self.read.len()
    }

    /// Number of values the slowest consumer has not read yet.
    pub fn occupancy(&self) -> usize {
        let min_read = self.read.iter().copied().min().unwrap_or(0);
        (self.written - min_read) as usize
    }

    /// Free space available to the producer.
    pub fn space(&self) -> usize {
        self.capacity - self.occupancy()
    }

    /// Number of values consumer `consumer` can read right now.
    pub fn available(&self, consumer: usize) -> Result<usize, BufferError> {
        let r = self
            .read
            .get(consumer)
            .ok_or(BufferError::UnknownConsumer(consumer))?;
        Ok((self.written - r) as usize)
    }

    /// Write `values` into the buffer. All values become visible to every
    /// consumer. Fails if not enough space is free.
    pub fn write(&mut self, values: &[T]) -> Result<(), BufferError> {
        if values.len() > self.space() {
            return Err(BufferError::InsufficientSpace {
                requested: values.len(),
                available: self.space(),
            });
        }
        for v in values {
            let idx = (self.written % self.capacity as u64) as usize;
            self.data[idx] = Some(v.clone());
            self.written += 1;
        }
        Ok(())
    }

    /// Read `count` values for consumer `consumer`, releasing them from that
    /// consumer's window. Values remain in the buffer until every consumer
    /// has released them.
    pub fn read(&mut self, consumer: usize, count: usize) -> Result<Vec<T>, BufferError> {
        let available = self.available(consumer)?;
        if count > available {
            return Err(BufferError::InsufficientData {
                requested: count,
                available,
            });
        }
        let mut out = Vec::with_capacity(count);
        let start = self.read[consumer];
        for i in 0..count as u64 {
            let idx = ((start + i) % self.capacity as u64) as usize;
            out.push(self.data[idx].clone().expect("value present within window"));
        }
        self.read[consumer] += count as u64;
        Ok(out)
    }

    /// Peek at `count` values for `consumer` without releasing them (the
    /// "same value read repeatedly" behaviour of OIL input streams that are
    /// read multiple times in one iteration).
    pub fn peek(&self, consumer: usize, count: usize) -> Result<Vec<T>, BufferError> {
        let available = self.available(consumer)?;
        if count > available {
            return Err(BufferError::InsufficientData {
                requested: count,
                available,
            });
        }
        let start = self.read[consumer];
        Ok((0..count as u64)
            .map(|i| {
                let idx = ((start + i) % self.capacity as u64) as usize;
                self.data[idx].clone().expect("value present within window")
            })
            .collect())
    }

    /// Total number of values ever written.
    pub fn total_written(&self) -> u64 {
        self.written
    }

    /// Total number of values consumer `consumer` has read.
    pub fn total_read(&self, consumer: usize) -> u64 {
        self.read.get(consumer).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_consumer_fifo_order() {
        let mut b: CircularBuffer<u32> = CircularBuffer::new(4, 1);
        b.write(&[1, 2, 3]).unwrap();
        assert_eq!(b.occupancy(), 3);
        assert_eq!(b.read(0, 2).unwrap(), vec![1, 2]);
        b.write(&[4, 5, 6]).unwrap();
        assert_eq!(b.read(0, 4).unwrap(), vec![3, 4, 5, 6]);
        assert_eq!(b.occupancy(), 0);
        assert_eq!(b.space(), 4);
    }

    #[test]
    fn overflow_rejected() {
        let mut b: CircularBuffer<u8> = CircularBuffer::new(3, 1);
        b.write(&[1, 2]).unwrap();
        let err = b.write(&[3, 4]).unwrap_err();
        assert_eq!(
            err,
            BufferError::InsufficientSpace {
                requested: 2,
                available: 1
            }
        );
    }

    #[test]
    fn underflow_rejected() {
        let mut b: CircularBuffer<u8> = CircularBuffer::new(3, 1);
        b.write(&[7]).unwrap();
        let err = b.read(0, 2).unwrap_err();
        assert_eq!(
            err,
            BufferError::InsufficientData {
                requested: 2,
                available: 1
            }
        );
    }

    #[test]
    fn multiple_consumers_all_observe_every_value() {
        let mut b: CircularBuffer<u16> = CircularBuffer::new(8, 3);
        b.write(&[10, 20, 30]).unwrap();
        for c in 0..3 {
            assert_eq!(b.peek(c, 3).unwrap(), vec![10, 20, 30]);
        }
        assert_eq!(b.read(0, 3).unwrap(), vec![10, 20, 30]);
        assert_eq!(b.read(1, 1).unwrap(), vec![10]);
        // Space is limited by the slowest consumer (consumer 2 read nothing).
        assert_eq!(b.occupancy(), 3);
        assert_eq!(b.space(), 5);
        assert_eq!(b.read(2, 3).unwrap(), vec![10, 20, 30]);
        assert_eq!(b.read(1, 2).unwrap(), vec![20, 30]);
        assert_eq!(b.occupancy(), 0);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut b: CircularBuffer<u8> = CircularBuffer::new(2, 1);
        b.write(&[9]).unwrap();
        assert_eq!(b.peek(0, 1).unwrap(), vec![9]);
        assert_eq!(b.peek(0, 1).unwrap(), vec![9]);
        assert_eq!(b.available(0).unwrap(), 1);
        assert_eq!(b.read(0, 1).unwrap(), vec![9]);
        assert_eq!(b.available(0).unwrap(), 0);
    }

    #[test]
    fn unknown_consumer_error() {
        let b: CircularBuffer<u8> = CircularBuffer::new(2, 1);
        assert_eq!(b.available(5), Err(BufferError::UnknownConsumer(5)));
    }

    #[test]
    fn wrap_around_many_times() {
        let mut b: CircularBuffer<u64> = CircularBuffer::new(3, 1);
        for i in 0..1000u64 {
            b.write(&[i]).unwrap();
            assert_eq!(b.read(0, 1).unwrap(), vec![i]);
        }
        assert_eq!(b.total_written(), 1000);
        assert_eq!(b.total_read(0), 1000);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: CircularBuffer<u8> = CircularBuffer::new(0, 1);
    }

    proptest! {
        /// Data read out always equals data written, in order, for any
        /// interleaving of writes and reads that respects the protocol.
        #[test]
        fn prop_fifo_preserves_order(ops in proptest::collection::vec(0u8..3, 1..200)) {
            let mut b: CircularBuffer<u64> = CircularBuffer::new(5, 1);
            let mut next_write = 0u64;
            let mut next_read = 0u64;
            for op in ops {
                if op < 2 {
                    if b.space() >= 1 {
                        b.write(&[next_write]).unwrap();
                        next_write += 1;
                    }
                } else if b.available(0).unwrap() >= 1 {
                    let v = b.read(0, 1).unwrap();
                    prop_assert_eq!(v[0], next_read);
                    next_read += 1;
                }
            }
            prop_assert!(next_read <= next_write);
            prop_assert_eq!(b.occupancy() as u64, next_write - next_read);
        }

        /// Occupancy never exceeds capacity and space + occupancy == capacity.
        #[test]
        fn prop_occupancy_bounded(
            writes in proptest::collection::vec(1usize..4, 1..50),
            capacity in 4usize..16,
        ) {
            let mut b: CircularBuffer<u8> = CircularBuffer::new(capacity, 2);
            for w in writes {
                if b.space() >= w {
                    b.write(&vec![0u8; w]).unwrap();
                }
                // Consumer 0 reads aggressively, consumer 1 lags.
                let avail = b.available(0).unwrap();
                if avail > 0 {
                    b.read(0, avail).unwrap();
                }
                if b.available(1).unwrap() > 2 {
                    b.read(1, 1).unwrap();
                }
                prop_assert!(b.occupancy() <= b.capacity());
                prop_assert_eq!(b.space() + b.occupancy(), b.capacity());
            }
        }
    }
}
