//! A minimal union-find (disjoint-set) over `0..n`.
//!
//! Used wherever a pass groups graph elements by shared structure — e.g.
//! the runtime-graph plan's serial clusters (nodes contending on a buffer)
//! and the self-timed engine's worker partition (weakly-connected
//! components). Roots are canonicalised to the **smallest** member of a
//! set, so grouping by root yields deterministic, id-ordered
//! representatives.

/// Disjoint sets over the indices `0..n`, with path compression and
/// min-element roots.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    /// The canonical (smallest) member of `i`'s set.
    pub fn find(&mut self, i: usize) -> usize {
        let mut root = i;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut at = i;
        while self.parent[at] != root {
            let next = self.parent[at];
            self.parent[at] = root;
            at = next;
        }
        root
    }

    /// Merge the sets of `a` and `b`; the smaller root wins, keeping the
    /// canonical member the minimum of the merged set.
    pub fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when tracking no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_are_minimal_members() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 2);
        uf.union(2, 5);
        uf.union(1, 3);
        assert_eq!(uf.find(5), 2);
        assert_eq!(uf.find(4), 2);
        assert_eq!(uf.find(3), 1);
        assert_eq!(uf.find(0), 0);
        // Merging two sets keeps the global minimum as the root.
        uf.union(3, 4);
        for i in [1, 2, 3, 4, 5] {
            assert_eq!(uf.find(i), 1);
        }
        assert_eq!(uf.len(), 6);
        assert!(!uf.is_empty());
    }
}
