//! Task graphs extracted from sequential OIL modules.
//!
//! Following the method of Geuns et al. (LCTES 2013) that the paper builds on
//! (Section IV): a **task** is created for every function call and assignment
//! statement of a sequential module; statements guarded by `if`/`switch`
//! still become *unconditionally executing* tasks whose bodies remain
//! guarded, and a **circular buffer** is created for every variable, with one
//! producer per statement writing it and one consumer per statement reading
//! it.
//!
//! The task graph is the intermediate form between the OIL AST (built by the
//! `oil-compiler` crate) and the dataflow/CTA abstractions: it knows nothing
//! about OIL syntax, only about tasks, buffers, access counts and the
//! while-loop nest each task lives in. Tasks are indexed by [`ActorId`] —
//! every task becomes exactly one dataflow actor, so the ids carry over to
//! the SDF conversion unchanged.

use crate::define_index_type;
use crate::index::{ActorId, IndexVec};
use crate::sdf::SdfGraph;
use serde::{Deserialize, Serialize};

define_index_type! {
    /// A circular buffer of a task graph (one per variable or stream).
    pub struct BufferId = "b";
}

define_index_type! {
    /// A while-loop of a sequential module.
    pub struct LoopId = "l";
}

/// One access of a task to a buffer: how many values per firing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortAccess {
    /// The accessed buffer.
    pub buffer: BufferId,
    /// Values transferred per task firing.
    pub count: u64,
}

/// A task: the unit of parallel execution extracted from one statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Unique name within the task graph (e.g. `tg`, `tf#2`).
    pub name: String,
    /// The coordinated function this task executes (or `"="` for an
    /// assignment statement).
    pub function: String,
    /// Worst-case response time of one firing, in seconds.
    pub response_time: f64,
    /// True if the statement is nested under `if`/`switch`: the task itself
    /// executes unconditionally, but its body is guarded (Fig. 4 of the
    /// paper).
    pub guarded: bool,
    /// The chain of while-loop ids (outermost first) this task is nested in;
    /// empty for prologue statements outside any loop.
    pub loop_nest: Vec<LoopId>,
    /// Buffers read per firing.
    pub reads: Vec<PortAccess>,
    /// Buffers written per firing.
    pub writes: Vec<PortAccess>,
}

/// A circular buffer created for a variable or stream of the module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskBuffer {
    /// Buffer name (the variable/stream name, possibly suffixed).
    pub name: String,
    /// Values present before execution starts (written by prologue
    /// statements such as `init(out c:4)`).
    pub initial_tokens: u64,
    /// Capacity in values, once buffer sizing has run; `None` while unsized
    /// (modelled as unbounded).
    pub capacity: Option<u64>,
    /// If this buffer realises (part of) a module stream parameter, the
    /// stream's name.
    pub stream: Option<String>,
}

/// A while-loop of the sequential module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopInfo {
    /// Loop id (index into [`TaskGraph::loops`]).
    pub id: LoopId,
    /// Parent loop id for nested loops.
    pub parent: Option<LoopId>,
    /// Tasks whose innermost enclosing loop is this one.
    pub tasks: Vec<ActorId>,
    /// True if the loop condition is the constant `1` (an infinite stream
    /// loop).
    pub infinite: bool,
}

/// The task graph of one sequential module.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    /// Name of the module this graph was extracted from.
    pub module: String,
    /// Tasks, indexed by the actor id they become in the SDF conversion.
    pub tasks: IndexVec<ActorId, Task>,
    /// Buffers.
    pub buffers: IndexVec<BufferId, TaskBuffer>,
    /// While-loops (top-level and nested).
    pub loops: IndexVec<LoopId, LoopInfo>,
}

impl TaskGraph {
    /// An empty task graph for `module`.
    pub fn new(module: impl Into<String>) -> Self {
        TaskGraph {
            module: module.into(),
            ..Default::default()
        }
    }

    /// Add a buffer, returning its index.
    pub fn add_buffer(&mut self, buffer: TaskBuffer) -> BufferId {
        self.buffers.push(buffer)
    }

    /// Add a task, returning its index.
    pub fn add_task(&mut self, task: Task) -> ActorId {
        self.tasks.push(task)
    }

    /// Add a loop, returning its id.
    pub fn add_loop(&mut self, parent: Option<LoopId>, infinite: bool) -> LoopId {
        let id = self.loops.next_index();
        self.loops.push(LoopInfo {
            id,
            parent,
            tasks: Vec::new(),
            infinite,
        })
    }

    /// Producers (task, values per firing) of `buffer`.
    pub fn producers(&self, buffer: BufferId) -> Vec<(ActorId, u64)> {
        self.tasks
            .iter_enumerated()
            .flat_map(|(t, task)| {
                task.writes
                    .iter()
                    .filter(move |w| w.buffer == buffer)
                    .map(move |w| (t, w.count))
            })
            .collect()
    }

    /// Consumers (task, values per firing) of `buffer`.
    pub fn consumers(&self, buffer: BufferId) -> Vec<(ActorId, u64)> {
        self.tasks
            .iter_enumerated()
            .flat_map(|(t, task)| {
                task.reads
                    .iter()
                    .filter(move |r| r.buffer == buffer)
                    .map(move |r| (t, r.count))
            })
            .collect()
    }

    /// Find a buffer by name.
    pub fn buffer_by_name(&self, name: &str) -> Option<BufferId> {
        self.buffers.position(|b| b.name == name)
    }

    /// Find a task by name.
    pub fn task_by_name(&self, name: &str) -> Option<ActorId> {
        self.tasks.position(|t| t.name == name)
    }

    /// Total number of values written to `buffer` per firing of all its
    /// producers (used when distributing stream rates).
    pub fn total_production(&self, buffer: BufferId) -> u64 {
        self.producers(buffer).iter().map(|(_, c)| c).sum()
    }

    /// Total number of values read from `buffer` per firing of all its
    /// consumers.
    pub fn total_consumption(&self, buffer: BufferId) -> u64 {
        self.consumers(buffer).iter().map(|(_, c)| c).sum()
    }

    /// Convert the task graph to an SDF graph (paper Section V-B1): one actor
    /// per task (with the *same* [`ActorId`]); for every buffer, a data edge
    /// from each producer to each consumer carrying the initial tokens, plus
    /// — when the buffer has a finite capacity — an oppositely directed space
    /// edge initialised with the remaining free space. Every task also gets a
    /// self-edge with one token, modelling that its firings do not overlap
    /// (tasks execute on a single processor at a time).
    pub fn to_sdf(&self) -> SdfGraph {
        let mut g = SdfGraph::new();
        for t in &self.tasks {
            let a = g.add_actor(t.name.clone(), t.response_time);
            g.add_named_edge(format!("self_{}", t.name), a, a, 1, 1, 1);
        }
        for (bi, b) in self.buffers.iter_enumerated() {
            let producers = self.producers(bi);
            let consumers = self.consumers(bi);
            for &(p, pc) in &producers {
                for &(c, cc) in &consumers {
                    g.add_named_edge(
                        format!("{}_{}to{}", b.name, p, c),
                        p,
                        c,
                        pc,
                        cc,
                        b.initial_tokens,
                    );
                    if let Some(cap) = b.capacity {
                        let free = cap.saturating_sub(b.initial_tokens);
                        g.add_named_edge(
                            format!("{}_space_{}to{}", b.name, c, p),
                            c,
                            p,
                            cc,
                            pc,
                            free,
                        );
                    }
                }
            }
        }
        g
    }

    /// Tasks directly contained in loop `loop_id` (not in nested loops).
    pub fn tasks_in_loop(&self, loop_id: LoopId) -> Vec<ActorId> {
        self.tasks
            .iter_enumerated()
            .filter(|(_, t)| t.loop_nest.last() == Some(&loop_id))
            .map(|(i, _)| i)
            .collect()
    }

    /// Prologue tasks (outside every loop).
    pub fn prologue_tasks(&self) -> Vec<ActorId> {
        self.tasks
            .iter_enumerated()
            .filter(|(_, t)| t.loop_nest.is_empty())
            .map(|(i, _)| i)
            .collect()
    }
}

/// True when `level(b)` satisfies every `(buffer, count)` port of `ports`,
/// counting ports on the **same** buffer cumulatively: a task touching one
/// buffer through two ports (e.g. `f(a, a)`) consumes/produces the *sum*
/// per firing, so gating each port's count individually would admit a
/// firing the buffer cannot actually serve. Shared by every execution
/// engine's admission rule (the firing itself then transfers per port, in
/// port order).
pub fn ports_satisfied<B: Copy + Eq>(
    ports: &[(B, usize)],
    mut level: impl FnMut(B) -> usize,
) -> bool {
    ports.iter().all(|&(b, _)| {
        let need: usize = ports
            .iter()
            .filter(|&&(pb, _)| pb == b)
            .map(|&(_, c)| c)
            .sum();
        level(b) >= need
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Idx;

    #[test]
    fn ports_satisfied_sums_same_buffer_ports() {
        // Two ports on buffer 0 gate on the sum, not each count alone.
        let ports = [(0usize, 1), (0, 1), (1, 2)];
        assert!(ports_satisfied(&ports, |b| [2, 2][b]));
        assert!(!ports_satisfied(&ports, |b| [1, 2][b]));
        assert!(!ports_satisfied(&ports, |b| [2, 1][b]));
        assert!(ports_satisfied::<usize>(&[], |_| 0));
    }

    /// Hand-built task graph of the paper's Fig. 4: tasks tg and th guarded by
    /// the if statement, task tk consuming y and producing two values to x.
    fn fig4_taskgraph() -> TaskGraph {
        let mut tg = TaskGraph::new("M");
        let by = tg.add_buffer(TaskBuffer {
            name: "y".into(),
            initial_tokens: 0,
            capacity: Some(2),
            stream: None,
        });
        let bx = tg.add_buffer(TaskBuffer {
            name: "x".into(),
            initial_tokens: 0,
            capacity: Some(4),
            stream: Some("x".into()),
        });
        tg.add_task(Task {
            name: "tg".into(),
            function: "g".into(),
            response_time: 1e-6,
            guarded: true,
            loop_nest: vec![],
            reads: vec![],
            writes: vec![PortAccess {
                buffer: by,
                count: 1,
            }],
        });
        tg.add_task(Task {
            name: "th".into(),
            function: "h".into(),
            response_time: 1e-6,
            guarded: true,
            loop_nest: vec![],
            reads: vec![],
            writes: vec![PortAccess {
                buffer: by,
                count: 1,
            }],
        });
        tg.add_task(Task {
            name: "tk".into(),
            function: "k".into(),
            response_time: 2e-6,
            guarded: false,
            loop_nest: vec![],
            reads: vec![PortAccess {
                buffer: by,
                count: 2,
            }],
            writes: vec![PortAccess {
                buffer: bx,
                count: 2,
            }],
        });
        tg
    }

    #[test]
    fn producers_and_consumers() {
        let tg = fig4_taskgraph();
        let by = tg.buffer_by_name("y").unwrap();
        let bx = tg.buffer_by_name("x").unwrap();
        assert_eq!(tg.producers(by).len(), 2);
        assert_eq!(tg.consumers(by).len(), 1);
        assert_eq!(tg.producers(bx).len(), 1);
        assert_eq!(tg.consumers(bx).len(), 0);
        assert_eq!(tg.total_production(by), 2);
        assert_eq!(tg.total_consumption(by), 2);
        // Guarded tasks are marked as such but present unconditionally.
        assert!(tg.tasks[tg.task_by_name("tg").unwrap()].guarded);
        assert!(!tg.tasks[tg.task_by_name("tk").unwrap()].guarded);
    }

    #[test]
    fn to_sdf_structure() {
        let tg = fig4_taskgraph();
        let sdf = tg.to_sdf();
        // 3 actors; edges: 3 self-edges + y: 2 producers x 1 consumer x 2
        // (data+space) = 4 edges; x has no consumers so no edges.
        assert_eq!(sdf.actor_count(), 3);
        assert_eq!(sdf.edge_count(), 3 + 4);
        assert!(sdf.is_consistent());
        // Task ids carry over: task `tk` is the same ActorId in the SDF graph.
        let tk = tg.task_by_name("tk").unwrap();
        assert_eq!(sdf.actor_by_name("tk"), Some(tk));
    }

    #[test]
    fn loops_and_prologue_classification() {
        let mut tg = TaskGraph::new("B");
        let c = tg.add_buffer(TaskBuffer {
            name: "c".into(),
            initial_tokens: 0,
            capacity: None,
            stream: Some("c".into()),
        });
        // Prologue: init writes 4 values.
        tg.add_task(Task {
            name: "t_init".into(),
            function: "init".into(),
            response_time: 1e-6,
            guarded: false,
            loop_nest: vec![],
            reads: vec![],
            writes: vec![PortAccess {
                buffer: c,
                count: 4,
            }],
        });
        let l0 = tg.add_loop(None, true);
        let t_g = tg.add_task(Task {
            name: "t_g".into(),
            function: "g".into(),
            response_time: 1e-6,
            guarded: false,
            loop_nest: vec![l0],
            reads: vec![],
            writes: vec![PortAccess {
                buffer: c,
                count: 2,
            }],
        });
        tg.loops[l0].tasks.push(t_g);

        assert_eq!(tg.prologue_tasks(), vec![ActorId::new(0)]);
        assert_eq!(tg.tasks_in_loop(l0), vec![ActorId::new(1)]);
        assert!(tg.loops[l0].infinite);
        assert_eq!(tg.loops[l0].parent, None);
    }

    #[test]
    fn nested_loops_parenting() {
        let mut tg = TaskGraph::new("N");
        let outer = tg.add_loop(None, true);
        let inner = tg.add_loop(Some(outer), false);
        assert_eq!(tg.loops[inner].parent, Some(outer));
        let b = tg.add_buffer(TaskBuffer {
            name: "v".into(),
            initial_tokens: 0,
            capacity: None,
            stream: None,
        });
        tg.add_task(Task {
            name: "t".into(),
            function: "f".into(),
            response_time: 1e-6,
            guarded: false,
            loop_nest: vec![outer, inner],
            reads: vec![],
            writes: vec![PortAccess {
                buffer: b,
                count: 1,
            }],
        });
        assert_eq!(tg.tasks_in_loop(inner), vec![ActorId::new(0)]);
        assert!(tg.tasks_in_loop(outer).is_empty());
    }

    #[test]
    fn capacity_becomes_space_edge_tokens() {
        let mut tg = TaskGraph::new("P");
        let b = tg.add_buffer(TaskBuffer {
            name: "q".into(),
            initial_tokens: 1,
            capacity: Some(5),
            stream: None,
        });
        let p = tg.add_task(Task {
            name: "prod".into(),
            function: "f".into(),
            response_time: 1e-6,
            guarded: false,
            loop_nest: vec![],
            reads: vec![],
            writes: vec![PortAccess {
                buffer: b,
                count: 1,
            }],
        });
        let c = tg.add_task(Task {
            name: "cons".into(),
            function: "g".into(),
            response_time: 1e-6,
            guarded: false,
            loop_nest: vec![],
            reads: vec![PortAccess {
                buffer: b,
                count: 1,
            }],
            writes: vec![],
        });
        let sdf = tg.to_sdf();
        let space_edge = sdf
            .edges
            .iter()
            .find(|e| e.name.contains("space"))
            .expect("space edge present");
        assert_eq!(space_edge.src, c);
        assert_eq!(space_edge.dst, p);
        assert_eq!(space_edge.initial_tokens, 4);
        assert!(sdf.check_deadlock_free().is_ok());
    }
}
