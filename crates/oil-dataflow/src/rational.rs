//! Exact rational arithmetic.
//!
//! Repetition vectors, transfer-rate ratios and rate-conversion factors (such
//! as the PAL decoder's 10/16 resampling factor) must be computed exactly;
//! floating point would accumulate error and make consistency checks flaky.
//! This is a small self-contained implementation over `i128` with automatic
//! normalisation.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Greatest common divisor of two non-negative integers.
pub fn gcd(a: u128, b: u128) -> u128 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple of two positive integers.
pub fn lcm(a: u128, b: u128) -> u128 {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd(a, b) * b
}

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(|num|, den) == 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Construct `num / den`, normalising sign and common factors.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let sign = if (num < 0) != (den < 0) && num != 0 { -1 } else { 1 };
        let (num, den) = (num.unsigned_abs(), den.unsigned_abs());
        let g = gcd(num, den).max(1);
        Rational { num: sign * (num / g) as i128, den: (den / g) as i128 }
    }

    /// Construct from an integer.
    pub fn from_int(n: i128) -> Self {
        Rational { num: n, den: 1 }
    }

    /// The numerator (sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// The value as `f64` (approximate).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// True if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// True if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// The absolute value.
    pub fn abs(&self) -> Self {
        Rational { num: self.num.abs(), den: self.den }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> i128 {
        if self.num >= 0 {
            (self.num + self.den - 1) / self.den
        } else {
            self.num / self.den
        }
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            (self.num - self.den + 1) / self.den
        }
    }

    /// Minimum of two rationals.
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        assert!(rhs.num != 0, "division by zero rational");
        Rational::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational { num: -self.num, den: self.den }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(n as i128)
    }
}

impl From<u64> for Rational {
    fn from(n: u64) -> Self {
        Rational::from_int(n as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
    }

    #[test]
    fn construction_normalises() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, 4), Rational::new(1, -2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(0, 7), Rational::ZERO);
        assert_eq!(Rational::new(6, 3).denom(), 1);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(3, 2);
        let b = Rational::new(2, 3);
        assert_eq!(a * b, Rational::ONE);
        assert_eq!(a + b, Rational::new(13, 6));
        assert_eq!(a - b, Rational::new(5, 6));
        assert_eq!(a / b, Rational::new(9, 4));
        assert_eq!(-a, Rational::new(-3, 2));
        assert_eq!(a.recip(), b);
        assert_eq!(Rational::ONE.recip(), Rational::ONE);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 2);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(Rational::new(-1, 2) < Rational::ZERO);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(4, 2).ceil(), 2);
        assert_eq!(Rational::new(4, 2).floor(), 2);
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(10, 16).to_string(), "5/8");
        assert_eq!(Rational::from_int(4).to_string(), "4");
        assert_eq!(Rational::new(-3, 6).to_string(), "-1/2");
    }

    #[test]
    fn pal_rate_conversion_factors() {
        // The PAL decoder's conversion chain: 6.4 MHz * 1/25 * 1/8 = 32 kHz
        // and 6.4 MHz * 10/16 = 4 MHz.
        let rf = Rational::from_int(6_400_000);
        let audio = rf * Rational::new(1, 25) * Rational::new(1, 8);
        assert_eq!(audio, Rational::from_int(32_000));
        let video = rf * Rational::new(10, 16);
        assert_eq!(video, Rational::from_int(4_000_000));
    }

    proptest! {
        #[test]
        fn prop_add_commutes(a in -1000i128..1000, b in 1i128..1000, c in -1000i128..1000, d in 1i128..1000) {
            let x = Rational::new(a, b);
            let y = Rational::new(c, d);
            prop_assert_eq!(x + y, y + x);
        }

        #[test]
        fn prop_mul_inverse(a in 1i128..1000, b in 1i128..1000) {
            let x = Rational::new(a, b);
            prop_assert_eq!(x * x.recip(), Rational::ONE);
        }

        #[test]
        fn prop_ordering_consistent_with_f64(a in -1000i128..1000, b in 1i128..1000, c in -1000i128..1000, d in 1i128..1000) {
            let x = Rational::new(a, b);
            let y = Rational::new(c, d);
            if x < y {
                prop_assert!(x.to_f64() < y.to_f64() + 1e-12);
            }
        }

        #[test]
        fn prop_floor_le_ceil(a in -10_000i128..10_000, b in 1i128..100) {
            let x = Rational::new(a, b);
            prop_assert!(x.floor() <= x.ceil());
            prop_assert!(Rational::from_int(x.floor()) <= x);
            prop_assert!(Rational::from_int(x.ceil()) >= x);
        }
    }
}
