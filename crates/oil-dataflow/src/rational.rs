//! Exact rational arithmetic.
//!
//! Repetition vectors, transfer-rate ratios, rate-conversion factors (such
//! as the PAL decoder's 10/16 resampling factor) and — since the
//! exact-rational refactor — every rate, offset and slack inside the CTA
//! analyses are computed exactly; floating point would accumulate error and
//! make consistency checks flaky. This is a small self-contained
//! implementation over `i128` with automatic normalisation.
//!
//! All arithmetic is *checked*: an overflowing operation panics with a clear
//! message instead of silently wrapping, and the `checked_*` methods expose
//! the fallible versions. `f64` appears only at the API boundary, through
//! [`Rational::from_f64_lossless`] (exact by construction) and
//! [`Rational::to_f64`] (the closest double).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Greatest common divisor of two non-negative integers.
pub fn gcd(a: u128, b: u128) -> u128 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple of two positive integers.
pub fn lcm(a: u128, b: u128) -> u128 {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd(a, b) * b
}

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(|num|, den) == 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Construct `num / den`, normalising sign and common factors.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        Rational::checked_new(num, den).expect("rational with zero denominator")
    }

    /// Construct `num / den`, returning `None` when `den == 0`.
    pub fn checked_new(num: i128, den: i128) -> Option<Self> {
        if den == 0 {
            return None;
        }
        let sign = if (num < 0) != (den < 0) && num != 0 {
            -1
        } else {
            1
        };
        let (num, den) = (num.unsigned_abs(), den.unsigned_abs());
        let g = gcd(num, den).max(1);
        Some(Rational {
            num: sign * (num / g) as i128,
            den: (den / g) as i128,
        })
    }

    /// Construct from an integer.
    pub const fn from_int(n: i128) -> Self {
        Rational { num: n, den: 1 }
    }

    /// The numerator (sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// The value as `f64` (the closest double; exact whenever the value was
    /// produced by [`Rational::from_f64_lossless`]). This is the only place
    /// analysis results are allowed to degrade to floating point, and it
    /// happens after the exact algorithms have finished.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Convert a finite `f64` to the *exactly equal* rational, or `None` for
    /// NaN/infinite inputs (and for subnormals too extreme for `i128`).
    ///
    /// Decimal denominators are preferred: source-level literals such as
    /// `6.4e6`, `2e-4` or `0.125` become small fractions (`32/5 · 10^6`,
    /// `1/5000`, `1/8`) rather than the wide dyadic fractions a raw
    /// mantissa/exponent decomposition would produce, which keeps the
    /// downstream exact arithmetic far away from `i128` overflow. In every
    /// case the result satisfies `result.to_f64() == x`.
    pub fn from_f64_lossless(x: f64) -> Option<Rational> {
        if !x.is_finite() {
            return None;
        }
        if x == 0.0 {
            return Some(Rational::ZERO);
        }
        // Preferred path: a denominator 10^k with an exactly-representable
        // scaled numerator.
        let mut den: i128 = 1;
        for _ in 0..=18 {
            let scaled = x * den as f64;
            if scaled.fract() == 0.0 && scaled.abs() <= 9_007_199_254_740_992.0 {
                let candidate = Rational::new(scaled as i128, den);
                if candidate.to_f64() == x {
                    return Some(candidate);
                }
            }
            den = den.checked_mul(10)?;
        }
        // Fallback: exact dyadic decomposition of the IEEE-754 value.
        let bits = x.to_bits();
        let sign: i128 = if bits >> 63 == 1 { -1 } else { 1 };
        let biased_exp = ((bits >> 52) & 0x7FF) as i64;
        let fraction = (bits & ((1u64 << 52) - 1)) as i128;
        let (mantissa, exp) = if biased_exp == 0 {
            (fraction, -1074i64) // subnormal
        } else {
            (fraction | (1i128 << 52), biased_exp - 1075)
        };
        let value = if exp >= 0 {
            if exp >= 74 {
                return None; // sign * mantissa * 2^exp would overflow i128
            }
            Rational::from_int(sign * (mantissa << exp))
        } else {
            if exp <= -126 {
                return None; // denominator 2^(-exp) would overflow i128
            }
            Rational::new(sign * mantissa, 1i128 << (-exp))
        };
        debug_assert!(value.to_f64() == x);
        Some(value)
    }

    /// As [`Rational::from_f64_lossless`], panicking on NaN/infinite input.
    pub fn from_f64(x: f64) -> Rational {
        Rational::from_f64_lossless(x)
            .unwrap_or_else(|| panic!("{x} has no exact rational representation"))
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// True if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// True if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// The absolute value.
    pub fn abs(&self) -> Self {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> i128 {
        if self.num >= 0 {
            (self.num + self.den - 1) / self.den
        } else {
            self.num / self.den
        }
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            (self.num - self.den + 1) / self.den
        }
    }

    /// Minimum of two rationals.
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Checked addition; `None` on `i128` overflow.
    pub fn checked_add(self, rhs: Rational) -> Option<Rational> {
        // Work over the lcm of the denominators to keep intermediates small.
        let g = gcd(self.den as u128, rhs.den as u128) as i128;
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        let num = self
            .num
            .checked_mul(lhs_scale)?
            .checked_add(rhs.num.checked_mul(rhs_scale)?)?;
        let den = self.den.checked_mul(lhs_scale)?;
        Rational::checked_new(num, den)
    }

    /// Checked subtraction; `None` on `i128` overflow.
    pub fn checked_sub(self, rhs: Rational) -> Option<Rational> {
        self.checked_add(-rhs)
    }

    /// Checked multiplication; `None` on `i128` overflow.
    pub fn checked_mul(self, rhs: Rational) -> Option<Rational> {
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = gcd(self.num.unsigned_abs(), rhs.den as u128).max(1) as i128;
        let g2 = gcd(rhs.num.unsigned_abs(), self.den as u128).max(1) as i128;
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Rational::checked_new(num, den)
    }

    /// Checked division; `None` on `i128` overflow or division by zero.
    pub fn checked_div(self, rhs: Rational) -> Option<Rational> {
        if rhs.num == 0 {
            return None;
        }
        self.checked_mul(Rational::new(rhs.den, rhs.num))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        self.checked_add(rhs)
            .expect("rational addition overflowed i128")
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self.checked_sub(rhs)
            .expect("rational subtraction overflowed i128")
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        self.checked_mul(rhs)
            .expect("rational multiplication overflowed i128")
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        assert!(rhs.num != 0, "division by zero rational");
        self.checked_div(rhs)
            .expect("rational division overflowed i128")
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Fast path: cross-reduce, then cross-multiply when that fits i128.
        let g_num = gcd(self.num.unsigned_abs(), other.num.unsigned_abs()).max(1) as i128;
        let g_den = gcd(self.den as u128, other.den as u128).max(1) as i128;
        let lhs = (self.num / g_num).checked_mul(other.den / g_den);
        let rhs = (other.num / g_num).checked_mul(self.den / g_den);
        if let (Some(l), Some(r)) = (lhs, rhs) {
            return l.cmp(&r);
        }
        // Overflow path: exact continued-fraction comparison. Compare the
        // integer parts; when they tie, the order of the fractional parts is
        // the *reverse* of the order of their reciprocals, so swap and
        // recurse on (den, remainder) — the Euclidean algorithm, which
        // terminates and never overflows. This keeps `cmp` consistent with
        // `Eq` for every representable value, with no approximation.
        let (mut a, mut b) = (self.num, self.den);
        let (mut c, mut d) = (other.num, other.den);
        let mut flipped = false;
        loop {
            let (q1, r1) = (a.div_euclid(b), a.rem_euclid(b));
            let (q2, r2) = (c.div_euclid(d), c.rem_euclid(d));
            let ord = match q1.cmp(&q2) {
                Ordering::Equal => match (r1 == 0, r2 == 0) {
                    (true, true) => Ordering::Equal,
                    (true, false) => Ordering::Less,
                    (false, true) => Ordering::Greater,
                    (false, false) => {
                        // cmp(r1/b, r2/d) == reverse(cmp(b/r1, d/r2)):
                        // reciprocals of positive fractions reverse the order.
                        (a, b, c, d) = (b, r1, d, r2);
                        flipped = !flipped;
                        continue;
                    }
                },
                unequal => unequal,
            };
            return if flipped { ord.reverse() } else { ord };
        }
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(n as i128)
    }
}

impl From<u64> for Rational {
    fn from(n: u64) -> Self {
        Rational::from_int(n as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
    }

    #[test]
    fn construction_normalises() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, 4), Rational::new(1, -2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(0, 7), Rational::ZERO);
        assert_eq!(Rational::new(6, 3).denom(), 1);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn checked_new_rejects_zero_denominator() {
        assert_eq!(Rational::checked_new(1, 0), None);
        assert_eq!(Rational::checked_new(3, -6), Some(Rational::new(-1, 2)));
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(3, 2);
        let b = Rational::new(2, 3);
        assert_eq!(a * b, Rational::ONE);
        assert_eq!(a + b, Rational::new(13, 6));
        assert_eq!(a - b, Rational::new(5, 6));
        assert_eq!(a / b, Rational::new(9, 4));
        assert_eq!(-a, Rational::new(-3, 2));
        assert_eq!(a.recip(), b);
        assert_eq!(Rational::ONE.recip(), Rational::ONE);
    }

    #[test]
    fn assign_operators() {
        let mut x = Rational::new(1, 2);
        x += Rational::new(1, 3);
        assert_eq!(x, Rational::new(5, 6));
        x -= Rational::new(1, 6);
        assert_eq!(x, Rational::new(2, 3));
    }

    #[test]
    fn checked_ops_report_overflow() {
        let huge = Rational::from_int(i128::MAX / 2 + 1);
        assert_eq!(huge.checked_add(huge), None);
        assert_eq!(huge.checked_mul(Rational::from_int(3)), None);
        assert_eq!(huge.checked_sub(-huge), None);
        // Near-limit values that *can* be represented still work.
        assert_eq!(
            huge.checked_add(Rational::from_int(-1)),
            Some(Rational::from_int(i128::MAX / 2))
        );
        // Division by zero is None, not a panic, in the checked API.
        assert_eq!(Rational::ONE.checked_div(Rational::ZERO), None);
    }

    #[test]
    fn checked_mul_cross_reduces() {
        // Naive num*num would overflow; cross-reduction keeps it exact.
        let a = Rational::new(i128::MAX / 4, 3);
        let b = Rational::new(3, i128::MAX / 4);
        assert_eq!(a.checked_mul(b), Some(Rational::ONE));
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 2);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(Rational::new(-1, 2) < Rational::ZERO);
    }

    #[test]
    fn ordering_survives_large_components() {
        let big = Rational::new(i128::MAX / 3, i128::MAX / 5);
        let small = Rational::new(1, 7);
        assert!(small < big);
        assert!(big > small);
        assert!(-big < small);
    }

    #[test]
    fn ordering_is_exact_even_when_cross_multiplication_overflows() {
        // Both cross-products overflow i128; the continued-fraction path must
        // still order the values exactly, never collapsing unequal values to
        // Equal (the Ord/Eq contract).
        // n/(n-1) decreases towards 1 as n grows, so a (larger n) < b.
        let a = Rational::new(i128::MAX / 2, i128::MAX / 2 - 1);
        let b = Rational::new(i128::MAX / 2 - 2, i128::MAX / 2 - 3);
        assert_ne!(a, b);
        assert_eq!(a.cmp(&b), Ordering::Less);
        assert_eq!(b.cmp(&a), Ordering::Greater);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        // Mirrored around zero the order reverses.
        assert_eq!((-a).cmp(&-b), Ordering::Greater);
        // And against nearby integers the integer-part comparison decides.
        assert!(a > Rational::ONE);
        assert!(a < Rational::from_int(2));
        // A deep Euclidean descent: consecutive Fibonacci-like ratios close
        // to the golden ratio, denominators near the i128 limit.
        let c = Rational::new(i128::MAX / 3, i128::MAX / 5);
        let d = Rational::new(i128::MAX / 3 - 1, i128::MAX / 5);
        assert_eq!(c.cmp(&d), Ordering::Greater);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(4, 2).ceil(), 2);
        assert_eq!(Rational::new(4, 2).floor(), 2);
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(10, 16).to_string(), "5/8");
        assert_eq!(Rational::from_int(4).to_string(), "4");
        assert_eq!(Rational::new(-3, 6).to_string(), "-1/2");
    }

    #[test]
    fn from_f64_prefers_decimal_denominators() {
        assert_eq!(Rational::from_f64(6.4e6), Rational::from_int(6_400_000));
        assert_eq!(Rational::from_f64(2e-4), Rational::new(1, 5000));
        assert_eq!(Rational::from_f64(0.125), Rational::new(1, 8));
        assert_eq!(Rational::from_f64(-2.5), Rational::new(-5, 2));
        assert_eq!(Rational::from_f64(0.0), Rational::ZERO);
        assert_eq!(
            Rational::from_f64(1e-12),
            Rational::new(1, 1_000_000_000_000)
        );
    }

    #[test]
    fn from_f64_round_trips_exactly() {
        for x in [
            1.0,
            -1.0,
            0.1,
            0.2,
            0.3,
            1e-6,
            2.5e-6,
            1.5e-7,
            6.4e6,
            0.04,
            1.0 / 3.0,
            std::f64::consts::PI,
            123456.789,
            5e-3,
        ] {
            let r = Rational::from_f64(x);
            assert_eq!(r.to_f64(), x, "{x} did not round-trip through {r}");
        }
    }

    #[test]
    fn from_f64_rejects_non_finite() {
        assert_eq!(Rational::from_f64_lossless(f64::NAN), None);
        assert_eq!(Rational::from_f64_lossless(f64::INFINITY), None);
        assert_eq!(Rational::from_f64_lossless(f64::NEG_INFINITY), None);
    }

    #[test]
    fn pal_rate_conversion_factors() {
        // The PAL decoder's conversion chain: 6.4 MHz * 1/25 * 1/8 = 32 kHz
        // and 6.4 MHz * 10/16 = 4 MHz.
        let rf = Rational::from_int(6_400_000);
        let audio = rf * Rational::new(1, 25) * Rational::new(1, 8);
        assert_eq!(audio, Rational::from_int(32_000));
        let video = rf * Rational::new(10, 16);
        assert_eq!(video, Rational::from_int(4_000_000));
    }

    proptest! {
        #[test]
        fn prop_add_commutes(a in -1000i128..1000, b in 1i128..1000, c in -1000i128..1000, d in 1i128..1000) {
            let x = Rational::new(a, b);
            let y = Rational::new(c, d);
            prop_assert_eq!(x + y, y + x);
        }

        #[test]
        fn prop_add_associates(a in -100i128..100, b in 1i128..100, c in -100i128..100, d in 1i128..100, e in -100i128..100, f in 1i128..100) {
            let x = Rational::new(a, b);
            let y = Rational::new(c, d);
            let z = Rational::new(e, f);
            prop_assert_eq!((x + y) + z, x + (y + z));
        }

        #[test]
        fn prop_mul_inverse(a in 1i128..1000, b in 1i128..1000) {
            let x = Rational::new(a, b);
            prop_assert_eq!(x * x.recip(), Rational::ONE);
        }

        #[test]
        fn prop_construction_is_normalised(a in -10_000i128..10_000, b in 1i128..10_000) {
            let x = Rational::new(a, b);
            prop_assert!(x.denom() > 0);
            prop_assert_eq!(gcd(x.numer().unsigned_abs(), x.denom() as u128).max(1), 1);
            // Re-normalising is a no-op.
            prop_assert_eq!(Rational::new(x.numer(), x.denom()), x);
        }

        #[test]
        fn prop_ordering_is_total_and_consistent(a in -1000i128..1000, b in 1i128..1000, c in -1000i128..1000, d in 1i128..1000) {
            let x = Rational::new(a, b);
            let y = Rational::new(c, d);
            // Antisymmetry and totality.
            match x.cmp(&y) {
                std::cmp::Ordering::Less => prop_assert!(y > x),
                std::cmp::Ordering::Greater => prop_assert!(y < x),
                std::cmp::Ordering::Equal => prop_assert_eq!(x, y),
            }
            // Consistency with subtraction.
            prop_assert_eq!(x < y, (x - y).is_negative());
        }

        #[test]
        fn prop_floor_le_ceil(a in -10_000i128..10_000, b in 1i128..100) {
            let x = Rational::new(a, b);
            prop_assert!(x.floor() <= x.ceil());
            prop_assert!(Rational::from_int(x.floor()) <= x);
            prop_assert!(Rational::from_int(x.ceil()) >= x);
            // floor and ceil agree exactly on integers and differ by 1 otherwise.
            if x.denom() == 1 {
                prop_assert_eq!(x.floor(), x.ceil());
            } else {
                prop_assert_eq!(x.floor() + 1, x.ceil());
            }
        }

        #[test]
        fn prop_to_f64_monotone(a in -1000i128..1000, b in 1i128..1000, c in -1000i128..1000, d in 1i128..1000) {
            let x = Rational::new(a, b);
            let y = Rational::new(c, d);
            if x < y {
                prop_assert!(x.to_f64() <= y.to_f64());
            }
        }
    }
}
