//! Maximum cycle ratio and maximum cycle mean analysis.
//!
//! Both the HSDF throughput analysis and the CTA consistency algorithm reduce
//! to questions about cycles in a weighted directed graph:
//!
//! * the **maximum cycle mean** (MCM) of an HSDF graph — the largest
//!   `total delay / total tokens` over all cycles — is the inverse of the
//!   graph's maximum throughput;
//! * the **maximum cycle ratio** (MCR) generalises this to per-edge pairs of
//!   cost and "transit" weights and is what the CTA model's rate feasibility
//!   computation needs.
//!
//! The implementation uses Lawler's parametric binary search: a ratio `λ` is
//! feasible iff the graph re-weighted with `cost - λ·transit` has no positive
//! cycle, which Bellman-Ford detects in `O(V·E)`. The binary search adds a
//! logarithmic factor, keeping the whole analysis polynomial — the complexity
//! claim of the paper for CTA-style analyses.

use serde::{Deserialize, Serialize};

/// An edge of a cost/transit weighted graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatioEdge {
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Cost accumulated along the edge (e.g. delay in seconds).
    pub cost: f64,
    /// Transit weight (e.g. number of initial tokens); must be non-negative.
    pub transit: f64,
}

/// A weighted graph for cycle-ratio analysis.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RatioGraph {
    /// Number of nodes.
    pub nodes: usize,
    /// Edges.
    pub edges: Vec<RatioEdge>,
}

/// Result of a cycle-ratio analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CycleRatio {
    /// The graph has no cycles: every ratio is feasible.
    Acyclic,
    /// The maximum ratio over all cycles.
    Ratio(f64),
    /// Some cycle has positive cost but zero transit: no finite ratio is
    /// feasible (the constraints cannot be met at any rate).
    Infeasible,
}

impl RatioGraph {
    /// Create a graph with `nodes` nodes and no edges.
    pub fn new(nodes: usize) -> Self {
        RatioGraph {
            nodes,
            edges: Vec::new(),
        }
    }

    /// Add an edge.
    pub fn add_edge(&mut self, src: usize, dst: usize, cost: f64, transit: f64) {
        assert!(
            src < self.nodes && dst < self.nodes,
            "edge endpoints must exist"
        );
        assert!(transit >= 0.0, "transit weights must be non-negative");
        self.edges.push(RatioEdge {
            src,
            dst,
            cost,
            transit,
        });
    }

    /// Does the graph, re-weighted with `cost - lambda * transit`, contain a
    /// cycle of strictly positive weight? Uses Bellman-Ford from a virtual
    /// super-source (longest-path formulation).
    pub fn has_positive_cycle(&self, lambda: f64) -> bool {
        self.positive_cycle_witness(lambda).is_some()
    }

    /// As [`Self::has_positive_cycle`], but returns the nodes of one positive
    /// cycle (in arbitrary rotation) when one exists.
    pub fn positive_cycle_witness(&self, lambda: f64) -> Option<Vec<usize>> {
        const EPS: f64 = 1e-12;
        let n = self.nodes;
        if n == 0 {
            return None;
        }
        // Longest-path Bellman-Ford: dist initialised to 0 everywhere is
        // equivalent to a super-source with zero-weight edges to all nodes.
        let mut dist = vec![0.0f64; n];
        let mut pred: Vec<Option<usize>> = vec![None; n];
        let mut updated_node = None;
        for _ in 0..n {
            updated_node = None;
            for e in &self.edges {
                let w = e.cost - lambda * e.transit;
                if dist[e.src] + w > dist[e.dst] + EPS {
                    dist[e.dst] = dist[e.src] + w;
                    pred[e.dst] = Some(e.src);
                    updated_node = Some(e.dst);
                }
            }
            updated_node?;
        }
        // Still relaxing after n passes: a positive cycle is reachable.
        let mut v = updated_node?;
        // Walk back n steps to land on the cycle itself.
        for _ in 0..n {
            v = pred[v]?;
        }
        let start = v;
        let mut cycle = vec![start];
        let mut cur = pred[start]?;
        while cur != start {
            cycle.push(cur);
            cur = pred[cur]?;
        }
        cycle.reverse();
        Some(cycle)
    }

    /// Compute the maximum cycle ratio `max_cycles (Σ cost / Σ transit)` by
    /// parametric binary search to absolute precision `tol`.
    pub fn maximum_cycle_ratio(&self, tol: f64) -> CycleRatio {
        // Quick acyclicity test: lambda large enough to dominate any cost.
        let max_abs_cost: f64 = self.edges.iter().map(|e| e.cost.abs()).fold(0.0, f64::max);
        let total_cost: f64 = self.edges.iter().map(|e| e.cost.abs()).sum::<f64>() + 1.0;
        let min_pos_transit = self
            .edges
            .iter()
            .filter(|e| e.transit > 0.0)
            .map(|e| e.transit)
            .fold(f64::INFINITY, f64::min);

        if self.edges.is_empty() {
            return CycleRatio::Acyclic;
        }

        // A cycle with zero total transit and positive total cost is
        // infeasible at any ratio: test with a huge lambda. If a positive
        // cycle persists there, its transit must be (numerically) zero.
        let huge = if min_pos_transit.is_finite() {
            total_cost / min_pos_transit + max_abs_cost + 1.0
        } else {
            total_cost + 1.0
        };
        if self.has_positive_cycle(huge) {
            return CycleRatio::Infeasible;
        }

        // If even lambda slightly below the most negative possible ratio has
        // no positive cycle, there is no cycle at all (acyclic graph).
        let mut lo = -huge;
        if !self.has_positive_cycle(lo) {
            return CycleRatio::Acyclic;
        }
        let mut hi = huge;
        // Invariant: positive cycle at `lo`, none at `hi`.
        while hi - lo > tol {
            let mid = 0.5 * (lo + hi);
            if self.has_positive_cycle(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        CycleRatio::Ratio(0.5 * (lo + hi))
    }

    /// The maximum cycle mean: maximum cycle ratio with transit interpreted as
    /// "number of edges" set to 1 is *not* what we want here; instead the
    /// caller supplies delay as cost and tokens as transit, so this is simply
    /// an alias with a conventional name for HSDF-style graphs.
    pub fn maximum_cycle_mean(&self, tol: f64) -> CycleRatio {
        self.maximum_cycle_ratio(tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_self_loop_ratio() {
        // One node, self loop with cost 3, transit 2 -> ratio 1.5.
        let mut g = RatioGraph::new(1);
        g.add_edge(0, 0, 3.0, 2.0);
        match g.maximum_cycle_ratio(1e-9) {
            CycleRatio::Ratio(r) => assert!((r - 1.5).abs() < 1e-6),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn two_cycles_takes_maximum() {
        // Cycle A: 0->1->0 cost 2+2=4, transit 1+1=2 (ratio 2).
        // Cycle B: 2->2 cost 9, transit 2 (ratio 4.5).
        let mut g = RatioGraph::new(3);
        g.add_edge(0, 1, 2.0, 1.0);
        g.add_edge(1, 0, 2.0, 1.0);
        g.add_edge(2, 2, 9.0, 2.0);
        match g.maximum_cycle_ratio(1e-9) {
            CycleRatio::Ratio(r) => assert!((r - 4.5).abs() < 1e-6, "{r}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn acyclic_graph() {
        let mut g = RatioGraph::new(3);
        g.add_edge(0, 1, 5.0, 1.0);
        g.add_edge(1, 2, 5.0, 1.0);
        assert_eq!(g.maximum_cycle_ratio(1e-9), CycleRatio::Acyclic);
    }

    #[test]
    fn zero_transit_cycle_is_infeasible() {
        let mut g = RatioGraph::new(2);
        g.add_edge(0, 1, 1.0, 0.0);
        g.add_edge(1, 0, 1.0, 0.0);
        assert_eq!(g.maximum_cycle_ratio(1e-9), CycleRatio::Infeasible);
    }

    #[test]
    fn zero_cost_zero_transit_cycle_is_not_positive() {
        let mut g = RatioGraph::new(2);
        g.add_edge(0, 1, 0.0, 0.0);
        g.add_edge(1, 0, 0.0, 0.0);
        // No positive cycle at lambda 0: ratio is effectively unconstrained.
        assert!(!g.has_positive_cycle(0.0));
    }

    #[test]
    fn negative_cost_cycles_allowed() {
        // A cycle with negative total cost has a negative ratio.
        let mut g = RatioGraph::new(2);
        g.add_edge(0, 1, -3.0, 1.0);
        g.add_edge(1, 0, 1.0, 1.0);
        match g.maximum_cycle_ratio(1e-9) {
            CycleRatio::Ratio(r) => assert!((r - (-1.0)).abs() < 1e-6, "{r}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn positive_cycle_witness_nodes_form_cycle() {
        let mut g = RatioGraph::new(4);
        g.add_edge(0, 1, 1.0, 0.0);
        g.add_edge(1, 2, 1.0, 0.0);
        g.add_edge(2, 0, 1.0, 0.0);
        g.add_edge(3, 0, 1.0, 0.0);
        let cyc = g
            .positive_cycle_witness(0.0)
            .expect("positive cycle exists");
        assert!(cyc.len() == 3, "{cyc:?}");
        assert!(!cyc.contains(&3));
    }

    #[test]
    fn hsdf_style_mcm() {
        // Two actors with execution time 1 and 2 in a cycle with 1 token:
        // period = 3 per token -> MCM 3.
        let mut g = RatioGraph::new(2);
        g.add_edge(0, 1, 1.0, 0.0); // a finishes, then b
        g.add_edge(1, 0, 2.0, 1.0); // b finishes, token back to a
        match g.maximum_cycle_mean(1e-9) {
            CycleRatio::Ratio(r) => assert!((r - 3.0).abs() < 1e-6),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_graph_is_acyclic() {
        let g = RatioGraph::new(0);
        assert_eq!(g.maximum_cycle_ratio(1e-9), CycleRatio::Acyclic);
        let g2 = RatioGraph::new(5);
        assert_eq!(g2.maximum_cycle_ratio(1e-9), CycleRatio::Acyclic);
    }
}
