//! Typed graph indices and index-keyed vectors.
//!
//! The toolchain threads ports, actors, channels and rate groups through
//! several crates (dataflow → CTA → compiler → simulator). Indexing all of
//! them with bare `usize` made it possible to use a port id where a channel
//! id was meant and the compiler would not notice. This module provides
//! newtype indices (via [`define_index_type!`]) and [`IndexVec`], a vector
//! that can only be indexed by its declared index type, so cross-indexing
//! mistakes become type errors.
//!
//! The shared vocabulary types — [`PortId`], [`ActorId`], [`ChannelId`],
//! [`GroupId`] — live here; crates define additional private index spaces
//! (connection ids, loop ids, simulator node ids, …) with the same macro.

use std::fmt;
use std::marker::PhantomData;

/// A typed index: a cheap copyable wrapper around a dense array position.
pub trait Idx: Copy + Eq + Ord + std::hash::Hash + fmt::Debug + 'static {
    /// Construct from a raw position.
    fn new(index: usize) -> Self;
    /// The raw position.
    fn index(self) -> usize;
}

/// Define a newtype index implementing [`Idx`].
///
/// ```
/// oil_dataflow::define_index_type! {
///     /// A node of some graph.
///     pub struct NodeId = "n";
/// }
/// # use oil_dataflow::index::Idx;
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(format!("{n:?}"), "n3");
/// ```
#[macro_export]
macro_rules! define_index_type {
    ($(#[$meta:meta])* $vis:vis struct $Name:ident = $prefix:literal;) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            serde::Serialize, serde::Deserialize,
        )]
        $vis struct $Name(u32);

        impl $crate::index::Idx for $Name {
            #[inline]
            fn new(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize, "index space exhausted");
                $Name(index as u32)
            }
            #[inline]
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl ::std::fmt::Debug for $Name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl ::std::fmt::Display for $Name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_index_type! {
    /// A port of a CTA component (the shared vocabulary across dataflow,
    /// CTA, compiler and simulator layers).
    pub struct PortId = "p";
}

define_index_type! {
    /// An actor: a task of a task graph or an actor of an SDF/CSDF graph
    /// (the two are index-compatible by construction — every task becomes
    /// one actor).
    pub struct ActorId = "a";
}

define_index_type! {
    /// A channel (FIFO, source or sink) of the flattened application graph.
    pub struct ChannelId = "ch";
}

define_index_type! {
    /// A rate-propagation group: ports whose transfer rates are coupled
    /// through `γ` ratios share a group.
    pub struct GroupId = "g";
}

/// A vector indexable only by its declared index type.
#[derive(Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct IndexVec<I: Idx, T> {
    raw: Vec<T>,
    _marker: PhantomData<fn(I) -> I>,
}

impl<I: Idx, T> IndexVec<I, T> {
    /// An empty vector.
    pub fn new() -> Self {
        IndexVec {
            raw: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// An empty vector with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        IndexVec {
            raw: Vec::with_capacity(capacity),
            _marker: PhantomData,
        }
    }

    /// Wrap an existing `Vec`, adopting its positions as indices.
    pub fn from_raw(raw: Vec<T>) -> Self {
        IndexVec {
            raw,
            _marker: PhantomData,
        }
    }

    /// `n` copies of `value`.
    pub fn from_elem(value: T, n: usize) -> Self
    where
        T: Clone,
    {
        IndexVec::from_raw(vec![value; n])
    }

    /// Append, returning the new element's index.
    pub fn push(&mut self, value: T) -> I {
        let idx = I::new(self.raw.len());
        self.raw.push(value);
        idx
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// True if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// The index the next `push` will return.
    pub fn next_index(&self) -> I {
        I::new(self.raw.len())
    }

    /// The last element's index, if any.
    pub fn last_index(&self) -> Option<I> {
        self.raw.len().checked_sub(1).map(I::new)
    }

    /// Borrowing element access.
    pub fn get(&self, index: I) -> Option<&T> {
        self.raw.get(index.index())
    }

    /// Mutable element access.
    pub fn get_mut(&mut self, index: I) -> Option<&mut T> {
        self.raw.get_mut(index.index())
    }

    /// Iterate over elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.raw.iter()
    }

    /// Iterate over elements mutably.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.raw.iter_mut()
    }

    /// Iterate over the valid indices.
    pub fn indices(&self) -> impl DoubleEndedIterator<Item = I> + Clone {
        (0..self.raw.len()).map(I::new)
    }

    /// Iterate over `(index, &element)` pairs.
    pub fn iter_enumerated(&self) -> impl DoubleEndedIterator<Item = (I, &T)> {
        self.raw.iter().enumerate().map(|(i, t)| (I::new(i), t))
    }

    /// Iterate over `(index, &mut element)` pairs.
    pub fn iter_enumerated_mut(&mut self) -> impl DoubleEndedIterator<Item = (I, &mut T)> {
        self.raw.iter_mut().enumerate().map(|(i, t)| (I::new(i), t))
    }

    /// The index of the first element matching `predicate`.
    pub fn position(&self, predicate: impl FnMut(&T) -> bool) -> Option<I> {
        self.raw.iter().position(predicate).map(I::new)
    }

    /// The underlying slice.
    pub fn as_slice(&self) -> &[T] {
        &self.raw
    }

    /// Consume into the underlying `Vec`.
    pub fn into_raw(self) -> Vec<T> {
        self.raw
    }
}

impl<I: Idx, T> Default for IndexVec<I, T> {
    fn default() -> Self {
        IndexVec::new()
    }
}

impl<I: Idx, T: fmt::Debug> fmt::Debug for IndexVec<I, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter_enumerated()).finish()
    }
}

impl<I: Idx, T> std::ops::Index<I> for IndexVec<I, T> {
    type Output = T;
    #[inline]
    fn index(&self, index: I) -> &T {
        &self.raw[index.index()]
    }
}

impl<I: Idx, T> std::ops::IndexMut<I> for IndexVec<I, T> {
    #[inline]
    fn index_mut(&mut self, index: I) -> &mut T {
        &mut self.raw[index.index()]
    }
}

impl<I: Idx, T> From<Vec<T>> for IndexVec<I, T> {
    fn from(raw: Vec<T>) -> Self {
        IndexVec::from_raw(raw)
    }
}

impl<I: Idx, T> FromIterator<T> for IndexVec<I, T> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> Self {
        IndexVec::from_raw(iter.into_iter().collect())
    }
}

impl<I: Idx, T> IntoIterator for IndexVec<I, T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.raw.into_iter()
    }
}

impl<'a, I: Idx, T> IntoIterator for &'a IndexVec<I, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.raw.iter()
    }
}

impl<'a, I: Idx, T> IntoIterator for &'a mut IndexVec<I, T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.raw.iter_mut()
    }
}

impl<I: Idx, T> Extend<T> for IndexVec<I, T> {
    fn extend<It: IntoIterator<Item = T>>(&mut self, iter: It) {
        self.raw.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    define_index_type! {
        /// Test-local index.
        struct TestId = "t";
    }

    #[test]
    fn push_returns_dense_indices() {
        let mut v: IndexVec<TestId, &str> = IndexVec::new();
        let a = v.push("a");
        let b = v.push("b");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(v[a], "a");
        assert_eq!(v[b], "b");
        assert_eq!(v.len(), 2);
        assert_eq!(v.last_index(), Some(b));
        assert_eq!(v.next_index(), TestId::new(2));
    }

    #[test]
    fn enumerated_iteration_matches_indices() {
        let v: IndexVec<TestId, i32> = vec![10, 20, 30].into();
        let pairs: Vec<(TestId, i32)> = v.iter_enumerated().map(|(i, &x)| (i, x)).collect();
        assert_eq!(
            pairs,
            vec![
                (TestId::new(0), 10),
                (TestId::new(1), 20),
                (TestId::new(2), 30)
            ]
        );
        let idx: Vec<TestId> = v.indices().collect();
        assert_eq!(idx.len(), 3);
        assert_eq!(v.position(|&x| x == 20), Some(TestId::new(1)));
        assert_eq!(v.position(|&x| x == 99), None);
    }

    #[test]
    fn debug_formats_with_prefix() {
        assert_eq!(format!("{:?}", TestId::new(7)), "t7");
        assert_eq!(format!("{}", TestId::new(7)), "t7");
        assert_eq!(format!("{:?}", super::PortId::new(3)), "p3");
        assert_eq!(format!("{:?}", super::ChannelId::new(0)), "ch0");
    }

    #[test]
    fn from_elem_and_mutation() {
        let mut v: IndexVec<TestId, u64> = IndexVec::from_elem(0, 3);
        for (_, x) in v.iter_enumerated_mut() {
            *x += 1;
        }
        assert_eq!(v.as_slice(), &[1, 1, 1]);
        v[TestId::new(1)] = 5;
        assert_eq!(v.get(TestId::new(1)), Some(&5));
        assert_eq!(v.get(TestId::new(9)), None);
    }
}
