//! Synthetic test-signal generators.
//!
//! The paper's PAL decoder receives a broadcast RF signal from an analog
//! front end sampled at 6.4 MS/s. That hardware is not available, so the
//! case study uses a synthetic composite signal with the same structure: a
//! low-frequency "video" band plus an "audio" tone modulated onto a carrier,
//! which exercises the same splitter / mixer / filter / resampler code path
//! (see DESIGN.md, substitutions table).

use crate::Sample;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Upper bound on a precomputed one-period sine table.
const MAX_TONE_TABLE: u64 = 1 << 16;

/// The smallest sample count `P ≤ MAX_TONE_TABLE` after which the tone
/// repeats exactly (`freq · P / rate` is a whole number of cycles), if any.
fn exact_period(freq_hz: f64, sample_rate_hz: f64) -> Option<usize> {
    if !freq_hz.is_finite() || freq_hz < 0.0 {
        return None;
    }
    (1..=MAX_TONE_TABLE)
        .find(|&p| (freq_hz * p as f64 / sample_rate_hz).fract() == 0.0)
        .map(|p| p as usize)
}

/// One exact period of a unit sine oscillator at `freq_hz`/`sample_rate_hz`
/// (empty when the period is not a whole number of samples ≤ the table
/// bound). Shared by [`ToneGenerator`] and the mixer.
pub(crate) fn oscillator_table(freq_hz: f64, sample_rate_hz: f64) -> Vec<Sample> {
    exact_period(freq_hz, sample_rate_hz)
        .map(|p| {
            (0..p)
                .map(|n| (2.0 * PI * freq_hz * n as f64 / sample_rate_hz).sin())
                .collect()
        })
        .unwrap_or_default()
}

/// A sine-tone generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ToneGenerator {
    /// Tone frequency in Hz.
    pub freq_hz: f64,
    /// Sample rate in Hz.
    pub sample_rate_hz: f64,
    /// Amplitude.
    pub amplitude: f64,
    n: u64,
    /// One exact period of samples when the tone's period is a whole
    /// (small) number of samples — the PAL front end synthesises tones at
    /// MS/s rates, and a table lookup beats a libm `sin` per sample by an
    /// order of magnitude. Entries are computed with the same closed-form
    /// expression the fallback path uses, at the in-table indices, so the
    /// table is at least as accurate (it avoids the large-argument `sin`).
    table: Vec<Sample>,
    /// `n mod table.len()`, maintained incrementally (a u64 modulo per
    /// sample costs more than the table load it indexes).
    idx: usize,
}

impl ToneGenerator {
    /// Create a tone generator.
    pub fn new(freq_hz: f64, sample_rate_hz: f64, amplitude: f64) -> Self {
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        let table = oscillator_table(freq_hz, sample_rate_hz)
            .into_iter()
            .map(|v| amplitude * v)
            .collect();
        ToneGenerator {
            freq_hz,
            sample_rate_hz,
            amplitude,
            n: 0,
            table,
            idx: 0,
        }
    }

    /// Produce the next sample.
    pub fn next_sample(&mut self) -> Sample {
        if self.table.is_empty() {
            let y = self.amplitude
                * (2.0 * PI * self.freq_hz * self.n as f64 / self.sample_rate_hz).sin();
            self.n += 1;
            return y;
        }
        let y = self.table[self.idx];
        self.idx += 1;
        if self.idx == self.table.len() {
            self.idx = 0;
        }
        self.n += 1;
        y
    }

    /// Produce a block of samples.
    pub fn block(&mut self, len: usize) -> Vec<Sample> {
        (0..len).map(|_| self.next_sample()).collect()
    }
}

/// The synthetic stand-in for the PAL composite RF signal: a video band
/// (low-frequency content) plus an audio tone on a carrier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositeSignal {
    video: ToneGenerator,
    audio_baseband: ToneGenerator,
    carrier: ToneGenerator,
    /// Sample rate in Hz (6.4 MS/s for the PAL front end).
    pub sample_rate_hz: f64,
}

impl CompositeSignal {
    /// Create the PAL-like composite: video content at `video_hz`, audio tone
    /// at `audio_hz` modulated onto `carrier_hz`.
    pub fn new(sample_rate_hz: f64, video_hz: f64, audio_hz: f64, carrier_hz: f64) -> Self {
        CompositeSignal {
            video: ToneGenerator::new(video_hz, sample_rate_hz, 1.0),
            audio_baseband: ToneGenerator::new(audio_hz, sample_rate_hz, 0.5),
            carrier: ToneGenerator::new(carrier_hz, sample_rate_hz, 1.0),
            sample_rate_hz,
        }
    }

    /// The default configuration used by the case study: 6.4 MS/s, 50 kHz
    /// video content, 1 kHz audio tone on a 2 MHz carrier.
    pub fn pal_default() -> Self {
        CompositeSignal::new(6.4e6, 50_000.0, 1_000.0, 2.0e6)
    }

    /// Produce the next composite sample.
    pub fn next_sample(&mut self) -> Sample {
        let video = self.video.next_sample();
        let audio = self.audio_baseband.next_sample();
        let carrier = self.carrier.next_sample();
        video + (1.0 + audio) * carrier * 0.5
    }

    /// Produce a block of composite samples.
    pub fn block(&mut self, len: usize) -> Vec<Sample> {
        let mut out = Vec::with_capacity(len);
        self.fill_into(len, &mut out);
        out
    }

    /// Append `len` composite samples to `out` — bit-identical to a
    /// [`Self::next_sample`] loop, but the oscillator cursors stay in
    /// registers across the block instead of round-tripping through memory
    /// every sample.
    pub fn fill_into(&mut self, len: usize, out: &mut Vec<Sample>) {
        out.reserve(len);
        out.extend((0..len).map(|_| {
            let video = self.video.next_sample();
            let audio = self.audio_baseband.next_sample();
            let carrier = self.carrier.next_sample();
            video + (1.0 + audio) * carrier * 0.5
        }));
    }
}

/// Root-mean-square of a signal (helper shared by tests and examples).
pub fn rms(signal: &[Sample]) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    (signal.iter().map(|x| x * x).sum::<f64>() / signal.len() as f64).sqrt()
}

/// Estimate the dominant frequency of `signal` by counting zero crossings.
pub fn dominant_frequency(signal: &[Sample], sample_rate_hz: f64) -> f64 {
    if signal.len() < 2 {
        return 0.0;
    }
    let mean = signal.iter().sum::<f64>() / signal.len() as f64;
    let mut crossings = 0usize;
    for w in signal.windows(2) {
        if (w[0] - mean) <= 0.0 && (w[1] - mean) > 0.0 {
            crossings += 1;
        }
    }
    crossings as f64 * sample_rate_hz / signal.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tone_has_expected_rms_and_frequency() {
        let mut t = ToneGenerator::new(1_000.0, 48_000.0, 1.0);
        let block = t.block(48_000);
        assert!((rms(&block) - (0.5f64).sqrt()).abs() < 1e-3);
        let f = dominant_frequency(&block, 48_000.0);
        assert!((f - 1_000.0).abs() < 20.0, "estimated {f}");
    }

    #[test]
    fn composite_contains_video_and_carrier() {
        let mut c = CompositeSignal::pal_default();
        let block = c.block(64_000);
        assert!(rms(&block) > 0.5);
        assert_eq!(c.sample_rate_hz, 6.4e6);
    }

    #[test]
    fn blocks_continue_the_phase() {
        let mut a = ToneGenerator::new(100.0, 1000.0, 1.0);
        let whole = a.block(20);
        let mut b = ToneGenerator::new(100.0, 1000.0, 1.0);
        let mut parts = b.block(7);
        parts.extend(b.block(13));
        assert_eq!(whole, parts);
    }

    #[test]
    fn rms_and_dominant_frequency_edge_cases() {
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(dominant_frequency(&[1.0], 100.0), 0.0);
    }
}
