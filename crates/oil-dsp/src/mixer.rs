//! Mixers (frequency shifters).
//!
//! The PAL decoder's `Mix_A` module shifts the audio carrier down to zero
//! before the low-pass filter and downsampler extract the audio band. A mixer
//! multiplies the input by a local oscillator; like the filters it keeps
//! state (the oscillator phase) but has no side effects.

use crate::Sample;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// A real mixer: multiplies the input by a sine local oscillator.
///
/// The oscillator phase is the closed form `2π·lo·n/rate` (an accumulated
/// phase drifts by one rounding per sample and costs the same `sin`); when
/// the oscillator period is a whole number of samples the sine values are
/// precomputed for one period — at the PAL front end's 6.4 MS/s that
/// replaces a libm `sin` per sample with a table load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mixer {
    /// Oscillator frequency in Hz.
    pub lo_freq_hz: f64,
    /// Input sample rate in Hz.
    pub sample_rate_hz: f64,
    n: u64,
    table: Vec<Sample>,
    /// `n mod table.len()`, maintained incrementally (a u64 modulo per
    /// sample costs more than the table load it indexes).
    idx: usize,
}

impl Mixer {
    /// Create a mixer with the given local-oscillator frequency.
    pub fn new(lo_freq_hz: f64, sample_rate_hz: f64) -> Self {
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        let table = crate::generator::oscillator_table(lo_freq_hz, sample_rate_hz);
        Mixer {
            lo_freq_hz,
            sample_rate_hz,
            n: 0,
            table,
            idx: 0,
        }
    }

    /// Mix one sample.
    pub fn push(&mut self, x: Sample) -> Sample {
        let lo = if self.table.is_empty() {
            let v = (2.0 * PI * self.lo_freq_hz * self.n as f64 / self.sample_rate_hz).sin();
            self.n += 1;
            return x * v * 2.0;
        } else {
            let v = self.table[self.idx];
            self.idx += 1;
            if self.idx == self.table.len() {
                self.idx = 0;
            }
            v
        };
        self.n += 1;
        x * lo * 2.0
    }

    /// Mix a block of samples.
    pub fn process(&mut self, input: &[Sample]) -> Vec<Sample> {
        input.iter().map(|&x| self.push(x)).collect()
    }

    /// Reset the oscillator phase.
    pub fn reset(&mut self) {
        self.n = 0;
        self.idx = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fir::FirFilter;

    /// Mixing a tone at the LO frequency produces a DC component (plus a
    /// double-frequency term a low-pass filter removes).
    #[test]
    fn mixing_recovers_baseband() {
        let sr = 100_000.0;
        let carrier = 20_000.0;
        let mut mixer = Mixer::new(carrier, sr);
        let mut lpf = FirFilter::low_pass(2_000.0, sr, 101);
        let signal: Vec<f64> = (0..5000)
            .map(|n| (2.0 * PI * carrier * n as f64 / sr).sin())
            .collect();
        let mixed = mixer.process(&signal);
        let filtered = lpf.process(&mixed);
        let tail = &filtered[1000..];
        let mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn zero_lo_gives_zero_output() {
        // A zero-frequency sine oscillator stays at zero phase.
        let mut m = Mixer::new(0.0, 48_000.0);
        assert!(m.push(0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_restores_phase() {
        let mut m = Mixer::new(1_000.0, 48_000.0);
        let a = m.push(1.0);
        m.push(1.0);
        m.reset();
        let b = m.push(1.0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sample_rate_panics() {
        let _ = Mixer::new(1000.0, 0.0);
    }
}
