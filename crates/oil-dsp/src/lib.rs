//! Signal-processing kernels for OIL programs.
//!
//! OIL is a coordination language: the actual computation lives in
//! side-effect-free functions (C/C++ in the paper, Rust here). This crate
//! provides the kernels the examples and the PAL decoder case study
//! coordinate — FIR low-pass filters, mixers, polyphase rational resamplers
//! and synthetic signal generators — together with a pre-populated
//! [`FunctionRegistry`](oil_lang::FunctionRegistry) describing their temporal
//! properties to the compiler.

pub mod fir;
pub mod generator;
pub mod mixer;
pub mod registry;
pub mod resample;
pub mod simd;

pub use fir::FirFilter;
pub use generator::{CompositeSignal, ToneGenerator};
pub use mixer::Mixer;
pub use registry::dsp_registry;
pub use resample::{Decimator, RationalResampler};

/// The sample type flowing through all kernels.
pub type Sample = f64;
