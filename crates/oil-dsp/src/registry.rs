//! The function registry describing the DSP kernels to the OIL compiler.
//!
//! Response times correspond to the worst-case execution times of the kernels
//! on the embedded multi-core platform the paper targets; on the simulator
//! they are configuration parameters. The registry also declares the temporal
//! interfaces of the two black-box modules of the PAL decoder (`Video` and
//! `Audio`), which the paper only knows by their rates and delays.

use oil_lang::registry::{BlackBoxInterface, FunctionRegistry, FunctionSignature};

/// Build the registry used by the examples and the PAL case study.
///
/// `scale` multiplies every response time; `1.0` gives the defaults (which
/// comfortably sustain the PAL rates), larger values model slower processors
/// and eventually make the temporal constraints unsatisfiable — useful for
/// the benches that probe where analysis starts rejecting programs.
pub fn dsp_registry(scale: f64) -> FunctionRegistry {
    let mut reg = FunctionRegistry::new();
    let t = |seconds: f64| seconds * scale;

    // Generic kernels used by the smaller examples.
    for (name, rt) in [
        ("f", 1e-7),
        ("g", 1e-7),
        ("h", 1e-7),
        ("k", 1e-7),
        ("init", 1e-8),
        ("src", 1e-8),
        ("snk", 1e-8),
    ] {
        reg.register(FunctionSignature::pure(name, t(rt)));
    }

    // PAL decoder kernels (Fig. 11 of the paper). The RF front end runs at
    // 6.4 MS/s, so per-sample work must stay well below 156 ns.
    reg.register(FunctionSignature::stateful("receiveRF", t(2e-8)));
    reg.register(FunctionSignature::stateful("display", t(5e-8)));
    reg.register(FunctionSignature::stateful("sound", t(5e-8)));
    reg.register(FunctionSignature::stateful("mix", t(4e-8)));
    reg.register(FunctionSignature::stateful("Mix", t(4e-8)));
    reg.register(FunctionSignature::stateful("LPF", t(2e-6)));
    reg.register(FunctionSignature::stateful("LPF_V", t(8e-8)));
    reg.register(FunctionSignature::stateful("lpf_v", t(8e-8)));
    reg.register(FunctionSignature::stateful("resamp", t(1.5e-6)));

    // Black-box modules known only by their temporal interface: the Video
    // module processes one sample per firing at 4 MS/s; the Audio module
    // consumes 8 samples and produces 1 (the final downsampling to 32 kS/s).
    reg.register_black_box(BlackBoxInterface::new("Video", vec![1], vec![1], t(1.2e-7)));
    reg.register_black_box(BlackBoxInterface::new("Audio", vec![8], vec![1], t(2e-5)));

    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_pal_functions() {
        let reg = dsp_registry(1.0);
        for f in [
            "receiveRF",
            "display",
            "sound",
            "LPF",
            "resamp",
            "Mix_A_is_not_a_function",
        ] {
            if f == "Mix_A_is_not_a_function" {
                assert!(!reg.is_known(f));
            } else {
                assert!(reg.is_known(f), "missing {f}");
            }
        }
        assert!(reg.black_box("Video").is_some());
        assert_eq!(reg.black_box("Audio").unwrap().consumption, vec![8]);
    }

    #[test]
    fn response_times_fit_the_rf_rate() {
        let reg = dsp_registry(1.0);
        let rf_period = 1.0 / 6.4e6;
        for f in ["receiveRF", "LPF_V", "mix"] {
            assert!(
                reg.response_time(f) < rf_period,
                "{f} too slow for 6.4 MS/s"
            );
        }
    }

    #[test]
    fn scale_multiplies_response_times() {
        let fast = dsp_registry(1.0);
        let slow = dsp_registry(10.0);
        assert!((slow.response_time("LPF") / fast.response_time("LPF") - 10.0).abs() < 1e-9);
    }

    #[test]
    fn kernels_are_side_effect_free() {
        let reg = dsp_registry(1.0);
        for f in reg.functions() {
            assert!(f.side_effect_free, "{} must be side-effect free", f.name);
        }
    }
}
