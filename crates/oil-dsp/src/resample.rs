//! Sample-rate converters.
//!
//! The PAL decoder performs three rate conversions: the audio path
//! downsamples by 25 (`SRC_A`) and by 8 (inside the `Audio` black box), and
//! the video path resamples by the rational factor 10/16 (`SRC_V`). Both a
//! plain decimator and a polyphase rational resampler are provided.

use crate::fir::FirFilter;
use crate::simd::dot_rr4;
use crate::Sample;
use serde::{Deserialize, Serialize};

/// An integer-factor decimator with an anti-aliasing low-pass filter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decimator {
    /// Decimation factor.
    pub factor: usize,
    filter: FirFilter,
    phase: usize,
}

impl Decimator {
    /// Create a decimator by `factor` for signals sampled at
    /// `sample_rate_hz`.
    pub fn new(factor: usize, sample_rate_hz: f64, taps: usize) -> Self {
        assert!(factor >= 1, "decimation factor must be at least 1");
        let cutoff = sample_rate_hz / (2.0 * factor as f64) * 0.9;
        Decimator {
            factor,
            filter: FirFilter::low_pass(cutoff, sample_rate_hz, taps),
            phase: 0,
        }
    }

    /// Feed `factor` input samples, produce one output sample.
    pub fn process_block(&mut self, input: &[Sample]) -> Sample {
        assert_eq!(
            input.len(),
            self.factor,
            "block length must equal the factor"
        );
        // Only the last filter output survives; the earlier ones advance
        // the delay line without paying their dot products.
        let (head, last) = input.split_at(self.factor - 1);
        for &x in head {
            self.filter.push_silent(x);
        }
        self.filter.push(last[0])
    }

    /// Stream interface: push one sample, get `Some(output)` every `factor`
    /// samples. Non-emitting samples advance the delay line only — their
    /// filter outputs were always discarded, so skipping the dot product
    /// changes no emitted bit.
    pub fn push(&mut self, x: Sample) -> Option<Sample> {
        self.phase += 1;
        if self.phase == self.factor {
            self.phase = 0;
            Some(self.filter.push(x))
        } else {
            self.filter.push_silent(x);
            None
        }
    }

    /// Process an arbitrary-length input, appending the decimated output to
    /// `out`. Bit-identical to a [`Self::push`] loop; once the phase is
    /// aligned, whole decimation windows advance the delay line with block
    /// copies instead of per-sample stores.
    pub fn process_into(&mut self, input: &[Sample], out: &mut Vec<Sample>) {
        let mut i = 0;
        while i < input.len() && self.phase != 0 {
            if let Some(y) = self.push(input[i]) {
                out.push(y);
            }
            i += 1;
        }
        let rest = &input[i..];
        let chunks = rest.chunks_exact(self.factor);
        let tail = chunks.remainder();
        for chunk in chunks {
            self.filter.push_silent_block(&chunk[..self.factor - 1]);
            out.push(self.filter.push(chunk[self.factor - 1]));
        }
        for &x in tail {
            if let Some(y) = self.push(x) {
                out.push(y);
            }
        }
    }

    /// Process an arbitrary-length input, returning the decimated output.
    pub fn process(&mut self, input: &[Sample]) -> Vec<Sample> {
        let mut out = Vec::with_capacity(input.len() / self.factor + 1);
        self.process_into(input, &mut out);
        out
    }

    /// True when the next pushed sample starts a fresh decimation window
    /// (block-processing a multiple of `factor` samples from here yields
    /// exactly `len / factor` outputs).
    pub fn aligned(&self) -> bool {
        self.phase == 0
    }
}

/// A rational resampler by `up/down`: zero-stuffing, an anti-imaging/
/// anti-aliasing low-pass and decimation, computed in **polyphase** form —
/// the delay line holds input-rate samples only, and each emitted output
/// evaluates just the tap subset its upsampled position actually overlaps
/// (`⌈taps/up⌉` multiplies instead of `taps`; the structural zeros of the
/// conceptual zero-stuffed stream contribute nothing and are never
/// touched).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RationalResampler {
    /// Upsampling factor (e.g. 10 for the PAL video path).
    pub up: usize,
    /// Downsampling factor (e.g. 16 for the PAL video path).
    pub down: usize,
    /// Prototype low-pass taps on the upsampled grid.
    taps: Vec<f64>,
    /// Per-phase tap subsets, each **reversed** so it pairs with an
    /// ascending-time window slice: `ptaps[k][i] = taps[k + (c-1-i)·up]`
    /// where `c` is phase `k`'s tap count.
    ptaps: Vec<Vec<f64>>,
    /// Input-rate history (samples pre-scaled by `up`), stored **doubled**
    /// like the FIR delay line so the most recent `hist_len` samples are
    /// always one contiguous ascending slice.
    hist: Vec<Sample>,
    pos: usize,
    /// Phase accumulator over the upsampled grid.
    phase: usize,
}

impl RationalResampler {
    /// Create a resampler by `up/down` for input sampled at
    /// `sample_rate_hz`.
    pub fn new(up: usize, down: usize, sample_rate_hz: f64, taps: usize) -> Self {
        assert!(
            up >= 1 && down >= 1,
            "resampling factors must be at least 1"
        );
        let upsampled = sample_rate_hz * up as f64;
        let cutoff =
            (sample_rate_hz / 2.0).min(sample_rate_hz * up as f64 / (2.0 * down as f64)) * 0.9;
        let taps = FirFilter::low_pass(cutoff, upsampled, taps).taps().to_vec();
        let hist_len = taps.len().div_ceil(up);
        let ptaps = (0..up)
            .map(|k| {
                let mut p: Vec<f64> = taps.iter().skip(k).step_by(up).copied().collect();
                p.reverse();
                p
            })
            .collect();
        RationalResampler {
            up,
            down,
            taps,
            ptaps,
            hist: vec![0.0; 2 * hist_len],
            pos: 0,
            phase: 0,
        }
    }

    /// Push one input sample, handing each produced output to `emit`.
    ///
    /// The output at upsampled position `t = i·up + k` is
    /// `Σ_j taps[j] · U[t−j]` over the zero-stuffed stream `U`; only the
    /// taps with `j ≡ k (mod up)` meet a non-structural-zero sample, and
    /// those samples are the plain input history `x[i], x[i−1], …` (scaled
    /// by `up`). With the history doubled, phase `k`'s inner product is a
    /// contiguous dot of its reversed tap subset against the tail of the
    /// ascending window, which runs through the SIMD kernel.
    pub fn push_each(&mut self, x: Sample, mut emit: impl FnMut(Sample)) {
        let hist_len = self.hist.len() / 2;
        let scaled = x * self.up as f64;
        self.hist[self.pos] = scaled;
        self.hist[self.pos + hist_len] = scaled;
        self.pos += 1;
        if self.pos == hist_len {
            self.pos = 0;
        }
        // Ascending window of the last `hist_len` inputs. The phase
        // accumulator walks the upsampled grid `phase, phase+1, …,
        // phase+up-1 (mod down)` and an output fires wherever it hits zero
        // — at `k ≡ -phase (mod down)` — so iterate the emitting positions
        // directly instead of stepping through every grid point.
        let window = &self.hist[self.pos..self.pos + hist_len];
        let mut k = if self.phase == 0 {
            0
        } else {
            self.down - self.phase
        };
        while k < self.up {
            let pt = &self.ptaps[k];
            emit(dot_rr4(&window[hist_len - pt.len()..], pt));
            k += self.down;
        }
        // `phase + up mod down` by repeated subtraction: at most ⌈up/down⌉
        // steps, cheaper than a hardware divide at audio/video rates.
        self.phase += self.up;
        while self.phase >= self.down {
            self.phase -= self.down;
        }
    }

    /// Push one input sample; returns zero or more output samples.
    pub fn push(&mut self, x: Sample) -> Vec<Sample> {
        let mut out = Vec::new();
        self.push_each(x, |y| out.push(y));
        out
    }

    /// Process a block of input samples.
    pub fn process(&mut self, input: &[Sample]) -> Vec<Sample> {
        let mut out = Vec::with_capacity(input.len() * self.up / self.down + 1);
        for &x in input {
            self.push_each(x, |y| out.push(y));
        }
        out
    }

    /// Exact output/input rate ratio.
    pub fn ratio(&self) -> f64 {
        self.up as f64 / self.down as f64
    }

    /// True when the phase accumulator is at the start of its cycle
    /// (block-processing `k` inputs with `k·up` divisible by `down` from
    /// here yields exactly `k·up/down` outputs and returns to alignment).
    pub fn aligned(&self) -> bool {
        self.phase == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn decimator_output_length() {
        let mut d = Decimator::new(25, 6.4e6, 63);
        let input = vec![1.0; 6400];
        let out = d.process(&input);
        assert_eq!(out.len(), 6400 / 25);
    }

    #[test]
    fn decimator_preserves_dc() {
        let mut d = Decimator::new(8, 256_000.0, 63);
        let out = d.process(&vec![1.0; 4096]);
        assert!((out.last().unwrap() - 1.0).abs() < 1e-2);
    }

    #[test]
    fn decimator_block_interface() {
        let mut d = Decimator::new(4, 32_000.0, 31);
        let y = d.process_block(&[1.0, 1.0, 1.0, 1.0]);
        assert!(y.is_finite());
    }

    #[test]
    #[should_panic(expected = "block length")]
    fn wrong_block_length_panics() {
        let mut d = Decimator::new(4, 32_000.0, 31);
        let _ = d.process_block(&[1.0, 1.0]);
    }

    #[test]
    fn resampler_ratio_10_over_16() {
        let mut r = RationalResampler::new(10, 16, 6.4e6, 161);
        assert!((r.ratio() - 0.625).abs() < 1e-12);
        let out = r.process(&vec![1.0; 1600]);
        // 1600 * 10 / 16 = 1000 output samples.
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn resampler_preserves_dc_level() {
        let mut r = RationalResampler::new(10, 16, 6.4e6, 161);
        let out = r.process(&vec![1.0; 4000]);
        let tail = &out[out.len() - 200..];
        let mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn resampler_preserves_low_frequency_tone() {
        let sr = 64_000.0;
        let mut r = RationalResampler::new(1, 2, sr, 101);
        let tone: Vec<f64> = (0..4000)
            .map(|n| (2.0 * PI * 1000.0 * n as f64 / sr).sin())
            .collect();
        let out = r.process(&tone);
        assert_eq!(out.len(), 2000);
        let tail = &out[500..];
        let rms: f64 = (tail.iter().map(|x| x * x).sum::<f64>() / tail.len() as f64).sqrt();
        assert!((rms - (0.5f64).sqrt()).abs() < 0.1, "rms {rms}");
    }

    #[test]
    fn decimator_process_into_bit_identical_to_push_loop() {
        let input: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.13).sin()).collect();
        for factor in [1, 2, 4, 25] {
            let mut by_push = Decimator::new(factor, 6.4e6, 63);
            let mut by_block = by_push.clone();
            let push_out: Vec<f64> = input.iter().filter_map(|&x| by_push.push(x)).collect();
            let mut block_out = Vec::new();
            for c in input.chunks(37) {
                by_block.process_into(c, &mut block_out);
            }
            assert_eq!(push_out.len(), block_out.len(), "factor {factor}");
            for (i, (a, b)) in push_out.iter().zip(&block_out).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "factor {factor} sample {i}");
            }
            assert_eq!(
                by_push.push(0.5).map(|y| y.to_bits()),
                by_block.push(0.5).map(|y| y.to_bits())
            );
        }
    }

    #[test]
    fn pal_audio_chain_rate() {
        // 6.4 MS/s -> /25 -> 256 kS/s -> /8 -> 32 kS/s.
        let mut src_a = Decimator::new(25, 6.4e6, 63);
        let mut audio = Decimator::new(8, 256_000.0, 63);
        let input = vec![0.5; 64_000];
        let mid = src_a.process(&input);
        assert_eq!(mid.len(), 2560);
        let out = audio.process(&mid);
        assert_eq!(out.len(), 320);
    }
}
