//! Sample-rate converters.
//!
//! The PAL decoder performs three rate conversions: the audio path
//! downsamples by 25 (`SRC_A`) and by 8 (inside the `Audio` black box), and
//! the video path resamples by the rational factor 10/16 (`SRC_V`). Both a
//! plain decimator and a polyphase rational resampler are provided.

use crate::fir::FirFilter;
use crate::Sample;
use serde::{Deserialize, Serialize};

/// An integer-factor decimator with an anti-aliasing low-pass filter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decimator {
    /// Decimation factor.
    pub factor: usize,
    filter: FirFilter,
    phase: usize,
}

impl Decimator {
    /// Create a decimator by `factor` for signals sampled at
    /// `sample_rate_hz`.
    pub fn new(factor: usize, sample_rate_hz: f64, taps: usize) -> Self {
        assert!(factor >= 1, "decimation factor must be at least 1");
        let cutoff = sample_rate_hz / (2.0 * factor as f64) * 0.9;
        Decimator {
            factor,
            filter: FirFilter::low_pass(cutoff, sample_rate_hz, taps),
            phase: 0,
        }
    }

    /// Feed `factor` input samples, produce one output sample.
    pub fn process_block(&mut self, input: &[Sample]) -> Sample {
        assert_eq!(
            input.len(),
            self.factor,
            "block length must equal the factor"
        );
        let mut out = 0.0;
        for &x in input {
            out = self.filter.push(x);
        }
        out
    }

    /// Stream interface: push one sample, get `Some(output)` every `factor`
    /// samples.
    pub fn push(&mut self, x: Sample) -> Option<Sample> {
        let y = self.filter.push(x);
        self.phase += 1;
        if self.phase == self.factor {
            self.phase = 0;
            Some(y)
        } else {
            None
        }
    }

    /// Process an arbitrary-length input, returning the decimated output.
    pub fn process(&mut self, input: &[Sample]) -> Vec<Sample> {
        input.iter().filter_map(|&x| self.push(x)).collect()
    }
}

/// A rational resampler by `up/down` using zero-stuffing, a polyphase
/// anti-imaging/anti-aliasing filter and decimation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RationalResampler {
    /// Upsampling factor (e.g. 10 for the PAL video path).
    pub up: usize,
    /// Downsampling factor (e.g. 16 for the PAL video path).
    pub down: usize,
    filter: FirFilter,
    /// Phase accumulator over the upsampled grid.
    phase: usize,
}

impl RationalResampler {
    /// Create a resampler by `up/down` for input sampled at
    /// `sample_rate_hz`.
    pub fn new(up: usize, down: usize, sample_rate_hz: f64, taps: usize) -> Self {
        assert!(
            up >= 1 && down >= 1,
            "resampling factors must be at least 1"
        );
        let upsampled = sample_rate_hz * up as f64;
        let cutoff =
            (sample_rate_hz / 2.0).min(sample_rate_hz * up as f64 / (2.0 * down as f64)) * 0.9;
        RationalResampler {
            up,
            down,
            filter: FirFilter::low_pass(cutoff, upsampled, taps),
            phase: 0,
        }
    }

    /// Push one input sample; returns zero or more output samples.
    pub fn push(&mut self, x: Sample) -> Vec<Sample> {
        let mut out = Vec::new();
        for k in 0..self.up {
            // Zero-stuffing: the input sample followed by up-1 zeros, scaled
            // by `up` to preserve amplitude.
            let v = if k == 0 { x * self.up as f64 } else { 0.0 };
            let y = self.filter.push(v);
            if self.phase == 0 {
                out.push(y);
            }
            self.phase = (self.phase + 1) % self.down;
        }
        out
    }

    /// Process a block of input samples.
    pub fn process(&mut self, input: &[Sample]) -> Vec<Sample> {
        input.iter().flat_map(|&x| self.push(x)).collect()
    }

    /// Exact output/input rate ratio.
    pub fn ratio(&self) -> f64 {
        self.up as f64 / self.down as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn decimator_output_length() {
        let mut d = Decimator::new(25, 6.4e6, 63);
        let input = vec![1.0; 6400];
        let out = d.process(&input);
        assert_eq!(out.len(), 6400 / 25);
    }

    #[test]
    fn decimator_preserves_dc() {
        let mut d = Decimator::new(8, 256_000.0, 63);
        let out = d.process(&vec![1.0; 4096]);
        assert!((out.last().unwrap() - 1.0).abs() < 1e-2);
    }

    #[test]
    fn decimator_block_interface() {
        let mut d = Decimator::new(4, 32_000.0, 31);
        let y = d.process_block(&[1.0, 1.0, 1.0, 1.0]);
        assert!(y.is_finite());
    }

    #[test]
    #[should_panic(expected = "block length")]
    fn wrong_block_length_panics() {
        let mut d = Decimator::new(4, 32_000.0, 31);
        let _ = d.process_block(&[1.0, 1.0]);
    }

    #[test]
    fn resampler_ratio_10_over_16() {
        let mut r = RationalResampler::new(10, 16, 6.4e6, 161);
        assert!((r.ratio() - 0.625).abs() < 1e-12);
        let out = r.process(&vec![1.0; 1600]);
        // 1600 * 10 / 16 = 1000 output samples.
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn resampler_preserves_dc_level() {
        let mut r = RationalResampler::new(10, 16, 6.4e6, 161);
        let out = r.process(&vec![1.0; 4000]);
        let tail = &out[out.len() - 200..];
        let mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn resampler_preserves_low_frequency_tone() {
        let sr = 64_000.0;
        let mut r = RationalResampler::new(1, 2, sr, 101);
        let tone: Vec<f64> = (0..4000)
            .map(|n| (2.0 * PI * 1000.0 * n as f64 / sr).sin())
            .collect();
        let out = r.process(&tone);
        assert_eq!(out.len(), 2000);
        let tail = &out[500..];
        let rms: f64 = (tail.iter().map(|x| x * x).sum::<f64>() / tail.len() as f64).sqrt();
        assert!((rms - (0.5f64).sqrt()).abs() < 0.1, "rms {rms}");
    }

    #[test]
    fn pal_audio_chain_rate() {
        // 6.4 MS/s -> /25 -> 256 kS/s -> /8 -> 32 kS/s.
        let mut src_a = Decimator::new(25, 6.4e6, 63);
        let mut audio = Decimator::new(8, 256_000.0, 63);
        let input = vec![0.5; 64_000];
        let mid = src_a.process(&input);
        assert_eq!(mid.len(), 2560);
        let out = audio.process(&mid);
        assert_eq!(out.len(), 320);
    }
}
