//! Sample-rate converters.
//!
//! The PAL decoder performs three rate conversions: the audio path
//! downsamples by 25 (`SRC_A`) and by 8 (inside the `Audio` black box), and
//! the video path resamples by the rational factor 10/16 (`SRC_V`). Both a
//! plain decimator and a polyphase rational resampler are provided.

use crate::fir::FirFilter;
use crate::Sample;
use serde::{Deserialize, Serialize};

/// An integer-factor decimator with an anti-aliasing low-pass filter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decimator {
    /// Decimation factor.
    pub factor: usize,
    filter: FirFilter,
    phase: usize,
}

impl Decimator {
    /// Create a decimator by `factor` for signals sampled at
    /// `sample_rate_hz`.
    pub fn new(factor: usize, sample_rate_hz: f64, taps: usize) -> Self {
        assert!(factor >= 1, "decimation factor must be at least 1");
        let cutoff = sample_rate_hz / (2.0 * factor as f64) * 0.9;
        Decimator {
            factor,
            filter: FirFilter::low_pass(cutoff, sample_rate_hz, taps),
            phase: 0,
        }
    }

    /// Feed `factor` input samples, produce one output sample.
    pub fn process_block(&mut self, input: &[Sample]) -> Sample {
        assert_eq!(
            input.len(),
            self.factor,
            "block length must equal the factor"
        );
        // Only the last filter output survives; the earlier ones advance
        // the delay line without paying their dot products.
        let (head, last) = input.split_at(self.factor - 1);
        for &x in head {
            self.filter.push_silent(x);
        }
        self.filter.push(last[0])
    }

    /// Stream interface: push one sample, get `Some(output)` every `factor`
    /// samples. Non-emitting samples advance the delay line only — their
    /// filter outputs were always discarded, so skipping the dot product
    /// changes no emitted bit.
    pub fn push(&mut self, x: Sample) -> Option<Sample> {
        self.phase += 1;
        if self.phase == self.factor {
            self.phase = 0;
            Some(self.filter.push(x))
        } else {
            self.filter.push_silent(x);
            None
        }
    }

    /// Process an arbitrary-length input, returning the decimated output.
    pub fn process(&mut self, input: &[Sample]) -> Vec<Sample> {
        input.iter().filter_map(|&x| self.push(x)).collect()
    }

    /// True when the next pushed sample starts a fresh decimation window
    /// (block-processing a multiple of `factor` samples from here yields
    /// exactly `len / factor` outputs).
    pub fn aligned(&self) -> bool {
        self.phase == 0
    }
}

/// A rational resampler by `up/down`: zero-stuffing, an anti-imaging/
/// anti-aliasing low-pass and decimation, computed in **polyphase** form —
/// the delay line holds input-rate samples only, and each emitted output
/// evaluates just the tap subset its upsampled position actually overlaps
/// (`⌈taps/up⌉` multiplies instead of `taps`; the structural zeros of the
/// conceptual zero-stuffed stream contribute nothing and are never
/// touched).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RationalResampler {
    /// Upsampling factor (e.g. 10 for the PAL video path).
    pub up: usize,
    /// Downsampling factor (e.g. 16 for the PAL video path).
    pub down: usize,
    /// Prototype low-pass taps on the upsampled grid.
    taps: Vec<f64>,
    /// Input-rate history ring (samples pre-scaled by `up`), newest at
    /// `pos - 1`.
    hist: Vec<Sample>,
    pos: usize,
    /// Phase accumulator over the upsampled grid.
    phase: usize,
}

impl RationalResampler {
    /// Create a resampler by `up/down` for input sampled at
    /// `sample_rate_hz`.
    pub fn new(up: usize, down: usize, sample_rate_hz: f64, taps: usize) -> Self {
        assert!(
            up >= 1 && down >= 1,
            "resampling factors must be at least 1"
        );
        let upsampled = sample_rate_hz * up as f64;
        let cutoff =
            (sample_rate_hz / 2.0).min(sample_rate_hz * up as f64 / (2.0 * down as f64)) * 0.9;
        let taps = FirFilter::low_pass(cutoff, upsampled, taps).taps().to_vec();
        let hist_len = taps.len().div_ceil(up);
        RationalResampler {
            up,
            down,
            taps,
            hist: vec![0.0; hist_len],
            pos: 0,
            phase: 0,
        }
    }

    /// Push one input sample, handing each produced output to `emit`.
    ///
    /// The output at upsampled position `t = i·up + k` is
    /// `Σ_j taps[j] · U[t−j]` over the zero-stuffed stream `U`; only the
    /// taps with `j ≡ k (mod up)` meet a non-structural-zero sample, and
    /// those samples are the plain input history `x[i], x[i−1], …` (scaled
    /// by `up`), which is exactly what the ring holds.
    pub fn push_each(&mut self, x: Sample, mut emit: impl FnMut(Sample)) {
        let hist_len = self.hist.len();
        self.hist[self.pos] = x * self.up as f64;
        self.pos += 1;
        if self.pos == hist_len {
            self.pos = 0;
        }
        let newest = self.pos.checked_sub(1).unwrap_or(hist_len - 1);
        for k in 0..self.up {
            if self.phase == 0 {
                let mut acc = [0.0f64; 4];
                let mut j = k;
                let mut idx = newest;
                let mut m = 0usize;
                while j < self.taps.len() {
                    acc[m & 3] += self.taps[j] * self.hist[idx];
                    idx = idx.checked_sub(1).unwrap_or(hist_len - 1);
                    j += self.up;
                    m += 1;
                }
                emit((acc[0] + acc[1]) + (acc[2] + acc[3]));
            }
            self.phase += 1;
            if self.phase == self.down {
                self.phase = 0;
            }
        }
    }

    /// Push one input sample; returns zero or more output samples.
    pub fn push(&mut self, x: Sample) -> Vec<Sample> {
        let mut out = Vec::new();
        self.push_each(x, |y| out.push(y));
        out
    }

    /// Process a block of input samples.
    pub fn process(&mut self, input: &[Sample]) -> Vec<Sample> {
        let mut out = Vec::with_capacity(input.len() * self.up / self.down + 1);
        for &x in input {
            self.push_each(x, |y| out.push(y));
        }
        out
    }

    /// Exact output/input rate ratio.
    pub fn ratio(&self) -> f64 {
        self.up as f64 / self.down as f64
    }

    /// True when the phase accumulator is at the start of its cycle
    /// (block-processing `k` inputs with `k·up` divisible by `down` from
    /// here yields exactly `k·up/down` outputs and returns to alignment).
    pub fn aligned(&self) -> bool {
        self.phase == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn decimator_output_length() {
        let mut d = Decimator::new(25, 6.4e6, 63);
        let input = vec![1.0; 6400];
        let out = d.process(&input);
        assert_eq!(out.len(), 6400 / 25);
    }

    #[test]
    fn decimator_preserves_dc() {
        let mut d = Decimator::new(8, 256_000.0, 63);
        let out = d.process(&vec![1.0; 4096]);
        assert!((out.last().unwrap() - 1.0).abs() < 1e-2);
    }

    #[test]
    fn decimator_block_interface() {
        let mut d = Decimator::new(4, 32_000.0, 31);
        let y = d.process_block(&[1.0, 1.0, 1.0, 1.0]);
        assert!(y.is_finite());
    }

    #[test]
    #[should_panic(expected = "block length")]
    fn wrong_block_length_panics() {
        let mut d = Decimator::new(4, 32_000.0, 31);
        let _ = d.process_block(&[1.0, 1.0]);
    }

    #[test]
    fn resampler_ratio_10_over_16() {
        let mut r = RationalResampler::new(10, 16, 6.4e6, 161);
        assert!((r.ratio() - 0.625).abs() < 1e-12);
        let out = r.process(&vec![1.0; 1600]);
        // 1600 * 10 / 16 = 1000 output samples.
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn resampler_preserves_dc_level() {
        let mut r = RationalResampler::new(10, 16, 6.4e6, 161);
        let out = r.process(&vec![1.0; 4000]);
        let tail = &out[out.len() - 200..];
        let mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn resampler_preserves_low_frequency_tone() {
        let sr = 64_000.0;
        let mut r = RationalResampler::new(1, 2, sr, 101);
        let tone: Vec<f64> = (0..4000)
            .map(|n| (2.0 * PI * 1000.0 * n as f64 / sr).sin())
            .collect();
        let out = r.process(&tone);
        assert_eq!(out.len(), 2000);
        let tail = &out[500..];
        let rms: f64 = (tail.iter().map(|x| x * x).sum::<f64>() / tail.len() as f64).sqrt();
        assert!((rms - (0.5f64).sqrt()).abs() < 0.1, "rms {rms}");
    }

    #[test]
    fn pal_audio_chain_rate() {
        // 6.4 MS/s -> /25 -> 256 kS/s -> /8 -> 32 kS/s.
        let mut src_a = Decimator::new(25, 6.4e6, 63);
        let mut audio = Decimator::new(8, 256_000.0, 63);
        let input = vec![0.5; 64_000];
        let mid = src_a.process(&input);
        assert_eq!(mid.len(), 2560);
        let out = audio.process(&mid);
        assert_eq!(out.len(), 320);
    }
}
