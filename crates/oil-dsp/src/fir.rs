//! Finite impulse response (FIR) filters.
//!
//! The PAL decoder uses low-pass filters to separate the video band from the
//! audio band (modules `LPF_V` and the filter inside `SRC_A`/`LPF_A`). The
//! implementation is a direct-form FIR with a windowed-sinc design; it keeps
//! internal state (the delay line) but is side-effect free, exactly the class
//! of functions OIL may coordinate.

use crate::simd::{dot_rr4, fir_block_rr4};
use crate::Sample;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// A direct-form FIR filter with an internal delay line.
///
/// The delay line is stored **doubled** (every sample written at `pos` and
/// `pos + n`), so the current window is always one contiguous ascending
/// slice and the dot product runs over it with pre-reversed taps and four
/// round-robin partial sums — no wraparound arithmetic per tap and an add
/// chain the CPU can pipeline. The 4-way reassociation moves results only
/// at the last-ulp level, inside the tolerance the golden vectors pin;
/// every engine shares this code, so cross-engine value oracles stay
/// bit-exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FirFilter {
    taps: Vec<f64>,
    /// `taps` reversed: `rtaps[i] = taps[n-1-i]`, paired with the
    /// ascending-time window.
    rtaps: Vec<f64>,
    /// Doubled delay line (`2n` slots).
    delay: Vec<Sample>,
    pos: usize,
    /// Block-path staging window (history ++ input). Always left empty
    /// between calls, so derived equality still compares filter state only.
    scratch: Vec<Sample>,
}

impl FirFilter {
    /// Create a filter from explicit tap coefficients.
    pub fn from_taps(taps: Vec<f64>) -> Self {
        assert!(!taps.is_empty(), "a FIR filter needs at least one tap");
        let n = taps.len();
        let rtaps = taps.iter().rev().copied().collect();
        FirFilter {
            taps,
            rtaps,
            delay: vec![0.0; 2 * n],
            pos: 0,
            scratch: Vec::new(),
        }
    }

    /// Design a low-pass filter with the windowed-sinc method.
    ///
    /// * `cutoff_hz` — the -6 dB cutoff frequency,
    /// * `sample_rate_hz` — the input sample rate,
    /// * `taps` — number of coefficients (an odd count gives a symmetric,
    ///   linear-phase filter).
    pub fn low_pass(cutoff_hz: f64, sample_rate_hz: f64, taps: usize) -> Self {
        assert!(taps >= 1, "need at least one tap");
        assert!(
            cutoff_hz > 0.0 && cutoff_hz < sample_rate_hz / 2.0,
            "cutoff must be below Nyquist"
        );
        let fc = cutoff_hz / sample_rate_hz;
        let m = (taps - 1) as f64;
        let mut coeffs = Vec::with_capacity(taps);
        for i in 0..taps {
            let x = i as f64 - m / 2.0;
            let sinc = if x.abs() < 1e-12 {
                2.0 * fc
            } else {
                (2.0 * PI * fc * x).sin() / (PI * x)
            };
            // Hamming window.
            let w = 0.54 - 0.46 * (2.0 * PI * i as f64 / m.max(1.0)).cos();
            coeffs.push(sinc * w);
        }
        // Normalise DC gain to one.
        let sum: f64 = coeffs.iter().sum();
        for c in &mut coeffs {
            *c /= sum;
        }
        FirFilter::from_taps(coeffs)
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// The tap coefficients.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// True if the filter has no taps (never constructed this way).
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// Process one input sample and return one output sample.
    pub fn push(&mut self, x: Sample) -> Sample {
        let n = self.taps.len();
        self.delay[self.pos] = x;
        self.delay[self.pos + n] = x;
        // Ascending-time window [x_{t-n+1} … x_t], contiguous by doubling.
        let window = &self.delay[self.pos + 1..self.pos + 1 + n];
        let y = dot_rr4(window, &self.rtaps);
        self.pos += 1;
        if self.pos == n {
            self.pos = 0;
        }
        y
    }

    /// Advance the delay line by one sample *without* computing the output
    /// — bit-exact state-wise with [`Self::push`] when the caller discards
    /// the result. Decimators and rational resamplers only emit a fraction
    /// of their filter outputs; skipping the dead dot products is most of
    /// their throughput.
    pub fn push_silent(&mut self, x: Sample) {
        let n = self.taps.len();
        self.delay[self.pos] = x;
        self.delay[self.pos + n] = x;
        self.pos += 1;
        if self.pos == n {
            self.pos = 0;
        }
    }

    /// Advance the delay line by a whole block of samples without computing
    /// outputs — bit-exact state-wise with a [`Self::push_silent`] loop, but
    /// two `memcpy`s per wrap instead of two stores per sample.
    pub fn push_silent_block(&mut self, input: &[Sample]) {
        let n = self.taps.len();
        let mut i = 0;
        while i < input.len() {
            let run = (input.len() - i).min(n - self.pos);
            let src = &input[i..i + run];
            self.delay[self.pos..self.pos + run].copy_from_slice(src);
            self.delay[self.pos + n..self.pos + n + run].copy_from_slice(src);
            self.pos += run;
            if self.pos == n {
                self.pos = 0;
            }
            i += run;
        }
    }

    /// Process a block of samples, appending the outputs to `out`.
    ///
    /// Bit-identical to a [`Self::push`] loop: the delay-line stores are the
    /// same, and each output's window and reduction order are the canonical
    /// ones. The win is structural — consecutive outputs' windows overlap in
    /// one contiguous stretch of the doubled delay line (up to the next
    /// wrap), so the dot products run through the multi-output SIMD kernel
    /// with shared tap loads instead of one call per sample.
    pub fn process_block_into(&mut self, input: &[Sample], out: &mut Vec<Sample>) {
        let n = self.taps.len();
        out.reserve(input.len());
        if n == 1 {
            // One tap: the window is `[x_t]` alone, and the generic path
            // degenerates to one kernel call per sample (`run ≤ n - pos`).
            // The trailing `+ 0.0 + 0.0` additions replay the round-robin
            // reduction `(l0+l1)+(l2+l3)` with three empty lanes, keeping
            // the result bit-identical even for signed zeros.
            let t = self.rtaps[0];
            out.extend(input.iter().map(|&x| (x * t + 0.0) + 0.0));
            if let Some(&last) = input.last() {
                self.delay[0] = last;
                self.delay[1] = last;
            }
            return;
        }
        if input.len() >= 2 * n {
            // Long block: stage `history ++ input` contiguously once and run
            // the whole block through one kernel call — every output's
            // window is the same ascending slice the chunked path (and a
            // `push` loop) would read, so the bits are identical; what goes
            // away is a delay-line copy round-trip every `≤ n` outputs.
            self.scratch.reserve(n - 1 + input.len());
            self.scratch
                .extend_from_slice(&self.delay[self.pos + 1..self.pos + n]);
            self.scratch.extend_from_slice(input);
            let start = out.len();
            out.resize(start + input.len(), 0.0);
            fir_block_rr4(&self.scratch, &self.rtaps, &mut out[start..]);
            self.scratch.clear();
            self.push_silent_block(input);
            return;
        }
        let mut i = 0;
        while i < input.len() {
            let run = (input.len() - i).min(n - self.pos);
            let src = &input[i..i + run];
            // Write the *doubled* copies only: output k's window still needs
            // the previous-era samples at primary slots `pos+1+k .. n`, which
            // writing the primary copies up front would clobber.
            self.delay[self.pos + n..self.pos + n + run].copy_from_slice(src);
            let start = out.len();
            out.resize(start + run, 0.0);
            fir_block_rr4(
                &self.delay[self.pos + 1..self.pos + run + n],
                &self.rtaps,
                &mut out[start..],
            );
            // Restore the doubling invariant now that no window reads the
            // old primary slots any more.
            self.delay[self.pos..self.pos + run].copy_from_slice(src);
            self.pos += run;
            if self.pos == n {
                self.pos = 0;
            }
            i += run;
        }
    }

    /// Process a block of samples.
    pub fn process(&mut self, input: &[Sample]) -> Vec<Sample> {
        let mut out = Vec::with_capacity(input.len());
        self.process_block_into(input, &mut out);
        out
    }

    /// Reset the delay line to zero.
    pub fn reset(&mut self) {
        self.delay.iter_mut().for_each(|d| *d = 0.0);
        self.pos = 0;
    }

    /// The filter's magnitude response at `freq_hz` for a given sample rate
    /// (used by tests to check the pass/stop-band behaviour).
    pub fn magnitude_at(&self, freq_hz: f64, sample_rate_hz: f64) -> f64 {
        let omega = 2.0 * PI * freq_hz / sample_rate_hz;
        let (mut re, mut im) = (0.0, 0.0);
        for (k, tap) in self.taps.iter().enumerate() {
            re += tap * (omega * k as f64).cos();
            im -= tap * (omega * k as f64).sin();
        }
        (re * re + im * im).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_gain_is_unity() {
        let mut f = FirFilter::low_pass(1000.0, 48_000.0, 63);
        let out = f.process(&vec![1.0; 500]);
        assert!((out.last().unwrap() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn passband_and_stopband() {
        let f = FirFilter::low_pass(100_000.0, 6_400_000.0, 101);
        assert!(f.magnitude_at(10_000.0, 6.4e6) > 0.95);
        assert!(f.magnitude_at(1_000_000.0, 6.4e6) < 0.05);
    }

    #[test]
    fn attenuates_out_of_band_tone() {
        let sr = 48_000.0;
        let mut f = FirFilter::low_pass(2_000.0, sr, 101);
        let tone: Vec<f64> = (0..2000)
            .map(|n| (2.0 * PI * 12_000.0 * n as f64 / sr).sin())
            .collect();
        let out = f.process(&tone);
        let rms_in: f64 = (tone.iter().map(|x| x * x).sum::<f64>() / tone.len() as f64).sqrt();
        let tail = &out[500..];
        let rms_out: f64 = (tail.iter().map(|x| x * x).sum::<f64>() / tail.len() as f64).sqrt();
        assert!(
            rms_out < 0.05 * rms_in,
            "rms_out {rms_out} vs rms_in {rms_in}"
        );
    }

    #[test]
    fn preserves_in_band_tone() {
        let sr = 48_000.0;
        let mut f = FirFilter::low_pass(6_000.0, sr, 101);
        let tone: Vec<f64> = (0..2000)
            .map(|n| (2.0 * PI * 1_000.0 * n as f64 / sr).sin())
            .collect();
        let out = f.process(&tone);
        let tail = &out[500..];
        let rms_out: f64 = (tail.iter().map(|x| x * x).sum::<f64>() / tail.len() as f64).sqrt();
        assert!((rms_out - (0.5f64).sqrt()).abs() < 0.05);
    }

    #[test]
    fn reset_clears_state() {
        let mut f = FirFilter::low_pass(1000.0, 48_000.0, 31);
        f.process(&[1.0; 64]);
        f.reset();
        let out = f.push(0.0);
        assert_eq!(out, 0.0);
        assert_eq!(f.len(), 31);
        assert!(!f.is_empty());
    }

    #[test]
    #[should_panic(expected = "below Nyquist")]
    fn cutoff_above_nyquist_panics() {
        let _ = FirFilter::low_pass(30_000.0, 48_000.0, 31);
    }

    #[test]
    fn explicit_taps_identity() {
        let mut f = FirFilter::from_taps(vec![1.0]);
        assert_eq!(f.push(3.5), 3.5);
        assert_eq!(f.push(-1.0), -1.0);
    }

    #[test]
    fn block_path_bit_identical_to_push_loop() {
        let input: Vec<f64> = (0..257).map(|i| (i as f64 * 0.31).sin()).collect();
        for taps in [1, 2, 3, 7, 31, 63] {
            for chunk in [1, 3, 8, 64, 100] {
                let mut by_push = FirFilter::low_pass(1000.0, 48_000.0, taps);
                let mut by_block = by_push.clone();
                let mut block_out = Vec::new();
                for c in input.chunks(chunk) {
                    by_block.process_block_into(c, &mut block_out);
                }
                let push_out: Vec<f64> = input.iter().map(|&x| by_push.push(x)).collect();
                assert_eq!(push_out.len(), block_out.len());
                for (i, (a, b)) in push_out.iter().zip(&block_out).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "taps {taps} chunk {chunk} sample {i}"
                    );
                }
                // Delay-line state converged identically: one more sample
                // through each must agree bit for bit.
                assert_eq!(
                    by_push.push(0.123).to_bits(),
                    by_block.push(0.123).to_bits(),
                    "taps {taps} chunk {chunk} post-block state"
                );
            }
        }
    }

    #[test]
    fn silent_block_bit_identical_to_silent_loop() {
        let input: Vec<f64> = (0..100).map(|i| (i as f64 * 0.77).cos()).collect();
        for taps in [1, 5, 31] {
            let mut a = FirFilter::low_pass(2000.0, 48_000.0, taps);
            let mut b = a.clone();
            for &x in &input {
                a.push_silent(x);
            }
            for c in input.chunks(13) {
                b.push_silent_block(c);
            }
            assert_eq!(a.push(1.5).to_bits(), b.push(1.5).to_bits(), "taps {taps}");
        }
    }
}
