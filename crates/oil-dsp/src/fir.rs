//! Finite impulse response (FIR) filters.
//!
//! The PAL decoder uses low-pass filters to separate the video band from the
//! audio band (modules `LPF_V` and the filter inside `SRC_A`/`LPF_A`). The
//! implementation is a direct-form FIR with a windowed-sinc design; it keeps
//! internal state (the delay line) but is side-effect free, exactly the class
//! of functions OIL may coordinate.

use crate::Sample;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// A direct-form FIR filter with an internal delay line.
///
/// The delay line is stored **doubled** (every sample written at `pos` and
/// `pos + n`), so the current window is always one contiguous ascending
/// slice and the dot product runs over it with pre-reversed taps and four
/// round-robin partial sums — no wraparound arithmetic per tap and an add
/// chain the CPU can pipeline. The 4-way reassociation moves results only
/// at the last-ulp level, inside the tolerance the golden vectors pin;
/// every engine shares this code, so cross-engine value oracles stay
/// bit-exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FirFilter {
    taps: Vec<f64>,
    /// `taps` reversed: `rtaps[i] = taps[n-1-i]`, paired with the
    /// ascending-time window.
    rtaps: Vec<f64>,
    /// Doubled delay line (`2n` slots).
    delay: Vec<Sample>,
    pos: usize,
}

impl FirFilter {
    /// Create a filter from explicit tap coefficients.
    pub fn from_taps(taps: Vec<f64>) -> Self {
        assert!(!taps.is_empty(), "a FIR filter needs at least one tap");
        let n = taps.len();
        let rtaps = taps.iter().rev().copied().collect();
        FirFilter {
            taps,
            rtaps,
            delay: vec![0.0; 2 * n],
            pos: 0,
        }
    }

    /// Design a low-pass filter with the windowed-sinc method.
    ///
    /// * `cutoff_hz` — the -6 dB cutoff frequency,
    /// * `sample_rate_hz` — the input sample rate,
    /// * `taps` — number of coefficients (an odd count gives a symmetric,
    ///   linear-phase filter).
    pub fn low_pass(cutoff_hz: f64, sample_rate_hz: f64, taps: usize) -> Self {
        assert!(taps >= 1, "need at least one tap");
        assert!(
            cutoff_hz > 0.0 && cutoff_hz < sample_rate_hz / 2.0,
            "cutoff must be below Nyquist"
        );
        let fc = cutoff_hz / sample_rate_hz;
        let m = (taps - 1) as f64;
        let mut coeffs = Vec::with_capacity(taps);
        for i in 0..taps {
            let x = i as f64 - m / 2.0;
            let sinc = if x.abs() < 1e-12 {
                2.0 * fc
            } else {
                (2.0 * PI * fc * x).sin() / (PI * x)
            };
            // Hamming window.
            let w = 0.54 - 0.46 * (2.0 * PI * i as f64 / m.max(1.0)).cos();
            coeffs.push(sinc * w);
        }
        // Normalise DC gain to one.
        let sum: f64 = coeffs.iter().sum();
        for c in &mut coeffs {
            *c /= sum;
        }
        FirFilter::from_taps(coeffs)
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// The tap coefficients.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// True if the filter has no taps (never constructed this way).
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// Process one input sample and return one output sample.
    pub fn push(&mut self, x: Sample) -> Sample {
        let n = self.taps.len();
        self.delay[self.pos] = x;
        self.delay[self.pos + n] = x;
        // Ascending-time window [x_{t-n+1} … x_t], contiguous by doubling.
        let window = &self.delay[self.pos + 1..self.pos + 1 + n];
        let mut acc = [0.0f64; 4];
        for (i, (&w, &t)) in window.iter().zip(self.rtaps.iter()).enumerate() {
            acc[i & 3] += t * w;
        }
        self.pos += 1;
        if self.pos == n {
            self.pos = 0;
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3])
    }

    /// Advance the delay line by one sample *without* computing the output
    /// — bit-exact state-wise with [`Self::push`] when the caller discards
    /// the result. Decimators and rational resamplers only emit a fraction
    /// of their filter outputs; skipping the dead dot products is most of
    /// their throughput.
    pub fn push_silent(&mut self, x: Sample) {
        let n = self.taps.len();
        self.delay[self.pos] = x;
        self.delay[self.pos + n] = x;
        self.pos += 1;
        if self.pos == n {
            self.pos = 0;
        }
    }

    /// Process a block of samples.
    pub fn process(&mut self, input: &[Sample]) -> Vec<Sample> {
        input.iter().map(|&x| self.push(x)).collect()
    }

    /// Reset the delay line to zero.
    pub fn reset(&mut self) {
        self.delay.iter_mut().for_each(|d| *d = 0.0);
        self.pos = 0;
    }

    /// The filter's magnitude response at `freq_hz` for a given sample rate
    /// (used by tests to check the pass/stop-band behaviour).
    pub fn magnitude_at(&self, freq_hz: f64, sample_rate_hz: f64) -> f64 {
        let omega = 2.0 * PI * freq_hz / sample_rate_hz;
        let (mut re, mut im) = (0.0, 0.0);
        for (k, tap) in self.taps.iter().enumerate() {
            re += tap * (omega * k as f64).cos();
            im -= tap * (omega * k as f64).sin();
        }
        (re * re + im * im).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_gain_is_unity() {
        let mut f = FirFilter::low_pass(1000.0, 48_000.0, 63);
        let out = f.process(&vec![1.0; 500]);
        assert!((out.last().unwrap() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn passband_and_stopband() {
        let f = FirFilter::low_pass(100_000.0, 6_400_000.0, 101);
        assert!(f.magnitude_at(10_000.0, 6.4e6) > 0.95);
        assert!(f.magnitude_at(1_000_000.0, 6.4e6) < 0.05);
    }

    #[test]
    fn attenuates_out_of_band_tone() {
        let sr = 48_000.0;
        let mut f = FirFilter::low_pass(2_000.0, sr, 101);
        let tone: Vec<f64> = (0..2000)
            .map(|n| (2.0 * PI * 12_000.0 * n as f64 / sr).sin())
            .collect();
        let out = f.process(&tone);
        let rms_in: f64 = (tone.iter().map(|x| x * x).sum::<f64>() / tone.len() as f64).sqrt();
        let tail = &out[500..];
        let rms_out: f64 = (tail.iter().map(|x| x * x).sum::<f64>() / tail.len() as f64).sqrt();
        assert!(
            rms_out < 0.05 * rms_in,
            "rms_out {rms_out} vs rms_in {rms_in}"
        );
    }

    #[test]
    fn preserves_in_band_tone() {
        let sr = 48_000.0;
        let mut f = FirFilter::low_pass(6_000.0, sr, 101);
        let tone: Vec<f64> = (0..2000)
            .map(|n| (2.0 * PI * 1_000.0 * n as f64 / sr).sin())
            .collect();
        let out = f.process(&tone);
        let tail = &out[500..];
        let rms_out: f64 = (tail.iter().map(|x| x * x).sum::<f64>() / tail.len() as f64).sqrt();
        assert!((rms_out - (0.5f64).sqrt()).abs() < 0.05);
    }

    #[test]
    fn reset_clears_state() {
        let mut f = FirFilter::low_pass(1000.0, 48_000.0, 31);
        f.process(&[1.0; 64]);
        f.reset();
        let out = f.push(0.0);
        assert_eq!(out, 0.0);
        assert_eq!(f.len(), 31);
        assert!(!f.is_empty());
    }

    #[test]
    #[should_panic(expected = "below Nyquist")]
    fn cutoff_above_nyquist_panics() {
        let _ = FirFilter::low_pass(30_000.0, 48_000.0, 31);
    }

    #[test]
    fn explicit_taps_identity() {
        let mut f = FirFilter::from_taps(vec![1.0]);
        assert_eq!(f.push(3.5), 3.5);
        assert_eq!(f.push(-1.0), -1.0);
    }
}
