//! Explicit SIMD inner products for the hot filter loops.
//!
//! Every engine in the workspace must produce *bit-identical* value streams
//! (the runtime differential oracles compare raw `f64` bits), so a SIMD
//! path is only admissible if it reproduces the scalar reduction order
//! exactly. The canonical reduction — shared by [`dot_rr4_scalar`], the
//! AVX path and every filter in this crate — is **four round-robin partial
//! sums**: product `i` is accumulated into lane `i & 3`, and the final
//! reduction is `(l0 + l1) + (l2 + l3)`.
//!
//! A 4-wide f64 vector loop with separate multiply and add (`vmulpd` +
//! `vaddpd`, *not* FMA — fused multiply-add changes the rounding of every
//! product) keeps each lane's additions in the same order as the scalar
//! loop: lane `l` sees the products at indices `l, l+4, l+8, …` in
//! ascending order either way. The remainder after the last full vector is
//! finished scalar, continuing the same lane assignment. The dispatch is
//! resolved once at startup via CPU feature detection and falls back to the
//! portable scalar loop on every other architecture.

/// True when the 4-wide f64 path is available on this host (cached after
/// the first call).
#[cfg(target_arch = "x86_64")]
#[inline]
pub fn simd_available() -> bool {
    use std::sync::OnceLock;
    static AVX: OnceLock<bool> = OnceLock::new();
    *AVX.get_or_init(|| std::arch::is_x86_feature_detected!("avx"))
}

/// Portable fallback: no 4-wide f64 path.
#[cfg(not(target_arch = "x86_64"))]
#[inline]
pub fn simd_available() -> bool {
    false
}

/// Canonical round-robin dot product of two equal-length slices.
///
/// Bit-identical to [`dot_rr4_scalar`] on every input; uses the AVX path
/// when the host supports it.
#[inline]
pub fn dot_rr4(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // Below two full vectors the feature dispatch and accumulator setup
    // cost more than the multiplies; both paths produce the same bits, so
    // the cutover is purely a speed choice (polyphase resampler phases are
    // typically ⌈taps/up⌉ ≈ 6–7 taps and take this branch).
    #[cfg(target_arch = "x86_64")]
    if a.len() >= 8 && simd_available() {
        // SAFETY: `simd_available` proved AVX support at runtime.
        return unsafe { dot_rr4_avx(a, b) };
    }
    dot_rr4_scalar(a, b)
}

/// The canonical scalar reduction: `acc[i & 3] += a[i] * b[i]`, reduced as
/// `(acc0 + acc1) + (acc2 + acc3)`. Hand-unrolled into four named lanes —
/// the indexed-array form keeps the accumulators in memory and every
/// short dot stalls on store-to-load forwarding; the unroll is the same
/// additions in the same per-lane order, so the bits don't move.
#[inline]
pub fn dot_rr4_scalar(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (mut l0, mut l1, mut l2, mut l3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut i = 0usize;
    while i + 4 <= n {
        l0 += a[i] * b[i];
        l1 += a[i + 1] * b[i + 1];
        l2 += a[i + 2] * b[i + 2];
        l3 += a[i + 3] * b[i + 3];
        i += 4;
    }
    if i < n {
        l0 += a[i] * b[i];
    }
    if i + 1 < n {
        l1 += a[i + 1] * b[i + 1];
    }
    if i + 2 < n {
        l2 += a[i + 2] * b[i + 2];
    }
    (l0 + l1) + (l2 + l3)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn dot_rr4_avx(a: &[f64], b: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let n = a.len().min(b.len());
    let mut acc = _mm256_setzero_pd();
    let mut i = 0usize;
    while i + 4 <= n {
        let va = _mm256_loadu_pd(a.as_ptr().add(i));
        let vb = _mm256_loadu_pd(b.as_ptr().add(i));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
        i += 4;
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    // The tail continues the same lane assignment the vector loop used.
    while i < n {
        lanes[i & 3] += a[i] * b[i];
        i += 1;
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
}

/// Sliding-window FIR block: `out[j] = dot_rr4(&window[j..j + n], rtaps)`
/// for every `j`, where `n = rtaps.len()` and
/// `window.len() == out.len() + n - 1`.
///
/// The AVX path computes four *outputs* per pass sharing each tap load —
/// instruction-level parallelism across independent accumulator sets —
/// while each individual output keeps the canonical per-output reduction
/// order, so the result is bit-identical to the scalar loop.
#[inline]
pub fn fir_block_rr4(window: &[f64], rtaps: &[f64], out: &mut [f64]) {
    let n = rtaps.len();
    debug_assert_eq!(window.len(), out.len() + n - 1);
    // Under two full vectors of taps the AVX kernel is all tail; the
    // scalar loop wins and the bits are the same either way.
    #[cfg(target_arch = "x86_64")]
    if n >= 8 && simd_available() {
        // SAFETY: `simd_available` proved AVX support at runtime.
        unsafe { fir_block_avx(window, rtaps, out) };
        return;
    }
    for (j, o) in out.iter_mut().enumerate() {
        *o = dot_rr4_scalar(&window[j..j + n], rtaps);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn fir_block_avx(window: &[f64], rtaps: &[f64], out: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = rtaps.len();
    let m = out.len();
    let tp = rtaps.as_ptr();
    // Transposed accumulator layout: vector lane `k` carries output `j+k`,
    // and `acc_r` collects the products of the taps with index `≡ r
    // (mod 4)` — exactly lane `r` of each output's round-robin reduction,
    // accumulated in ascending tap order. One broadcast tap times one
    // unaligned window load yields the tap-`i` product of all four
    // outputs at once; there is no per-group lane spill, no scalar tap
    // tail, and the final `(l0+l1)+(l2+l3)` collapses to two vector adds
    // producing four finished outputs.
    let mut j = 0usize;
    while j + 4 <= m {
        let base = window.as_ptr().add(j);
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut acc2 = _mm256_setzero_pd();
        let mut acc3 = _mm256_setzero_pd();
        let mut i = 0usize;
        while i + 4 <= n {
            let t0 = _mm256_broadcast_sd(&*tp.add(i));
            acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(t0, _mm256_loadu_pd(base.add(i))));
            let t1 = _mm256_broadcast_sd(&*tp.add(i + 1));
            acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(t1, _mm256_loadu_pd(base.add(i + 1))));
            let t2 = _mm256_broadcast_sd(&*tp.add(i + 2));
            acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(t2, _mm256_loadu_pd(base.add(i + 2))));
            let t3 = _mm256_broadcast_sd(&*tp.add(i + 3));
            acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(t3, _mm256_loadu_pd(base.add(i + 3))));
            i += 4;
        }
        while i < n {
            let t = _mm256_broadcast_sd(&*tp.add(i));
            let p = _mm256_mul_pd(t, _mm256_loadu_pd(base.add(i)));
            match i & 3 {
                0 => acc0 = _mm256_add_pd(acc0, p),
                1 => acc1 = _mm256_add_pd(acc1, p),
                2 => acc2 = _mm256_add_pd(acc2, p),
                _ => acc3 = _mm256_add_pd(acc3, p),
            }
            i += 1;
        }
        let r = _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
        _mm256_storeu_pd(out.as_mut_ptr().add(j), r);
        j += 4;
    }
    while j < m {
        out[j] = dot_rr4_avx(&window[j..j + n], rtaps);
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, seed: f64) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * seed + 0.37).sin()).collect()
    }

    #[test]
    fn dot_dispatch_matches_scalar_exactly() {
        for n in [0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 63, 64, 100, 2047] {
            let a = ramp(n, 1.3);
            let b = ramp(n, 0.7);
            let fast = dot_rr4(&a, &b);
            let slow = dot_rr4_scalar(&a, &b);
            assert_eq!(fast.to_bits(), slow.to_bits(), "n = {n}");
        }
    }

    #[test]
    fn fir_block_matches_scalar_exactly() {
        for n in [1, 2, 3, 4, 5, 7, 8, 31, 63, 64] {
            for m in [1, 2, 3, 4, 5, 8, 13, 64] {
                let window = ramp(m + n - 1, 0.9);
                let rtaps = ramp(n, 1.7);
                let mut fast = vec![0.0; m];
                fir_block_rr4(&window, &rtaps, &mut fast);
                for (j, &f) in fast.iter().enumerate() {
                    let s = dot_rr4_scalar(&window[j..j + n], &rtaps);
                    assert_eq!(f.to_bits(), s.to_bits(), "n = {n}, m = {m}, j = {j}");
                }
            }
        }
    }
}
