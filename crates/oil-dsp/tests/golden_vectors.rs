//! Golden-vector regression tests for the DSP kernels.
//!
//! The runtime differential harness (`tests/runtime_differential.rs` at the
//! workspace root) compares `oil-rt` against `oil-sim` on token traces *and*
//! sample values; these vectors pin the kernels themselves, so a
//! runtime-vs-simulator value mismatch can be attributed to scheduling, not
//! to a silently changed kernel. The vectors were produced by the kernels at
//! the time this suite was written; comparisons use a 1e-9 absolute
//! tolerance because the trigonometric library functions feeding the filter
//! designs and oscillators are not bit-specified across platforms (pure
//! arithmetic paths like the moving average are exact and checked as such).

// Golden vectors naturally land on mathematical constants (the mixer
// samples sin at multiples of π/8, hitting ±√2 exactly); clippy's
// approx-constant lint does not apply to pinned reference data.
#![allow(clippy::approx_constant)]

use oil_dsp::{CompositeSignal, Decimator, FirFilter, Mixer, RationalResampler, ToneGenerator};

const TOL: f64 = 1e-9;

fn assert_close(actual: &[f64], expected: &[f64], what: &str) {
    assert_eq!(actual.len(), expected.len(), "{what}: length");
    for (i, (a, e)) in actual.iter().zip(expected).enumerate() {
        assert!(
            (a - e).abs() <= TOL,
            "{what}[{i}]: {a} differs from golden {e}"
        );
    }
}

#[test]
fn fir_low_pass_step_response() {
    const FIR_STEP: [f64; 12] = [
        0.0235921947485804,
        0.11633663415106892,
        0.34868966700872417,
        0.6513103329912759,
        0.8836633658489312,
        0.9764078052514198,
        1.0000000000000002,
        1.0000000000000002,
        1.0000000000000002,
        1.0000000000000002,
        1.0000000000000002,
        1.0000000000000002,
    ];
    let mut f = FirFilter::low_pass(1000.0, 48_000.0, 7);
    assert_close(&f.process(&[1.0; 12]), &FIR_STEP, "fir step");
}

#[test]
fn fir_moving_average_is_exact() {
    // A pure-arithmetic path: no trigonometry involved, so the golden values
    // are bit-exact on every platform.
    const FIR_MA_RAMP: [f64; 8] = [0.0, 0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5];
    let mut ma = FirFilter::from_taps(vec![0.5, 0.5]);
    let ramp: Vec<f64> = (0..8).map(|i| i as f64).collect();
    assert_eq!(ma.process(&ramp), FIR_MA_RAMP.to_vec());
}

#[test]
fn rational_resampler_10_16_video_chain() {
    // The PAL video path's 16 → 10 conversion (6.4 MS/s → 4 MS/s): 32 ramp
    // inputs must yield exactly 20 outputs with the pinned values.
    const RESAMPLE_RAMP: [f64; 20] = [
        0.0,
        0.0057650748636160695,
        0.053157373912764865,
        0.10337436446305515,
        0.1519461428627324,
        0.20612722508144204,
        0.2514364584786731,
        0.30360815531407687,
        0.35382514586436714,
        0.40018158984205887,
        0.45982227133552456,
        0.49967190545799955,
        0.5540589367153889,
        0.6042759272656791,
        0.6484170368213853,
        0.7135173175896071,
        0.747907352437326,
        0.8045097181167009,
        0.8547267086669913,
        0.8966524838007118,
    ];
    let mut r = RationalResampler::new(10, 16, 6.4e6, 31);
    let ramp: Vec<f64> = (0..32).map(|i| i as f64 / 32.0).collect();
    assert_close(&r.process(&ramp), &RESAMPLE_RAMP, "resample 10/16");
}

#[test]
fn decimator_by_4_ramp() {
    const DECIMATE_RAMP: [f64; 6] = [
        -0.0012106731641461424,
        0.024653795694063074,
        0.1654559935025205,
        0.3333333333333333,
        0.5,
        0.6666666666666666,
    ];
    let mut d = Decimator::new(4, 48_000.0, 15);
    let ramp: Vec<f64> = (0..24).map(|i| i as f64 / 24.0).collect();
    assert_close(&d.process(&ramp), &DECIMATE_RAMP, "decimate by 4");
}

#[test]
fn mixer_2mhz_lo_on_unit_input() {
    // 2 MHz LO at 6.4 MS/s: the oscillator repeats every 16 samples
    // (2e6/6.4e6 = 5/16 of a turn per sample).
    const MIX_ONES: [f64; 10] = [
        0.0,
        1.8477590650225735,
        -1.414213562373095,
        -0.7653668647301808,
        2.0,
        -0.7653668647301793,
        -1.4142135623730954,
        1.847759065022573,
        1.133107779529596e-15,
        -1.847759065022574,
    ];
    let mut m = Mixer::new(2.0e6, 6.4e6);
    assert_close(&m.process(&[1.0; 10]), &MIX_ONES, "mixer");
}

#[test]
fn tone_generator_1khz() {
    const TONE_1K: [f64; 8] = [
        0.0,
        0.13052619222005157,
        0.25881904510252074,
        0.3826834323650898,
        0.49999999999999994,
        0.6087614290087205,
        0.7071067811865475,
        0.7933533402912352,
    ];
    let mut t = ToneGenerator::new(1000.0, 48_000.0, 1.0);
    assert_close(&t.block(8), &TONE_1K, "tone 1 kHz");
}

#[test]
fn pal_composite_front_end() {
    // The synthetic RF signal the PAL case study decodes: video band +
    // audio tone on a 2 MHz carrier at 6.4 MS/s.
    const COMPOSITE_PAL: [f64; 8] = [
        0.0,
        0.5112341946991469,
        -0.2558833502702267,
        -0.04489301525569389,
        0.6960720671970797,
        0.05116884238022987,
        -0.06431000800564052,
        0.8004168862215724,
    ];
    let mut c = CompositeSignal::pal_default();
    assert_close(&c.block(8), &COMPOSITE_PAL, "PAL composite");
}

#[test]
fn golden_paths_are_deterministic_across_instances() {
    // Two fresh instances of every kernel agree sample for sample — the
    // property the runtime's thread-count invariance rests on.
    let ramp: Vec<f64> = (0..64).map(|i| (i as f64 / 13.0).fract()).collect();
    assert_eq!(
        FirFilter::low_pass(1000.0, 48_000.0, 31).process(&ramp),
        FirFilter::low_pass(1000.0, 48_000.0, 31).process(&ramp)
    );
    assert_eq!(
        RationalResampler::new(10, 16, 6.4e6, 31).process(&ramp),
        RationalResampler::new(10, 16, 6.4e6, 31).process(&ramp)
    );
    assert_eq!(
        Mixer::new(2.0e6, 6.4e6).process(&ramp),
        Mixer::new(2.0e6, 6.4e6).process(&ramp)
    );
    assert_eq!(
        ToneGenerator::new(440.0, 48_000.0, 1.0).block(64),
        ToneGenerator::new(440.0, 48_000.0, 1.0).block(64)
    );
}
