//! Composition and hiding of CTA components.
//!
//! Two properties make the CTA model suitable for incremental, library-based
//! design (paper Sections I and V-C):
//!
//! * **associative composition** — merging models is order-independent
//!   ([`CtaModel::merge`] plus connecting ports), and
//! * **hiding** — the internal ports of a component can be removed while
//!   preserving all constraints between its remaining (interface) ports, so a
//!   library can ship a *black-box* component described only by maximum rates
//!   and delays, exactly like the `Video` and `Audio` modules of the PAL case
//!   study.
//!
//! Hiding is implemented by replacing paths through hidden ports with direct
//! connections whose delay is the longest internal path delay and whose `γ`
//! is the product of the path's ratios; the maximum rates of hidden ports are
//! pushed onto the interface ports they constrain. All path delays are exact
//! rationals, so the summarised interface is bit-identical to the delays it
//! replaces.

use crate::component::{ComponentId, Connection, CtaModel};
use crate::consistency::{propagate_rate_structure, ConsistencyError};
use oil_dataflow::index::{Idx, IndexVec, PortId};
use oil_dataflow::Rational;
use std::collections::BTreeSet;

/// Hide all ports of `component` (and of its nested children) that are only
/// connected to ports inside the same subtree, replacing them by direct
/// connections between the remaining interface ports. Returns the new model
/// (the original is left untouched) or an error if the hidden part contains a
/// positive-delay cycle (in which case no finite interface exists).
///
/// The interface ports of the component keep their ids' relative order but
/// ids are re-assigned; use port names to locate them afterwards.
pub fn hide_component(
    model: &CtaModel,
    component: ComponentId,
) -> Result<CtaModel, ConsistencyError> {
    // The subtree of components being considered "inside".
    let mut inside_components = BTreeSet::new();
    let mut stack = vec![component];
    while let Some(c) = stack.pop() {
        if inside_components.insert(c) {
            stack.extend(model.children(c));
        }
    }

    // Ports to hide: ports of inside components all of whose connections stay
    // inside the subtree. Ports with at least one connection to the outside
    // are interface ports and survive.
    let port_is_inside = |p: PortId| inside_components.contains(&model.ports[p].component);
    let mut hide: BTreeSet<PortId> = BTreeSet::new();
    for pid in model.ports.indices() {
        if !port_is_inside(pid) {
            continue;
        }
        let crosses = model.connections.iter().any(|c| {
            (c.from == pid && !port_is_inside(c.to)) || (c.to == pid && !port_is_inside(c.from))
        });
        if !crosses {
            hide.insert(pid);
        }
    }

    // Longest-path closure over hidden ports: for every pair of kept ports
    // connected through hidden ports, add a direct connection. We run a
    // Bellman-Ford-style relaxation per kept source port restricted to
    // connections whose interior endpoints are hidden.
    let n = model.ports.len();
    let kept: Vec<PortId> = model
        .ports
        .indices()
        .filter(|p| !hide.contains(p))
        .collect();

    // Evaluate rate-dependent delays at each port's maximum rate; this is the
    // conservative (largest-delay) interpretation for a rate-only interface.
    // Unbounded max rates contribute no rate-dependent delay.
    let delay_of = |c: &Connection| -> Rational {
        match model.ports[c.from].max_rate {
            Some(r) if r.is_positive() => c.epsilon + c.phi / r,
            _ => c.epsilon,
        }
    };

    // Rate constraints of hidden ports must not vanish with them: a hidden
    // port `h` with maximum rate `r̂(h)` and rate coefficient `coeff(h)`
    // bounds the group's scale by `r̂(h)/coeff(h)`, and a hidden *required*
    // rate pins the scale to `r(h)/coeff(h)`. Those per-group constraints
    // are re-expressed on the *interface ports of the hidden subtree* (kept
    // ports inside it) — not on unrelated kept ports elsewhere in the model,
    // whose declared bounds must stay untouched. Conflicting required rates
    // (two hidden ports, or hidden vs. interface) are an inconsistency of
    // the white-box model and must stay an error after hiding, never be
    // silently dropped. Without this push, hiding would report higher
    // observable rates than the white-box model — caught by the
    // generated-component property test
    // `prop_hiding_preserves_observable_rates_and_latency`.
    let rs = propagate_rate_structure(model)?;
    let mut hidden_scale: Vec<Option<Rational>> = vec![None; rs.groups];
    let mut hidden_max_scale: Vec<Option<Rational>> = vec![None; rs.groups];
    for &h in &hide {
        let hp = &model.ports[h];
        let g = Idx::index(rs.group[h]);
        if let Some(req) = hp.required_rate {
            let scale = req / rs.coeff[h];
            match hidden_scale[g] {
                None => hidden_scale[g] = Some(scale),
                Some(existing) if existing != scale => {
                    return Err(ConsistencyError::RequiredRateConflict {
                        port: h,
                        implied: existing * rs.coeff[h],
                        required: req,
                    });
                }
                Some(_) => {}
            }
        }
        if let Some(max) = hp.max_rate {
            let bound = max / rs.coeff[h];
            hidden_max_scale[g] = Some(match hidden_max_scale[g] {
                None => bound,
                Some(existing) => existing.min(bound),
            });
        }
    }
    let mut pushed_max: IndexVec<PortId, Option<Rational>> = IndexVec::from_elem(None, n);
    let mut pushed_required: IndexVec<PortId, Option<Rational>> = IndexVec::from_elem(None, n);
    for &s in kept.iter().filter(|&&s| port_is_inside(s)) {
        let g = Idx::index(rs.group[s]);
        if let Some(scale) = hidden_scale[g] {
            let req = scale * rs.coeff[s];
            match model.ports[s].required_rate {
                Some(own) if own != req => {
                    return Err(ConsistencyError::RequiredRateConflict {
                        port: s,
                        implied: req,
                        required: own,
                    });
                }
                _ => pushed_required[s] = Some(req),
            }
        }
        if let Some(scale) = hidden_max_scale[g] {
            pushed_max[s] = Some(scale * rs.coeff[s]);
        }
    }

    let mut result = CtaModel::new();
    // Recreate components (all of them; empty ones are harmless) and kept ports.
    for comp in &model.components {
        result.add_component(comp.name.clone(), comp.parent);
    }
    let mut new_id: IndexVec<PortId, Option<PortId>> = IndexVec::from_elem(None, n);
    for &p in &kept {
        let port = &model.ports[p];
        let max_rate = match (port.max_rate, pushed_max[p]) {
            (Some(own), Some(pushed)) => Some(own.min(pushed)),
            (own, pushed) => own.or(pushed),
        };
        let np = result.add_port(port.component, port.name.clone(), max_rate);
        result.ports[np].required_rate = port.required_rate.or(pushed_required[p]);
        new_id[p] = Some(np);
    }
    let renamed = |p: PortId| new_id[p].expect("kept ports have new ids");

    // Copy connections between kept ports unchanged.
    for c in &model.connections {
        if !hide.contains(&c.from) && !hide.contains(&c.to) {
            let id = result.connect(renamed(c.from), renamed(c.to), c.epsilon, c.phi, c.gamma);
            result.connections[id].buffer = c.buffer.clone();
            result.connections[id].couples_rates = c.couples_rates;
        }
    }

    // For each kept port with an edge into the hidden region, compute longest
    // delays (and gamma products) to every other kept port through hidden
    // ports only.
    for &start in &kept {
        // dist over hidden ports (and final kept targets); `None` is -inf.
        let mut dist: IndexVec<PortId, Option<Rational>> = IndexVec::from_elem(None, n);
        let mut gamma: IndexVec<PortId, Rational> = IndexVec::from_elem(Rational::ONE, n);
        dist[start] = Some(Rational::ZERO);
        for _ in 0..hide.len() + 1 {
            let mut changed = false;
            for c in &model.connections {
                // Only traverse connections that enter or stay inside the
                // hidden region (the last hop may land on a kept port).
                let interior = hide.contains(&c.to) || hide.contains(&c.from);
                if !interior {
                    continue;
                }
                if c.from != start && !hide.contains(&c.from) {
                    continue;
                }
                let Some(base) = dist[c.from] else { continue };
                let nd = base + delay_of(c);
                if dist[c.to].is_none_or(|d| nd > d) {
                    dist[c.to] = Some(nd);
                    gamma[c.to] = gamma[c.from] * c.gamma;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // A hidden port still improving after |hide| rounds means a positive
        // cycle inside the hidden region.
        for c in &model.connections {
            if hide.contains(&c.from) && hide.contains(&c.to) {
                let Some(base) = dist[c.from] else { continue };
                let nd = base + delay_of(c);
                if dist[c.to].is_none_or(|d| nd > d) {
                    let excess = match dist[c.to] {
                        Some(d) => nd - d,
                        None => nd,
                    };
                    return Err(ConsistencyError::PositiveCycle {
                        ports: vec![c.from, c.to],
                        excess,
                        connections: Vec::new(),
                    });
                }
            }
        }
        for &end in &kept {
            if end == start {
                continue;
            }
            let Some(path_delay) = dist[end] else {
                continue;
            };
            // Only add the summarised connection if the path actually passed
            // through hidden ports (direct kept-to-kept edges were copied
            // already).
            let direct = model
                .connections
                .iter()
                .any(|c| c.from == start && c.to == end && delay_of(c) >= path_delay);
            if !direct {
                result.connect(
                    renamed(start),
                    renamed(end),
                    path_delay,
                    Rational::ZERO,
                    gamma[end],
                );
            }
        }
    }

    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oil_dataflow::Rational;

    fn int(n: i128) -> Rational {
        Rational::from_int(n)
    }

    fn ms(n: i128) -> Rational {
        Rational::new(n, 1000)
    }

    /// A module component with two internal processing ports between its
    /// interface ports.
    fn module_with_internals() -> (CtaModel, PortId, PortId) {
        let max = Some(int(1000));
        let mut m = CtaModel::new();
        let outer = m.add_component("lib", None);
        let inner = m.add_component("loop0", Some(outer));
        let input = m.add_port(outer, "in", max);
        let a = m.add_port(inner, "a", max);
        let b = m.add_port(inner, "b", max);
        let output = m.add_port(outer, "out", max);
        // External world connects to `in` and `out`.
        let env = m.add_component("env", None);
        let env_out = m.add_port(env, "src", max);
        let env_in = m.add_port(env, "snk", max);
        m.connect(
            env_out,
            input,
            Rational::ZERO,
            Rational::ZERO,
            Rational::ONE,
        );
        m.connect(input, a, ms(1), Rational::ZERO, Rational::ONE);
        m.connect(a, b, ms(2), Rational::ZERO, Rational::ONE);
        m.connect(b, output, ms(3), Rational::ZERO, Rational::new(1, 2));
        m.connect(
            output,
            env_in,
            Rational::ZERO,
            Rational::ZERO,
            Rational::ONE,
        );
        (m, input, output)
    }

    #[test]
    fn hiding_preserves_end_to_end_delay_and_gamma() {
        let (m, _input, _output) = module_with_internals();
        let lib = m.component_by_name("lib").unwrap();
        let hidden = hide_component(&m, lib).unwrap();
        // The internal ports a and b are gone.
        assert_eq!(hidden.port_count(), m.port_count() - 2);
        // There is a direct in -> out connection with exactly the summed
        // delay of 6 ms and gamma 1/2.
        let lib_new = hidden.component_by_name("lib").unwrap();
        let in_new = hidden.port_by_name(lib_new, "in").unwrap();
        let out_new = hidden.port_by_name(lib_new, "out").unwrap();
        let c = hidden
            .connections
            .iter()
            .find(|c| c.from == in_new && c.to == out_new)
            .expect("summarised connection exists");
        assert_eq!(c.epsilon, ms(6));
        assert_eq!(c.gamma, Rational::new(1, 2));
    }

    #[test]
    fn hiding_keeps_interface_connections_to_environment() {
        let (m, _, _) = module_with_internals();
        let lib = m.component_by_name("lib").unwrap();
        let hidden = hide_component(&m, lib).unwrap();
        let env = hidden.component_by_name("env").unwrap();
        let env_out = hidden.port_by_name(env, "src").unwrap();
        let env_in = hidden.port_by_name(env, "snk").unwrap();
        assert!(hidden.connections.iter().any(|c| c.from == env_out));
        assert!(hidden.connections.iter().any(|c| c.to == env_in));
        // The composition still passes the consistency check.
        assert!(hidden.check_consistency().is_ok());
    }

    #[test]
    fn hiding_composed_model_matches_unhidden_latency_exactly() {
        let (m, _, _) = module_with_internals();
        let full = m.check_consistency().unwrap();
        let env = m.component_by_name("env").unwrap();
        let s = m.port_by_name(env, "src").unwrap();
        let k = m.port_by_name(env, "snk").unwrap();
        let full_latency = crate::latency::check_latency_path(&m, &full, s, k)
            .unwrap()
            .latency;

        let lib = m.component_by_name("lib").unwrap();
        let hidden = hide_component(&m, lib).unwrap();
        let res = hidden.check_consistency().unwrap();
        let env_h = hidden.component_by_name("env").unwrap();
        let sh = hidden.port_by_name(env_h, "src").unwrap();
        let kh = hidden.port_by_name(env_h, "snk").unwrap();
        let hidden_latency = crate::latency::check_latency_path(&hidden, &res, sh, kh)
            .unwrap()
            .latency;
        // Exact equality: hiding preserves path delays bit for bit.
        assert_eq!(full_latency, hidden_latency);
    }

    #[test]
    fn hiding_pushes_internal_max_rates_to_the_interface() {
        // The internal port `a` is the slowest (250 Hz); after hiding, its
        // bound must survive on the interface, scaled by the gamma path.
        let mut m = CtaModel::new();
        let outer = m.add_component("lib", None);
        let inner = m.add_component("stage", Some(outer));
        let input = m.add_port(outer, "in", Some(int(1000)));
        let a = m.add_port(inner, "a", Some(int(250)));
        let output = m.add_port(outer, "out", Some(int(1000)));
        let env = m.add_component("env", None);
        let e_in = m.add_port(env, "e", Some(int(1000)));
        let e_out = m.add_port(env, "snk", None);
        m.connect(e_in, input, Rational::ZERO, Rational::ZERO, Rational::ONE);
        m.connect(input, a, ms(1), Rational::ZERO, Rational::ONE);
        m.connect(a, output, ms(1), Rational::ZERO, Rational::new(2, 1));
        m.connect(output, e_out, Rational::ZERO, Rational::ZERO, Rational::ONE);
        let full_rates = m.check_consistency().unwrap();

        let lib = m.component_by_name("lib").unwrap();
        let hidden = hide_component(&m, lib).unwrap();
        let lib_h = hidden.component_by_name("lib").unwrap();
        let in_h = hidden.port_by_name(lib_h, "in").unwrap();
        let out_h = hidden.port_by_name(lib_h, "out").unwrap();
        // r(in) ≤ 250 (from a), r(out) ≤ 500 (γ = 2 from a's bound beats the
        // port's own 1000).
        assert_eq!(hidden.ports[in_h].max_rate, Some(int(250)));
        assert_eq!(hidden.ports[out_h].max_rate, Some(int(500)));
        // The observable rates are exactly those of the white-box model.
        let hidden_rates = hidden.check_consistency().unwrap();
        assert_eq!(hidden_rates.rates[in_h], full_rates.rates[input]);
        assert_eq!(hidden_rates.rates[out_h], full_rates.rates[output]);
    }

    #[test]
    fn hiding_preserves_required_rate_conflicts() {
        // The hidden internal port requires 400 Hz while the interface port
        // requires 200 Hz in the same rate group: the white-box model is
        // inconsistent, and hiding must report the conflict rather than
        // silently discard the hidden requirement and "fix" the model.
        let mut m = CtaModel::new();
        let outer = m.add_component("lib", None);
        let inner = m.add_component("stage", Some(outer));
        let input = m.add_required_rate_port(outer, "in", int(200));
        let a = m.add_required_rate_port(inner, "a", int(400));
        let env = m.add_component("env", None);
        let e = m.add_port(env, "e", None);
        m.connect(e, input, Rational::ZERO, Rational::ZERO, Rational::ONE);
        m.connect(input, a, ms(1), Rational::ZERO, Rational::ONE);
        assert!(matches!(
            m.check_consistency(),
            Err(ConsistencyError::RequiredRateConflict { .. })
        ));
        let lib = m.component_by_name("lib").unwrap();
        assert!(
            matches!(
                hide_component(&m, lib),
                Err(ConsistencyError::RequiredRateConflict { .. })
            ),
            "hiding must not mask a required-rate conflict"
        );

        // Two *hidden* ports with incompatible required rates conflict too.
        let mut m2 = CtaModel::new();
        let outer = m2.add_component("lib", None);
        let inner = m2.add_component("stage", Some(outer));
        let input = m2.add_port(outer, "in", None);
        let a = m2.add_required_rate_port(inner, "a", int(400));
        let b = m2.add_required_rate_port(inner, "b", int(500));
        let env = m2.add_component("env", None);
        let e = m2.add_port(env, "e", None);
        m2.connect(e, input, Rational::ZERO, Rational::ZERO, Rational::ONE);
        m2.connect(input, a, ms(1), Rational::ZERO, Rational::ONE);
        m2.connect(a, b, ms(1), Rational::ZERO, Rational::ONE);
        let lib = m2.component_by_name("lib").unwrap();
        assert!(matches!(
            hide_component(&m2, lib),
            Err(ConsistencyError::RequiredRateConflict { .. })
        ));
    }

    #[test]
    fn hiding_leaves_unrelated_components_bounds_untouched() {
        // Ports outside the hidden subtree keep their declared max rates
        // verbatim, even when they share a rate group with hidden ports —
        // the pushed constraints land on the subtree's interface ports only.
        let mut m = CtaModel::new();
        let outer = m.add_component("lib", None);
        let inner = m.add_component("stage", Some(outer));
        let input = m.add_port(outer, "in", Some(int(1000)));
        let a = m.add_port(inner, "a", Some(int(250)));
        let env = m.add_component("env", None);
        let e = m.add_port(env, "e", Some(int(1000)));
        m.connect(e, input, Rational::ZERO, Rational::ZERO, Rational::ONE);
        m.connect(input, a, ms(1), Rational::ZERO, Rational::ONE);
        let lib = m.component_by_name("lib").unwrap();
        let hidden = hide_component(&m, lib).unwrap();
        let env_h = hidden.component_by_name("env").unwrap();
        let e_h = hidden.port_by_name(env_h, "e").unwrap();
        assert_eq!(hidden.ports[e_h].max_rate, Some(int(1000)));
        let lib_h = hidden.component_by_name("lib").unwrap();
        let in_h = hidden.port_by_name(lib_h, "in").unwrap();
        assert_eq!(hidden.ports[in_h].max_rate, Some(int(250)));
    }

    #[test]
    fn hiding_detects_internal_positive_cycle() {
        let max = Some(int(1000));
        let mut m = CtaModel::new();
        let outer = m.add_component("lib", None);
        let a = m.add_port(outer, "a", max);
        let b = m.add_port(outer, "b", max);
        let iface = m.add_port(outer, "io", max);
        let env = m.add_component("env", None);
        let e = m.add_port(env, "e", max);
        m.connect(e, iface, Rational::ZERO, Rational::ZERO, Rational::ONE);
        m.connect(iface, a, Rational::ZERO, Rational::ZERO, Rational::ONE);
        m.connect(a, b, ms(1), Rational::ZERO, Rational::ONE);
        m.connect(b, a, ms(1), Rational::ZERO, Rational::ONE);
        let lib = m.component_by_name("lib").unwrap();
        assert!(hide_component(&m, lib).is_err());
    }

    #[test]
    fn merge_then_hide_is_black_box_composition() {
        // Build a library model, hide its internals, merge it into an
        // application model and connect: the black-box composition remains
        // analysable.
        let (library, _, _) = module_with_internals();
        let lib_id = library.component_by_name("lib").unwrap();
        let black_box = hide_component(&library, lib_id).unwrap();

        let mut app = CtaModel::new();
        let src = app.add_component("src", None);
        let s = app.add_required_rate_port(src, "out", int(500));
        let off = app.merge(&black_box);
        let lib_new = app.component_by_name("lib").unwrap();
        let lib_in = app.port_by_name(lib_new, "in").unwrap();
        app.connect(s, lib_in, Rational::ZERO, Rational::ZERO, Rational::ONE);
        let _ = off;
        let r = app.check_consistency().unwrap();
        assert_eq!(r.rates[lib_in], int(500));
    }
}
