//! Composition and hiding of CTA components.
//!
//! Two properties make the CTA model suitable for incremental, library-based
//! design (paper Sections I and V-C):
//!
//! * **associative composition** — merging models is order-independent
//!   ([`CtaModel::merge`] plus connecting ports), and
//! * **hiding** — the internal ports of a component can be removed while
//!   preserving all constraints between its remaining (interface) ports, so a
//!   library can ship a *black-box* component described only by maximum rates
//!   and delays, exactly like the `Video` and `Audio` modules of the PAL case
//!   study.
//!
//! Hiding is implemented by replacing paths through hidden ports with direct
//! connections whose delay is the longest internal path delay and whose `γ`
//! is the product of the path's ratios; the maximum rates of hidden ports are
//! pushed onto the interface ports they constrain. All path delays are exact
//! rationals, so the summarised interface is bit-identical to the delays it
//! replaces.

use crate::component::{ComponentId, Connection, CtaModel};
use crate::consistency::ConsistencyError;
use oil_dataflow::index::{IndexVec, PortId};
use oil_dataflow::Rational;
use std::collections::BTreeSet;

/// Hide all ports of `component` (and of its nested children) that are only
/// connected to ports inside the same subtree, replacing them by direct
/// connections between the remaining interface ports. Returns the new model
/// (the original is left untouched) or an error if the hidden part contains a
/// positive-delay cycle (in which case no finite interface exists).
///
/// The interface ports of the component keep their ids' relative order but
/// ids are re-assigned; use port names to locate them afterwards.
pub fn hide_component(
    model: &CtaModel,
    component: ComponentId,
) -> Result<CtaModel, ConsistencyError> {
    // The subtree of components being considered "inside".
    let mut inside_components = BTreeSet::new();
    let mut stack = vec![component];
    while let Some(c) = stack.pop() {
        if inside_components.insert(c) {
            stack.extend(model.children(c));
        }
    }

    // Ports to hide: ports of inside components all of whose connections stay
    // inside the subtree. Ports with at least one connection to the outside
    // are interface ports and survive.
    let port_is_inside = |p: PortId| inside_components.contains(&model.ports[p].component);
    let mut hide: BTreeSet<PortId> = BTreeSet::new();
    for pid in model.ports.indices() {
        if !port_is_inside(pid) {
            continue;
        }
        let crosses = model.connections.iter().any(|c| {
            (c.from == pid && !port_is_inside(c.to)) || (c.to == pid && !port_is_inside(c.from))
        });
        if !crosses {
            hide.insert(pid);
        }
    }

    // Longest-path closure over hidden ports: for every pair of kept ports
    // connected through hidden ports, add a direct connection. We run a
    // Bellman-Ford-style relaxation per kept source port restricted to
    // connections whose interior endpoints are hidden.
    let n = model.ports.len();
    let kept: Vec<PortId> = model
        .ports
        .indices()
        .filter(|p| !hide.contains(p))
        .collect();

    // Evaluate rate-dependent delays at each port's maximum rate; this is the
    // conservative (largest-delay) interpretation for a rate-only interface.
    // Unbounded max rates contribute no rate-dependent delay.
    let delay_of = |c: &Connection| -> Rational {
        match model.ports[c.from].max_rate {
            Some(r) if r.is_positive() => c.epsilon + c.phi / r,
            _ => c.epsilon,
        }
    };

    let mut result = CtaModel::new();
    // Recreate components (all of them; empty ones are harmless) and kept ports.
    for comp in &model.components {
        result.add_component(comp.name.clone(), comp.parent);
    }
    let mut new_id: IndexVec<PortId, Option<PortId>> = IndexVec::from_elem(None, n);
    for &p in &kept {
        let port = &model.ports[p];
        let np = result.add_port(port.component, port.name.clone(), port.max_rate);
        result.ports[np].required_rate = port.required_rate;
        new_id[p] = Some(np);
    }
    let renamed = |p: PortId| new_id[p].expect("kept ports have new ids");

    // Copy connections between kept ports unchanged.
    for c in &model.connections {
        if !hide.contains(&c.from) && !hide.contains(&c.to) {
            let id = result.connect(renamed(c.from), renamed(c.to), c.epsilon, c.phi, c.gamma);
            result.connections[id].buffer = c.buffer.clone();
            result.connections[id].couples_rates = c.couples_rates;
        }
    }

    // For each kept port with an edge into the hidden region, compute longest
    // delays (and gamma products) to every other kept port through hidden
    // ports only.
    for &start in &kept {
        // dist over hidden ports (and final kept targets); `None` is -inf.
        let mut dist: IndexVec<PortId, Option<Rational>> = IndexVec::from_elem(None, n);
        let mut gamma: IndexVec<PortId, Rational> = IndexVec::from_elem(Rational::ONE, n);
        dist[start] = Some(Rational::ZERO);
        for _ in 0..hide.len() + 1 {
            let mut changed = false;
            for c in &model.connections {
                // Only traverse connections that enter or stay inside the
                // hidden region (the last hop may land on a kept port).
                let interior = hide.contains(&c.to) || hide.contains(&c.from);
                if !interior {
                    continue;
                }
                if c.from != start && !hide.contains(&c.from) {
                    continue;
                }
                let Some(base) = dist[c.from] else { continue };
                let nd = base + delay_of(c);
                if dist[c.to].is_none_or(|d| nd > d) {
                    dist[c.to] = Some(nd);
                    gamma[c.to] = gamma[c.from] * c.gamma;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // A hidden port still improving after |hide| rounds means a positive
        // cycle inside the hidden region.
        for c in &model.connections {
            if hide.contains(&c.from) && hide.contains(&c.to) {
                let Some(base) = dist[c.from] else { continue };
                let nd = base + delay_of(c);
                if dist[c.to].is_none_or(|d| nd > d) {
                    let excess = match dist[c.to] {
                        Some(d) => nd - d,
                        None => nd,
                    };
                    return Err(ConsistencyError::PositiveCycle {
                        ports: vec![c.from, c.to],
                        excess,
                        connections: Vec::new(),
                    });
                }
            }
        }
        for &end in &kept {
            if end == start {
                continue;
            }
            let Some(path_delay) = dist[end] else {
                continue;
            };
            // Only add the summarised connection if the path actually passed
            // through hidden ports (direct kept-to-kept edges were copied
            // already).
            let direct = model
                .connections
                .iter()
                .any(|c| c.from == start && c.to == end && delay_of(c) >= path_delay);
            if !direct {
                result.connect(
                    renamed(start),
                    renamed(end),
                    path_delay,
                    Rational::ZERO,
                    gamma[end],
                );
            }
        }
    }

    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oil_dataflow::Rational;

    fn int(n: i128) -> Rational {
        Rational::from_int(n)
    }

    fn ms(n: i128) -> Rational {
        Rational::new(n, 1000)
    }

    /// A module component with two internal processing ports between its
    /// interface ports.
    fn module_with_internals() -> (CtaModel, PortId, PortId) {
        let max = Some(int(1000));
        let mut m = CtaModel::new();
        let outer = m.add_component("lib", None);
        let inner = m.add_component("loop0", Some(outer));
        let input = m.add_port(outer, "in", max);
        let a = m.add_port(inner, "a", max);
        let b = m.add_port(inner, "b", max);
        let output = m.add_port(outer, "out", max);
        // External world connects to `in` and `out`.
        let env = m.add_component("env", None);
        let env_out = m.add_port(env, "src", max);
        let env_in = m.add_port(env, "snk", max);
        m.connect(
            env_out,
            input,
            Rational::ZERO,
            Rational::ZERO,
            Rational::ONE,
        );
        m.connect(input, a, ms(1), Rational::ZERO, Rational::ONE);
        m.connect(a, b, ms(2), Rational::ZERO, Rational::ONE);
        m.connect(b, output, ms(3), Rational::ZERO, Rational::new(1, 2));
        m.connect(
            output,
            env_in,
            Rational::ZERO,
            Rational::ZERO,
            Rational::ONE,
        );
        (m, input, output)
    }

    #[test]
    fn hiding_preserves_end_to_end_delay_and_gamma() {
        let (m, _input, _output) = module_with_internals();
        let lib = m.component_by_name("lib").unwrap();
        let hidden = hide_component(&m, lib).unwrap();
        // The internal ports a and b are gone.
        assert_eq!(hidden.port_count(), m.port_count() - 2);
        // There is a direct in -> out connection with exactly the summed
        // delay of 6 ms and gamma 1/2.
        let lib_new = hidden.component_by_name("lib").unwrap();
        let in_new = hidden.port_by_name(lib_new, "in").unwrap();
        let out_new = hidden.port_by_name(lib_new, "out").unwrap();
        let c = hidden
            .connections
            .iter()
            .find(|c| c.from == in_new && c.to == out_new)
            .expect("summarised connection exists");
        assert_eq!(c.epsilon, ms(6));
        assert_eq!(c.gamma, Rational::new(1, 2));
    }

    #[test]
    fn hiding_keeps_interface_connections_to_environment() {
        let (m, _, _) = module_with_internals();
        let lib = m.component_by_name("lib").unwrap();
        let hidden = hide_component(&m, lib).unwrap();
        let env = hidden.component_by_name("env").unwrap();
        let env_out = hidden.port_by_name(env, "src").unwrap();
        let env_in = hidden.port_by_name(env, "snk").unwrap();
        assert!(hidden.connections.iter().any(|c| c.from == env_out));
        assert!(hidden.connections.iter().any(|c| c.to == env_in));
        // The composition still passes the consistency check.
        assert!(hidden.check_consistency().is_ok());
    }

    #[test]
    fn hiding_composed_model_matches_unhidden_latency_exactly() {
        let (m, _, _) = module_with_internals();
        let full = m.check_consistency().unwrap();
        let env = m.component_by_name("env").unwrap();
        let s = m.port_by_name(env, "src").unwrap();
        let k = m.port_by_name(env, "snk").unwrap();
        let full_latency = crate::latency::check_latency_path(&m, &full, s, k)
            .unwrap()
            .latency;

        let lib = m.component_by_name("lib").unwrap();
        let hidden = hide_component(&m, lib).unwrap();
        let res = hidden.check_consistency().unwrap();
        let env_h = hidden.component_by_name("env").unwrap();
        let sh = hidden.port_by_name(env_h, "src").unwrap();
        let kh = hidden.port_by_name(env_h, "snk").unwrap();
        let hidden_latency = crate::latency::check_latency_path(&hidden, &res, sh, kh)
            .unwrap()
            .latency;
        // Exact equality: hiding preserves path delays bit for bit.
        assert_eq!(full_latency, hidden_latency);
    }

    #[test]
    fn hiding_detects_internal_positive_cycle() {
        let max = Some(int(1000));
        let mut m = CtaModel::new();
        let outer = m.add_component("lib", None);
        let a = m.add_port(outer, "a", max);
        let b = m.add_port(outer, "b", max);
        let iface = m.add_port(outer, "io", max);
        let env = m.add_component("env", None);
        let e = m.add_port(env, "e", max);
        m.connect(e, iface, Rational::ZERO, Rational::ZERO, Rational::ONE);
        m.connect(iface, a, Rational::ZERO, Rational::ZERO, Rational::ONE);
        m.connect(a, b, ms(1), Rational::ZERO, Rational::ONE);
        m.connect(b, a, ms(1), Rational::ZERO, Rational::ONE);
        let lib = m.component_by_name("lib").unwrap();
        assert!(hide_component(&m, lib).is_err());
    }

    #[test]
    fn merge_then_hide_is_black_box_composition() {
        // Build a library model, hide its internals, merge it into an
        // application model and connect: the black-box composition remains
        // analysable.
        let (library, _, _) = module_with_internals();
        let lib_id = library.component_by_name("lib").unwrap();
        let black_box = hide_component(&library, lib_id).unwrap();

        let mut app = CtaModel::new();
        let src = app.add_component("src", None);
        let s = app.add_required_rate_port(src, "out", int(500));
        let off = app.merge(&black_box);
        let lib_new = app.component_by_name("lib").unwrap();
        let lib_in = app.port_by_name(lib_new, "in").unwrap();
        app.connect(s, lib_in, Rational::ZERO, Rational::ZERO, Rational::ONE);
        let _ = off;
        let r = app.check_consistency().unwrap();
        assert_eq!(r.rates[lib_in], int(500));
    }
}
