//! Latency constraints between sources and sinks.
//!
//! OIL expresses end-to-end latency requirements with
//! `start x n ms after y;` / `start x n ms before y;` between sources and
//! sinks (paper Section IV-B). In the CTA model each constraint becomes a
//! single connection between the two corresponding components whose delay is
//! (the negation of) the constraint amount, so the ordinary consistency check
//! verifies it (Section V-C, Fig. 10). This module adds the constraint
//! connections and reports the actually achievable end-to-end latencies —
//! exactly, as rationals; [`LatencyReport::seconds`] converts at the API
//! boundary.

use crate::component::CtaModel;
use crate::consistency::ConsistencyResult;
use oil_dataflow::index::{IndexVec, PortId};
use oil_dataflow::Rational;
use serde::{Deserialize, Serialize};

/// A report about the latency between two ports of a consistent model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyReport {
    /// The upstream (source-side) port.
    pub from: PortId,
    /// The downstream (sink-side) port.
    pub to: PortId,
    /// Minimum feasible start-time difference `θ(to) − θ(from)` in seconds as
    /// implied by the model's delay constraints (the end-to-end latency along
    /// the critical path). Exact.
    pub latency: Rational,
}

impl LatencyReport {
    /// The latency in seconds as `f64` — conversion at the API boundary.
    pub fn seconds(&self) -> f64 {
        self.latency.to_f64()
    }
}

/// Add a `start subject .. before reference` constraint: the `subject`
/// (typically the sink) must start within `bound_seconds` after the
/// `reference` (typically the source) started. Modelled as a connection from
/// the subject back to the reference with constant delay `-bound_seconds`, so
/// any forward path longer than the bound creates a positive cycle.
pub fn add_before_constraint(
    model: &mut CtaModel,
    subject: PortId,
    reference: PortId,
    bound_seconds: Rational,
) {
    model.connect_constraint(subject, reference, -bound_seconds);
}

/// Add a `start subject .. after reference` constraint: the subject must
/// start at least `bound_seconds` after the reference. Modelled as a forward
/// connection with constant delay `bound_seconds`.
pub fn add_after_constraint(
    model: &mut CtaModel,
    subject: PortId,
    reference: PortId,
    bound_seconds: Rational,
) {
    model.connect_constraint(reference, subject, bound_seconds);
}

/// Compute the critical-path latency from `from` to `to` implied by a
/// consistent model: the longest total delay over all connection paths,
/// evaluated exactly at the rates of `result`. Returns `None` if `to` is not
/// reachable from `from`.
pub fn check_latency_path(
    model: &CtaModel,
    result: &ConsistencyResult,
    from: PortId,
    to: PortId,
) -> Option<LatencyReport> {
    let n = model.ports.len();
    // `None` plays the role of -infinity: unreachable so far.
    let mut dist: IndexVec<PortId, Option<Rational>> = IndexVec::from_elem(None, n);
    dist[from] = Some(Rational::ZERO);
    // Longest path by Bellman-Ford; the model is consistent, so there are no
    // positive cycles and the longest path is well defined.
    for _ in 0..n {
        let mut changed = false;
        for c in &model.connections {
            let Some(base) = dist[c.from] else { continue };
            let w = c.delay_at_rate(result.rates[c.from]);
            let candidate = base + w;
            if dist[c.to].is_none_or(|d| candidate > d) {
                dist[c.to] = Some(candidate);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist[to].map(|latency| LatencyReport { from, to, latency })
}

/// A seam-latency bound violation: the worst-case source-to-sink latency
/// across a mode-switch seam exceeds the program's latency constraint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeamLatencyExceeded {
    /// The actual critical-path latency across the seam, exact.
    pub latency: Rational,
    /// The bound it violates.
    pub bound: Rational,
}

/// Bound the worst-case source-to-sink latency across a mode-switch seam.
///
/// A quasi-static mode switch serializes three phases: drain the outgoing
/// mode's in-flight period, run the transition program, fill the incoming
/// mode's first period. Each phase is one `(name, work)` stage — `work` is the
/// exact total execution time of its firings. The stages become a chain of
/// CTA components (each stage's output is delayed by its work relative to its
/// input), the chain is checked by the ordinary consistency machinery, and
/// the end-to-end latency is the critical path from the first stage's input
/// to the last stage's output. When `bound` is given, it is added as a
/// `before` constraint, so a violation surfaces as an inconsistent model —
/// exact rational arithmetic, no tolerance — and is reported with the actual
/// latency. Empty `stages` are a caller error.
pub fn check_seam_latency(
    stages: &[(&str, Rational)],
    bound: Option<Rational>,
) -> Result<LatencyReport, SeamLatencyExceeded> {
    assert!(!stages.is_empty(), "seam latency needs at least one stage");
    let mut m = CtaModel::new();
    let mut first: Option<PortId> = None;
    let mut prev: Option<PortId> = None;
    for (name, work) in stages {
        let comp = m.add_component(*name, None);
        // Anchor the chain at 1 Hz: the seam is a one-shot event sequence,
        // so the rate is arbitrary and only the constant delays matter.
        let input = m.add_required_rate_port(comp, "in", Rational::ONE);
        let output = m.add_port(comp, "out", None);
        m.connect(input, output, *work, Rational::ZERO, Rational::ONE);
        if let Some(p) = prev {
            m.connect(p, input, Rational::ZERO, Rational::ZERO, Rational::ONE);
        }
        first.get_or_insert(input);
        prev = Some(output);
    }
    let (first, last) = (first.unwrap(), prev.unwrap());
    let result = m
        .check_consistency()
        .expect("an acyclic stage chain is always consistent");
    let report = check_latency_path(&m, &result, first, last)
        .expect("the last stage is reachable from the first by construction");
    if let Some(bound) = bound {
        add_before_constraint(&mut m, last, first, bound);
        if m.check_consistency().is_err() {
            return Err(SeamLatencyExceeded {
                latency: report.latency,
                bound,
            });
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(n: i128) -> Rational {
        Rational::from_int(n)
    }

    fn ms(n: i128) -> Rational {
        Rational::new(n, 1000)
    }

    /// src --(d1)--> mid --(d2)--> snk, all at 1 kHz.
    fn pipeline(d1: Rational, d2: Rational) -> (CtaModel, PortId, PortId) {
        let mut m = CtaModel::new();
        let src = m.add_component("src", None);
        let mid = m.add_component("mid", None);
        let snk = m.add_component("snk", None);
        let s = m.add_required_rate_port(src, "out", int(1000));
        let a = m.add_port(mid, "in", None);
        let b = m.add_port(mid, "out", None);
        let k = m.add_required_rate_port(snk, "in", int(1000));
        m.connect(s, a, d1, Rational::ZERO, Rational::ONE);
        m.connect(a, b, Rational::ZERO, Rational::ZERO, Rational::ONE);
        m.connect(b, k, d2, Rational::ZERO, Rational::ONE);
        (m, s, k)
    }

    #[test]
    fn latency_path_is_exactly_the_sum_of_delays() {
        let (m, s, k) = pipeline(ms(2), ms(3));
        let r = m.check_consistency().unwrap();
        let report = check_latency_path(&m, &r, s, k).unwrap();
        assert_eq!(report.latency, ms(5));
        assert_eq!(report.seconds(), 0.005);
    }

    #[test]
    fn latency_takes_longest_path() {
        let (mut m, s, k) = pipeline(ms(2), ms(3));
        // Add a faster parallel path; the report must still use the slow one.
        m.connect(s, k, ms(1), Rational::ZERO, Rational::ONE);
        let r = m.check_consistency().unwrap();
        let report = check_latency_path(&m, &r, s, k).unwrap();
        assert_eq!(report.latency, ms(5));
    }

    #[test]
    fn before_constraint_satisfied_and_violated() {
        let (mut ok, s, k) = pipeline(ms(2), ms(1));
        add_before_constraint(&mut ok, k, s, ms(5));
        assert!(ok.check_consistency().is_ok());

        let (mut bad, s, k) = pipeline(ms(4), ms(3));
        add_before_constraint(&mut bad, k, s, ms(5));
        assert!(bad.check_consistency().is_err());

        // A bound exactly equal to the path delay is feasible: exact
        // arithmetic accepts the boundary case without any tolerance.
        let (mut tight, s, k) = pipeline(ms(2), ms(3));
        add_before_constraint(&mut tight, k, s, ms(5));
        assert!(tight.check_consistency().is_ok());
    }

    #[test]
    fn after_constraint_shifts_offsets() {
        let (mut m, s, k) = pipeline(ms(1), ms(1));
        add_after_constraint(&mut m, k, s, ms(10));
        let r = m.check_consistency().unwrap();
        assert!(r.offsets[k] - r.offsets[s] >= ms(10));
    }

    #[test]
    fn zero_skew_pair_forces_equal_start() {
        // The PAL decoder's `start screen 0 ms after speakers` plus
        // `start screen 0 ms before speakers` force both sinks to start at
        // exactly the same time (a cycle with zero total delay).
        let mut m = CtaModel::new();
        let a = m.add_component("screen", None);
        let b = m.add_component("speakers", None);
        let pa = m.add_required_rate_port(a, "in", int(4_000_000));
        let pb = m.add_required_rate_port(b, "in", int(32_000));
        add_after_constraint(&mut m, pa, pb, Rational::ZERO);
        add_before_constraint(&mut m, pa, pb, Rational::ZERO);
        let r = m.check_consistency().unwrap();
        assert_eq!(r.offsets[pa], r.offsets[pb]);
    }

    #[test]
    fn seam_latency_sums_the_stage_chain() {
        let stages = [("drain", ms(2)), ("transition", ms(1)), ("fill", ms(3))];
        let report = check_seam_latency(&stages, None).unwrap();
        assert_eq!(report.latency, ms(6));
    }

    #[test]
    fn seam_latency_bound_is_exact() {
        let stages = [("drain", ms(2)), ("fill", ms(3))];
        // A bound exactly equal to the seam work is feasible.
        assert!(check_seam_latency(&stages, Some(ms(5))).is_ok());
        // One millisecond tighter is a violation reporting the true latency.
        let err = check_seam_latency(&stages, Some(ms(4))).unwrap_err();
        assert_eq!(err.latency, ms(5));
        assert_eq!(err.bound, ms(4));
    }

    #[test]
    fn unreachable_ports_return_none() {
        let (m, s, k) = pipeline(ms(1), ms(1));
        let r = m.check_consistency().unwrap();
        // Port s is not reachable from the sink (no backward connections).
        assert!(check_latency_path(&m, &r, k, s).is_none());
    }
}
