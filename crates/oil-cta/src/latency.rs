//! Latency constraints between sources and sinks.
//!
//! OIL expresses end-to-end latency requirements with
//! `start x n ms after y;` / `start x n ms before y;` between sources and
//! sinks (paper Section IV-B). In the CTA model each constraint becomes a
//! single connection between the two corresponding components whose delay is
//! (the negation of) the constraint amount, so the ordinary consistency check
//! verifies it (Section V-C, Fig. 10). This module adds the constraint
//! connections and reports the actually achievable end-to-end latencies.

use crate::component::{CtaModel, PortId};
use crate::consistency::ConsistencyResult;
use serde::{Deserialize, Serialize};

/// A report about the latency between two ports of a consistent model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyReport {
    /// The upstream (source-side) port.
    pub from: PortId,
    /// The downstream (sink-side) port.
    pub to: PortId,
    /// Minimum feasible start-time difference `θ(to) − θ(from)` in seconds as
    /// implied by the model's delay constraints (the end-to-end latency along
    /// the critical path).
    pub latency: f64,
}

/// Add a `start subject .. before reference` constraint: the `subject`
/// (typically the sink) must start within `bound_seconds` after the
/// `reference` (typically the source) started. Modelled as a connection from
/// the subject back to the reference with constant delay `-bound_seconds`, so
/// any forward path longer than the bound creates a positive cycle.
pub fn add_before_constraint(
    model: &mut CtaModel,
    subject: PortId,
    reference: PortId,
    bound_seconds: f64,
) {
    model.connect_constraint(subject, reference, -bound_seconds);
}

/// Add a `start subject .. after reference` constraint: the subject must
/// start at least `bound_seconds` after the reference. Modelled as a forward
/// connection with constant delay `bound_seconds`.
pub fn add_after_constraint(
    model: &mut CtaModel,
    subject: PortId,
    reference: PortId,
    bound_seconds: f64,
) {
    model.connect_constraint(reference, subject, bound_seconds);
}

/// Compute the critical-path latency from `from` to `to` implied by a
/// consistent model: the longest total delay over all connection paths,
/// evaluated at the rates of `result`. Returns `None` if `to` is not
/// reachable from `from`.
pub fn check_latency_path(
    model: &CtaModel,
    result: &ConsistencyResult,
    from: PortId,
    to: PortId,
) -> Option<LatencyReport> {
    let n = model.ports.len();
    let mut dist = vec![f64::NEG_INFINITY; n];
    dist[from] = 0.0;
    // Longest path by Bellman-Ford; the model is consistent, so there are no
    // positive cycles and the longest path is well defined.
    for _ in 0..n {
        let mut changed = false;
        for c in &model.connections {
            if dist[c.from] == f64::NEG_INFINITY {
                continue;
            }
            let w = c.delay_at_rate(result.rates[c.from].max(f64::MIN_POSITIVE));
            if dist[c.from] + w > dist[c.to] + 1e-15 {
                dist[c.to] = dist[c.from] + w;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    if dist[to] == f64::NEG_INFINITY {
        None
    } else {
        Some(LatencyReport { from, to, latency: dist[to] })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oil_dataflow::Rational;

    /// src --(d1)--> mid --(d2)--> snk, all at 1 kHz.
    fn pipeline(d1: f64, d2: f64) -> (CtaModel, PortId, PortId) {
        let mut m = CtaModel::new();
        let src = m.add_component("src", None);
        let mid = m.add_component("mid", None);
        let snk = m.add_component("snk", None);
        let s = m.add_required_rate_port(src, "out", 1000.0);
        let a = m.add_port(mid, "in", f64::INFINITY);
        let b = m.add_port(mid, "out", f64::INFINITY);
        let k = m.add_required_rate_port(snk, "in", 1000.0);
        m.connect(s, a, d1, 0.0, Rational::ONE);
        m.connect(a, b, 0.0, 0.0, Rational::ONE);
        m.connect(b, k, d2, 0.0, Rational::ONE);
        (m, s, k)
    }

    #[test]
    fn latency_path_is_sum_of_delays() {
        let (m, s, k) = pipeline(2e-3, 3e-3);
        let r = m.check_consistency().unwrap();
        let report = check_latency_path(&m, &r, s, k).unwrap();
        assert!((report.latency - 5e-3).abs() < 1e-12);
    }

    #[test]
    fn latency_takes_longest_path() {
        let (mut m, s, k) = pipeline(2e-3, 3e-3);
        // Add a faster parallel path; the report must still use the slow one.
        m.connect(s, k, 1e-3, 0.0, Rational::ONE);
        let r = m.check_consistency().unwrap();
        let report = check_latency_path(&m, &r, s, k).unwrap();
        assert!((report.latency - 5e-3).abs() < 1e-12);
    }

    #[test]
    fn before_constraint_satisfied_and_violated() {
        let (mut ok, s, k) = pipeline(2e-3, 1e-3);
        add_before_constraint(&mut ok, k, s, 5e-3);
        assert!(ok.check_consistency().is_ok());

        let (mut bad, s, k) = pipeline(4e-3, 3e-3);
        add_before_constraint(&mut bad, k, s, 5e-3);
        assert!(bad.check_consistency().is_err());
    }

    #[test]
    fn after_constraint_shifts_offsets() {
        let (mut m, s, k) = pipeline(1e-3, 1e-3);
        add_after_constraint(&mut m, k, s, 10e-3);
        let r = m.check_consistency().unwrap();
        assert!(r.offsets[k] - r.offsets[s] >= 10e-3 - 1e-12);
    }

    #[test]
    fn zero_skew_pair_forces_equal_start() {
        // The PAL decoder's `start screen 0 ms after speakers` plus
        // `start screen 0 ms before speakers` force both sinks to start at
        // the same time (a cycle with zero total delay).
        let mut m = CtaModel::new();
        let a = m.add_component("screen", None);
        let b = m.add_component("speakers", None);
        let pa = m.add_required_rate_port(a, "in", 4e6);
        let pb = m.add_required_rate_port(b, "in", 32e3);
        add_after_constraint(&mut m, pa, pb, 0.0);
        add_before_constraint(&mut m, pa, pb, 0.0);
        let r = m.check_consistency().unwrap();
        assert!((r.offsets[pa] - r.offsets[pb]).abs() < 1e-12);
    }

    #[test]
    fn unreachable_ports_return_none() {
        let (m, s, _) = pipeline(1e-3, 1e-3);
        let r = m.check_consistency().unwrap();
        // Port s is not reachable from the sink (no backward connections).
        assert!(check_latency_path(&m, &r, 3, s).is_none());
    }
}
