//! The Compositional Temporal Analysis (CTA) model.
//!
//! The CTA model (Hausmans et al., EMSOFT 2012) is the temporal analysis
//! model the OIL compiler derives from every program (paper Section V). A
//! model is a graph of **components** with **ports** and directed
//! **connections**; data is transferred periodically over connections, each
//! of which can scale the transfer rate (ratio `γ`) and delay the stream by a
//! constant amount (`ε`) plus a rate-dependent amount (`φ / r`).
//!
//! The distinguishing property — and the reason the paper derives CTA models
//! instead of plain dataflow graphs — is that all analyses are **polynomial
//! time**:
//!
//! * [`consistency`] — rate propagation, feasibility of the delay constraints
//!   (no positive-delay cycle) and the maximal achievable rates;
//! * [`buffersizing`] — sufficient buffer capacities for a required rate;
//! * [`latency`] — verification of `start .. before/after ..` latency
//!   constraints between sources and sinks;
//! * [`compose`] — composition of independently analysed components and
//!   *hiding* of internal ports, enabling black-box library components.
//!
//! Every algorithm works in **exact rational arithmetic**
//! ([`Rational`]) over **typed indices** ([`PortId`], [`ComponentId`],
//! [`ConnectionId`], [`GroupId`]): results are bit-exact, deterministic and
//! free of tolerance constants; `f64` only appears in the `*_hz` /
//! `*_seconds` accessors at the API boundary.
//!
//! # Example: a producer/consumer pair with a bounded buffer
//!
//! ```
//! use oil_cta::{CtaModel, Rational};
//!
//! let mut m = CtaModel::new();
//! let prod = m.add_component("producer", None);
//! let cons = m.add_component("consumer", None);
//! // at most 1 kHz / 1.5 kHz:
//! let p_out = m.add_port(prod, "out", Some(Rational::from_int(1000)));
//! let c_in = m.add_port(cons, "in", Some(Rational::from_int(1500)));
//! // Data connection: one-to-one rate, one transfer of latency.
//! m.connect(p_out, c_in, Rational::ZERO, Rational::ONE, Rational::ONE);
//! // Space connection modelling a buffer of capacity 4 (delay -4 / r).
//! m.connect_buffer("b", c_in, p_out, Rational::ZERO, Rational::from_int(-4), Rational::ONE);
//! let result = m.check_consistency().expect("consistent");
//! // The pair settles at exactly the slower port's maximum rate.
//! assert_eq!(result.rates[p_out], Rational::from_int(1000));
//! assert_eq!(result.rate_hz(p_out), 1000.0); // lossless f64 boundary
//! ```

pub mod buffersizing;
pub mod component;
pub mod compose;
pub mod consistency;
pub mod latency;
pub mod periodic;

pub use buffersizing::{size_buffers, BufferSizingError, BufferSizingResult};
pub use component::{Component, ComponentId, Connection, ConnectionId, CtaModel, Port};
pub use compose::hide_component;
pub use consistency::{check_delays_at_rates, ConsistencyError, ConsistencyResult};
pub use latency::{check_latency_path, LatencyReport};
pub use oil_dataflow::index::{GroupId, PortId};
pub use oil_dataflow::Rational;
pub use periodic::PeriodicSequence;
