//! The Compositional Temporal Analysis (CTA) model.
//!
//! The CTA model (Hausmans et al., EMSOFT 2012) is the temporal analysis
//! model the OIL compiler derives from every program (paper Section V). A
//! model is a graph of **components** with **ports** and directed
//! **connections**; data is transferred periodically over connections, each
//! of which can scale the transfer rate (ratio `γ`) and delay the stream by a
//! constant amount (`ε`) plus a rate-dependent amount (`φ / r`).
//!
//! The distinguishing property — and the reason the paper derives CTA models
//! instead of plain dataflow graphs — is that all analyses are **polynomial
//! time**:
//!
//! * [`consistency`] — rate propagation, feasibility of the delay constraints
//!   (no positive-delay cycle) and the maximal achievable rates;
//! * [`buffersizing`] — sufficient buffer capacities for a required rate;
//! * [`latency`] — verification of `start .. before/after ..` latency
//!   constraints between sources and sinks;
//! * [`compose`] — composition of independently analysed components and
//!   *hiding* of internal ports, enabling black-box library components.
//!
//! # Example: a producer/consumer pair with a bounded buffer
//!
//! ```
//! use oil_cta::{CtaModel, Rational};
//!
//! let mut m = CtaModel::new();
//! let prod = m.add_component("producer", None);
//! let cons = m.add_component("consumer", None);
//! let p_out = m.add_port(prod, "out", 1000.0);   // at most 1 kHz
//! let c_in = m.add_port(cons, "in", 1500.0);     // at most 1.5 kHz
//! // Data connection: one-to-one rate, one transfer of latency.
//! m.connect(p_out, c_in, 0.0, 1.0, Rational::ONE);
//! // Space connection modelling a buffer of capacity 4 (delay -4 / r).
//! m.connect_buffer("b", c_in, p_out, 0.0, -4.0, Rational::ONE);
//! let result = m.check_consistency().expect("consistent");
//! assert!(result.rates[p_out] <= 1000.0 + 1e-9);
//! ```

pub mod buffersizing;
pub mod component;
pub mod compose;
pub mod consistency;
pub mod latency;
pub mod periodic;

pub use buffersizing::{size_buffers, BufferSizingError, BufferSizingResult};
pub use component::{Component, ComponentId, Connection, ConnectionId, CtaModel, Port, PortId};
pub use compose::hide_component;
pub use consistency::{ConsistencyError, ConsistencyResult};
pub use latency::{check_latency_path, LatencyReport};
pub use oil_dataflow::Rational;
pub use periodic::PeriodicSequence;
