//! Buffer sizing on CTA models.
//!
//! Buffer capacities appear in a CTA model as rate-dependent delays `-δ / r`
//! on the connections that return space to a producer (paper Section V-B1 and
//! V-C). A capacity is **sufficient** when, at the required rates, no cycle of
//! connections has positive total delay. This module computes sufficient
//! capacities with a polynomial-time algorithm:
//!
//! 1. determine the target rates: the maximal achievable rates with buffer
//!    capacities treated as unbounded (buffers must never be the reason to
//!    run slower than the data dependencies allow);
//! 2. while a positive cycle exists, pick the buffer connections on that
//!    cycle and enlarge their capacities just enough (rounded up to whole
//!    tokens) to cancel the cycle's excess delay;
//! 3. repeat. Each iteration removes at least one offending cycle and the
//!    number of iterations is bounded by the number of connections times the
//!    number of buffers, keeping the whole procedure polynomial.
//!
//! All of this runs in exact rational arithmetic: the excess delay of a cycle
//! and the token growth `⌈excess · r / n⌉` are exact, so the computed
//! capacities are deterministic and free of floating-point round-off.
//!
//! The result is a *sufficient* capacity per buffer (the paper claims
//! sufficiency, not minimality); the ablation benchmark compares it against
//! the exact minimum found by state-space search on the dataflow model.

use crate::component::{ConnectionId, CtaModel};
use crate::consistency::{check_delays_at_rates, ConsistencyError};
use oil_dataflow::index::{IndexVec, PortId};
use oil_dataflow::Rational;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The outcome of buffer sizing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferSizingResult {
    /// Sufficient capacity per buffer name, in tokens.
    pub capacities: BTreeMap<String, u64>,
    /// Number of enlargement iterations performed.
    pub iterations: usize,
    /// The per-port rates at which the capacities were validated (exact).
    pub rates: IndexVec<PortId, Rational>,
}

impl BufferSizingResult {
    /// Total capacity over all buffers (a proxy for memory footprint).
    pub fn total_tokens(&self) -> u64 {
        self.capacities.values().sum()
    }
}

/// Why buffer sizing failed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BufferSizingError {
    /// The model is inconsistent for a reason buffers cannot fix (rate
    /// conflict, max rate exceeded, or a positive cycle without any buffer
    /// connection on it).
    Unfixable(ConsistencyError),
    /// The iteration limit was reached before all cycles were resolved
    /// (indicates a modelling error such as a cycle whose buffer terms cannot
    /// grow).
    DidNotConverge {
        /// Capacities when the limit was hit.
        capacities: BTreeMap<String, u64>,
    },
}

impl std::fmt::Display for BufferSizingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BufferSizingError::Unfixable(e) => write!(f, "buffer sizing cannot fix: {e}"),
            BufferSizingError::DidNotConverge { .. } => {
                write!(
                    f,
                    "buffer sizing did not converge within the iteration limit"
                )
            }
        }
    }
}

impl std::error::Error for BufferSizingError {}

/// Compute sufficient buffer capacities for `model` at its (required or
/// maximal) rates. Capacities already present on buffer connections are
/// treated as lower bounds and only ever enlarged.
pub fn size_buffers(model: &CtaModel) -> Result<BufferSizingResult, BufferSizingError> {
    let mut working = model.clone();

    // Determine the target rates once. Buffers must not be the reason to run
    // slower than the data dependencies allow, so the target is the maximal
    // achievable rate of the model with *unbounded* buffers (groups pinned by
    // sources or sinks keep their required rates; this fails exactly when the
    // constraints are unattainable regardless of buffering).
    let base = working
        .maximal_rates_unbounded_buffers()
        .map_err(BufferSizingError::Unfixable)?;

    let max_iterations =
        (working.connections.len().max(1)) * (working.buffer_connections().len() + 2) * 8;
    let mut iterations = 0;
    loop {
        match check_delays_at_rates(&working, &base) {
            Ok(_) => break,
            Err(ConsistencyError::PositiveCycle {
                excess,
                connections,
                ..
            }) => {
                iterations += 1;
                if iterations > max_iterations {
                    return Err(BufferSizingError::DidNotConverge {
                        capacities: collect_capacities(&working),
                    });
                }
                // Buffer connections on the cycle can absorb the excess by
                // growing their capacity: enlarging δ by Δ reduces the cycle
                // weight by Δ / r(from).
                let on_cycle: Vec<ConnectionId> = connections
                    .iter()
                    .copied()
                    .filter(|&cid| working.connections[cid].buffer.is_some())
                    .collect();
                if on_cycle.is_empty() {
                    return Err(BufferSizingError::Unfixable(
                        ConsistencyError::PositiveCycle {
                            ports: Vec::new(),
                            excess,
                            connections,
                        },
                    ));
                }
                // Spread the growth over the cycle's buffers; rounding each
                // share up (exactly, via rational ceil) keeps the algorithm
                // monotone and terminating.
                let share = excess / Rational::from_int(on_cycle.len() as i128);
                for cid in on_cycle {
                    let rate = base[working.connections[cid].from];
                    let grow_tokens = (share * rate).ceil().max(1);
                    working.connections[cid].phi -= Rational::from_int(grow_tokens);
                }
            }
            Err(other) => return Err(BufferSizingError::Unfixable(other)),
        }
    }

    Ok(BufferSizingResult {
        capacities: collect_capacities(&working),
        iterations,
        rates: base,
    })
}

fn collect_capacities(model: &CtaModel) -> BTreeMap<String, u64> {
    let mut caps: BTreeMap<String, u64> = BTreeMap::new();
    for c in &model.connections {
        if let Some(name) = &c.buffer {
            let cap = (-c.phi).max(Rational::ZERO).ceil() as u64;
            let entry = caps.entry(name.clone()).or_insert(0);
            *entry = (*entry).max(cap);
        }
    }
    caps
}

/// Apply sized capacities back onto a model's buffer connections (sets
/// `phi = -δ` on every connection of each named buffer).
pub fn apply_capacities(model: &mut CtaModel, capacities: &BTreeMap<String, u64>) {
    for c in &mut model.connections {
        if let Some(name) = &c.buffer {
            if let Some(&cap) = capacities.get(name) {
                c.phi = -Rational::from_int(cap as i128);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oil_dataflow::index::Idx;

    fn int(n: i128) -> Rational {
        Rational::from_int(n)
    }

    /// A chain src -> A -> snk at `rate` Hz where A has response time `rho`,
    /// with unsized buffers (capacity 0) on both hops.
    fn chain_model(rate: i128, rho: Rational) -> CtaModel {
        let rate = int(rate);
        let period = rate.recip();
        let mut m = CtaModel::new();
        let src = m.add_component("src", None);
        let a = m.add_component("A", None);
        let snk = m.add_component("snk", None);
        let s_out = m.add_required_rate_port(src, "out", rate);
        let a_in = m.add_port(a, "in", None);
        let a_out = m.add_port(a, "out", None);
        let k_in = m.add_required_rate_port(snk, "in", rate);
        // Data connections.
        m.connect(s_out, a_in, period, Rational::ZERO, Rational::ONE);
        m.connect(a_in, a_out, rho, Rational::ZERO, Rational::ONE);
        m.connect(a_out, k_in, Rational::ZERO, Rational::ZERO, Rational::ONE);
        // Space (buffer) connections, initially with zero capacity. Space for
        // bx is released when A finishes processing (a_out), space for by when
        // the sink has consumed (one sink period after the value arrived).
        m.connect_buffer(
            "bx",
            a_out,
            s_out,
            Rational::ZERO,
            Rational::ZERO,
            Rational::ONE,
        );
        m.connect_buffer("by", k_in, a_out, period, Rational::ZERO, Rational::ONE);
        m
    }

    /// 0.2 ms as an exact rational (seconds).
    fn rho() -> Rational {
        Rational::new(1, 5000)
    }

    #[test]
    fn sizing_produces_sufficient_capacities() {
        let m = chain_model(1000, rho());
        assert!(
            m.check_consistency().is_err(),
            "zero capacity must be insufficient"
        );
        let result = size_buffers(&m).unwrap();
        assert!(result.capacities["bx"] >= 1);
        assert!(result.capacities["by"] >= 1);
        // Applying the capacities makes the model consistent.
        let mut sized = m.clone();
        apply_capacities(&mut sized, &result.capacities);
        assert!(sized.check_consistency().is_ok());
    }

    #[test]
    fn sizing_is_idempotent_once_sufficient() {
        let m = chain_model(1000, rho());
        let first = size_buffers(&m).unwrap();
        let mut sized = m.clone();
        apply_capacities(&mut sized, &first.capacities);
        let second = size_buffers(&sized).unwrap();
        assert_eq!(second.iterations, 0);
        assert_eq!(first.capacities, second.capacities);
    }

    #[test]
    fn sizing_is_deterministic() {
        // Exact arithmetic: repeated runs produce identical results, bit for
        // bit, including the validated rates.
        let m = chain_model(44_100, Rational::new(1, 88_200));
        let first = size_buffers(&m).unwrap();
        for _ in 0..5 {
            assert_eq!(size_buffers(&m).unwrap(), first);
        }
    }

    #[test]
    fn higher_rates_need_larger_buffers() {
        let slow = size_buffers(&chain_model(100, rho())).unwrap();
        let fast = size_buffers(&chain_model(10_000, rho())).unwrap();
        assert!(fast.total_tokens() >= slow.total_tokens());
    }

    #[test]
    fn longer_response_times_need_larger_buffers() {
        let short = size_buffers(&chain_model(1000, Rational::new(1, 10_000))).unwrap();
        let long = size_buffers(&chain_model(1000, Rational::new(1, 200))).unwrap();
        assert!(long.total_tokens() > short.total_tokens());
    }

    #[test]
    fn unfixable_cycle_without_buffers_reported() {
        // A positive cycle made only of plain connections cannot be fixed by
        // buffer sizing.
        let mut m = CtaModel::new();
        let a = m.add_component("a", None);
        let p = m.add_required_rate_port(a, "p", int(1000));
        let q = m.add_port(a, "q", None);
        let ms = Rational::new(1, 1000);
        m.connect(p, q, ms, Rational::ZERO, Rational::ONE);
        m.connect(q, p, ms, Rational::ZERO, Rational::ONE);
        assert!(matches!(
            size_buffers(&m),
            Err(BufferSizingError::Unfixable(_))
        ));
    }

    #[test]
    fn latency_constraint_bounds_capacity_growth_feasible_case() {
        // src -> A -> snk with a latency constraint that is satisfiable:
        // sizing succeeds and the model with the latency back-edge stays
        // consistent.
        let mut m = chain_model(1000, rho());
        let src_out = PortId::new(0);
        let snk_in = PortId::new(3);
        // start snk 5 ms before ... (i.e. end-to-end latency <= 5 ms).
        m.connect(
            snk_in,
            src_out,
            Rational::new(-5, 1000),
            Rational::ZERO,
            Rational::ONE,
        );
        let result = size_buffers(&m).unwrap();
        let mut sized = m.clone();
        apply_capacities(&mut sized, &result.capacities);
        assert!(sized.check_consistency().is_ok());
    }

    #[test]
    fn infeasible_latency_constraint_is_unfixable() {
        // End-to-end latency can never be below the processing delay of A.
        let mut m = chain_model(1000, Rational::new(1, 500));
        let src_out = PortId::new(0);
        let snk_in = PortId::new(3);
        m.connect(
            snk_in,
            src_out,
            Rational::new(-1, 1000),
            Rational::ZERO,
            Rational::ONE,
        );
        assert!(matches!(
            size_buffers(&m),
            Err(BufferSizingError::Unfixable(_))
        ));
    }

    #[test]
    fn existing_capacities_are_lower_bounds() {
        let mut m = chain_model(1000, rho());
        // Pre-size bx generously.
        for c in &mut m.connections {
            if c.buffer.as_deref() == Some("bx") {
                c.phi = int(-64);
            }
        }
        let result = size_buffers(&m).unwrap();
        assert!(result.capacities["bx"] >= 64);
    }

    #[test]
    fn total_tokens_sums_capacities() {
        let mut caps = BTreeMap::new();
        caps.insert("a".to_string(), 3u64);
        caps.insert("b".to_string(), 5u64);
        let r = BufferSizingResult {
            capacities: caps,
            iterations: 1,
            rates: IndexVec::new(),
        };
        assert_eq!(r.total_tokens(), 8);
    }
}
