//! Periodic event sequences.
//!
//! In the CTA model constraints are expressed with strictly periodic event
//! sequences (paper Section V-A): a sequence is characterised by an **offset**
//! (the time of its first event) and a **period** (the distance between
//! events); the cumulative number of tokens transferred by a port is bounded
//! by such a sequence. This module provides the small amount of arithmetic on
//! periodic sequences that the analyses and the simulator validation need.

use serde::{Deserialize, Serialize};

/// A strictly periodic event sequence: events at `offset + k / rate` for
/// `k = 0, 1, 2, …`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodicSequence {
    /// Time of the first event, in seconds.
    pub offset: f64,
    /// Rate in events per second.
    pub rate: f64,
}

impl PeriodicSequence {
    /// Create a sequence with the given offset and rate.
    pub fn new(offset: f64, rate: f64) -> Self {
        assert!(rate > 0.0, "periodic sequences need a positive rate");
        PeriodicSequence { offset, rate }
    }

    /// The period `1 / rate` in seconds.
    pub fn period(&self) -> f64 {
        1.0 / self.rate
    }

    /// Time of event number `k` (0-based).
    pub fn event_time(&self, k: u64) -> f64 {
        self.offset + k as f64 / self.rate
    }

    /// Number of events that occurred strictly before time `t`.
    pub fn events_before(&self, t: f64) -> u64 {
        if t <= self.offset {
            0
        } else {
            (((t - self.offset) * self.rate).ceil() as i64).max(0) as u64
        }
    }

    /// The sequence delayed by `delta` seconds.
    pub fn delayed(&self, delta: f64) -> Self {
        PeriodicSequence { offset: self.offset + delta, rate: self.rate }
    }

    /// The sequence with its rate scaled by `gamma` (a CTA connection's
    /// transfer-rate ratio).
    pub fn scaled(&self, gamma: f64) -> Self {
        assert!(gamma > 0.0, "rate scale must be positive");
        PeriodicSequence { offset: self.offset, rate: self.rate * gamma }
    }

    /// True if this sequence conservatively bounds `other`: it never promises
    /// an event earlier than `other` delivers one, i.e. every event `k` of
    /// `self` is no earlier than event `k` of `other` requires... concretely
    /// `self` is a valid *lower* bound on availability when
    /// `self.rate <= other.rate + tol` and `self.offset >= other.offset - tol`.
    pub fn bounds(&self, other: &PeriodicSequence, tol: f64) -> bool {
        self.rate <= other.rate + tol && self.offset + tol >= other.offset
    }

    /// Check that a measured trace of event timestamps (seconds, ascending)
    /// is conservatively covered by this sequence: event `k` must occur no
    /// later than `offset + k/rate + jitter`.
    pub fn covers_trace(&self, trace: &[f64], jitter: f64) -> bool {
        trace.iter().enumerate().all(|(k, &t)| t <= self.event_time(k as u64) + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_times_and_period() {
        let s = PeriodicSequence::new(0.5e-3, 1000.0);
        assert!((s.period() - 1e-3).abs() < 1e-15);
        assert!((s.event_time(0) - 0.5e-3).abs() < 1e-15);
        assert!((s.event_time(3) - 3.5e-3).abs() < 1e-15);
    }

    #[test]
    fn events_before_counts() {
        let s = PeriodicSequence::new(0.0, 1000.0);
        assert_eq!(s.events_before(0.0), 0);
        assert_eq!(s.events_before(0.5e-3), 1);
        assert_eq!(s.events_before(1.0e-3), 1);
        assert_eq!(s.events_before(2.5e-3), 3);
        assert_eq!(s.events_before(-1.0), 0);
    }

    #[test]
    fn delayed_and_scaled() {
        let s = PeriodicSequence::new(1e-3, 4e6);
        let d = s.delayed(2e-3);
        assert!((d.offset - 3e-3).abs() < 1e-15);
        assert_eq!(d.rate, s.rate);
        let sc = s.scaled(10.0 / 16.0);
        assert!((sc.rate - 2.5e6).abs() < 1e-9);
    }

    #[test]
    fn bounds_relation() {
        let promise = PeriodicSequence::new(1e-3, 900.0);
        let actual = PeriodicSequence::new(0.5e-3, 1000.0);
        // The promise is conservative w.r.t. the actual behaviour.
        assert!(promise.bounds(&actual, 1e-12));
        assert!(!actual.bounds(&promise, 1e-12));
    }

    #[test]
    fn covers_trace_with_jitter() {
        let s = PeriodicSequence::new(0.0, 1000.0);
        let trace: Vec<f64> = (0..10).map(|k| k as f64 * 1e-3 + 0.2e-3).collect();
        assert!(!s.covers_trace(&trace, 0.0));
        assert!(s.covers_trace(&trace, 0.25e-3));
    }

    #[test]
    #[should_panic(expected = "positive rate")]
    fn zero_rate_panics() {
        let _ = PeriodicSequence::new(0.0, 0.0);
    }
}
