//! Periodic event sequences.
//!
//! In the CTA model constraints are expressed with strictly periodic event
//! sequences (paper Section V-A): a sequence is characterised by an **offset**
//! (the time of its first event) and a **period** (the distance between
//! events); the cumulative number of tokens transferred by a port is bounded
//! by such a sequence. This module provides the small amount of arithmetic on
//! periodic sequences that the analyses and the simulator validation need —
//! in exact rational time, so event counts and bound checks never depend on a
//! floating-point tolerance.

use oil_dataflow::Rational;
use serde::{Deserialize, Serialize};

/// A strictly periodic event sequence: events at `offset + k / rate` for
/// `k = 0, 1, 2, …`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeriodicSequence {
    /// Time of the first event, in seconds.
    pub offset: Rational,
    /// Rate in events per second.
    pub rate: Rational,
}

impl PeriodicSequence {
    /// Create a sequence with the given offset and rate.
    ///
    /// # Panics
    /// Panics unless `rate` is positive.
    pub fn new(offset: Rational, rate: Rational) -> Self {
        assert!(
            rate.is_positive(),
            "periodic sequences need a positive rate"
        );
        PeriodicSequence { offset, rate }
    }

    /// The period `1 / rate` in seconds.
    pub fn period(&self) -> Rational {
        self.rate.recip()
    }

    /// Time of event number `k` (0-based). Exact.
    pub fn event_time(&self, k: u64) -> Rational {
        self.offset + Rational::from_int(k as i128) / self.rate
    }

    /// Number of events that occurred strictly before time `t`.
    pub fn events_before(&self, t: Rational) -> u64 {
        if t <= self.offset {
            0
        } else {
            ((t - self.offset) * self.rate).ceil().max(0) as u64
        }
    }

    /// The sequence delayed by `delta` seconds.
    pub fn delayed(&self, delta: Rational) -> Self {
        PeriodicSequence {
            offset: self.offset + delta,
            rate: self.rate,
        }
    }

    /// The sequence with its rate scaled by `gamma` (a CTA connection's
    /// transfer-rate ratio).
    ///
    /// # Panics
    /// Panics unless `gamma` is positive.
    pub fn scaled(&self, gamma: Rational) -> Self {
        assert!(gamma.is_positive(), "rate scale must be positive");
        PeriodicSequence {
            offset: self.offset,
            rate: self.rate * gamma,
        }
    }

    /// True if this sequence conservatively bounds `other`: it never promises
    /// an event earlier than `other` delivers one, i.e. `self` is a valid
    /// *lower* bound on availability when `self.rate <= other.rate` and
    /// `self.offset >= other.offset`. Exact — no tolerance parameter.
    pub fn bounds(&self, other: &PeriodicSequence) -> bool {
        self.rate <= other.rate && self.offset >= other.offset
    }

    /// Check that a measured trace of event timestamps (seconds, ascending)
    /// is conservatively covered by this sequence: event `k` must occur no
    /// later than `offset + k/rate + jitter`.
    pub fn covers_trace(&self, trace: &[Rational], jitter: Rational) -> bool {
        trace
            .iter()
            .enumerate()
            .all(|(k, &t)| t <= self.event_time(k as u64) + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: i128) -> Rational {
        Rational::new(n, 1000)
    }

    #[test]
    fn event_times_and_period() {
        let s = PeriodicSequence::new(Rational::new(1, 2000), Rational::from_int(1000));
        assert_eq!(s.period(), ms(1));
        assert_eq!(s.event_time(0), Rational::new(1, 2000));
        assert_eq!(s.event_time(3), Rational::new(7, 2000));
    }

    #[test]
    fn events_before_counts() {
        let s = PeriodicSequence::new(Rational::ZERO, Rational::from_int(1000));
        assert_eq!(s.events_before(Rational::ZERO), 0);
        assert_eq!(s.events_before(Rational::new(1, 2000)), 1);
        assert_eq!(s.events_before(ms(1)), 1);
        assert_eq!(s.events_before(Rational::new(5, 2000)), 3);
        assert_eq!(s.events_before(Rational::from_int(-1)), 0);
    }

    #[test]
    fn delayed_and_scaled() {
        let s = PeriodicSequence::new(ms(1), Rational::from_int(4_000_000));
        let d = s.delayed(ms(2));
        assert_eq!(d.offset, ms(3));
        assert_eq!(d.rate, s.rate);
        let sc = s.scaled(Rational::new(10, 16));
        assert_eq!(sc.rate, Rational::from_int(2_500_000));
    }

    #[test]
    fn bounds_relation() {
        let promise = PeriodicSequence::new(ms(1), Rational::from_int(900));
        let actual = PeriodicSequence::new(Rational::new(1, 2000), Rational::from_int(1000));
        // The promise is conservative w.r.t. the actual behaviour.
        assert!(promise.bounds(&actual));
        assert!(!actual.bounds(&promise));
        // Exact boundary: a sequence bounds itself.
        assert!(promise.bounds(&promise));
    }

    #[test]
    fn covers_trace_with_jitter() {
        let s = PeriodicSequence::new(Rational::ZERO, Rational::from_int(1000));
        let trace: Vec<Rational> = (0..10).map(|k| ms(k) + Rational::new(1, 5000)).collect();
        assert!(!s.covers_trace(&trace, Rational::ZERO));
        assert!(s.covers_trace(&trace, Rational::new(1, 4000)));
        // Events exactly on the bound are covered: exact comparison.
        let exact: Vec<Rational> = (0..10).map(ms).collect();
        assert!(s.covers_trace(&exact, Rational::ZERO));
    }

    #[test]
    #[should_panic(expected = "positive rate")]
    fn zero_rate_panics() {
        let _ = PeriodicSequence::new(Rational::ZERO, Rational::ZERO);
    }
}
