//! CTA components, ports and connections.
//!
//! A CTA component is `w = (P, r̂, C, γ, ε, φ)` (paper Section V-A): a set of
//! ports `P`, a maximum transfer rate `r̂(p)` per port, connections `C ⊆ P×P`,
//! and per connection a transfer-rate ratio `γ`, a constant delay `ε` and a
//! rate-dependent delay `φ`. The time a connection `c = (p, q)` delays data is
//! `Δ(c) = ε(c) + φ(c) / r(p)`.
//!
//! All quantities are **exact rationals** ([`Rational`]): rates in events per
//! second, delays in seconds, `φ` in events. The analyses in this crate
//! therefore contain no floating-point tolerance constants; `f64` appears
//! only in human-readable output ([`CtaModel::describe`]) and in the
//! `*_hz`/`*_seconds` convenience accessors of the result types.
//!
//! This module stores a whole *model* (a composition of components) in one
//! flat arena — components only group ports and record nesting, which mirrors
//! how the paper nests while-loop components inside module components
//! (Fig. 9) — and provides the builder API shared by all analyses. Ports,
//! components and connections are addressed by typed indices ([`PortId`],
//! [`ComponentId`], [`ConnectionId`]), so a port id can never be mistaken for
//! a connection id by the compiler.

use oil_dataflow::define_index_type;
use oil_dataflow::index::{Idx, IndexVec, PortId};
use oil_dataflow::Rational;
use serde::{Deserialize, Serialize};

define_index_type! {
    /// A component of a [`CtaModel`].
    pub struct ComponentId = "w";
}

define_index_type! {
    /// A connection of a [`CtaModel`].
    pub struct ConnectionId = "c";
}

/// A port of a CTA component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Port {
    /// Port name, unique within its component.
    pub name: String,
    /// The component this port belongs to.
    pub component: ComponentId,
    /// Maximum transfer rate `r̂(p)` in events per second; `None` for ports
    /// that impose no bound (e.g. the modelling artifact ports of module
    /// components).
    pub max_rate: Option<Rational>,
    /// A rate required exactly at this port (sources and sinks execute
    /// time-triggered at a fixed frequency). `None` for ports whose rate is
    /// determined by the rest of the model.
    pub required_rate: Option<Rational>,
}

/// A directed connection between two ports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Connection {
    /// Source port `p`.
    pub from: PortId,
    /// Destination port `q`.
    pub to: PortId,
    /// Constant delay `ε(c)` in seconds (may be negative, e.g. for latency
    /// constraints).
    pub epsilon: Rational,
    /// Rate-dependent delay `φ(c)` in events; contributes `φ / r(p)` seconds
    /// (negative values model buffer capacities: `-δ / r`).
    pub phi: Rational,
    /// Transfer rate ratio `γ(c)`: `r(q) = γ · r(p)`.
    pub gamma: Rational,
    /// If this connection models the capacity of a buffer, the buffer's name;
    /// buffer sizing adjusts `phi` on such connections.
    pub buffer: Option<String>,
    /// Whether the connection couples the rates of its endpoints through
    /// `gamma` (true for ordinary data/space connections). Latency-constraint
    /// connections between sources and sinks running at unrelated rates set
    /// this to false: they only constrain start times.
    pub couples_rates: bool,
}

impl Connection {
    /// The delay of this connection at source-port rate `rate` (events/s):
    /// `Δ(c) = ε + φ / r(p)`. Exact.
    ///
    /// # Panics
    /// Panics if `phi` is non-zero and `rate` is not positive.
    pub fn delay_at_rate(&self, rate: Rational) -> Rational {
        if self.phi.is_zero() {
            self.epsilon
        } else {
            assert!(
                rate.is_positive(),
                "rate-dependent delay needs a positive rate"
            );
            self.epsilon + self.phi / rate
        }
    }

    /// The buffer capacity `δ` this connection models (`phi = -δ`), if any.
    pub fn capacity(&self) -> Option<Rational> {
        self.buffer.as_ref().map(|_| -self.phi)
    }
}

/// A CTA component: a named group of ports, optionally nested inside a parent
/// component (while-loop components nest inside module components).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Component name (module, while-loop, task, source or sink name).
    pub name: String,
    /// Enclosing component, if any.
    pub parent: Option<ComponentId>,
    /// Ports belonging to this component.
    pub ports: Vec<PortId>,
}

/// A complete CTA model: a composition of components and connections.
///
/// A composition of CTA components and connections is again a CTA component
/// (paper Section V-A), so one flat model with nesting information is
/// sufficient to represent arbitrarily deep compositions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CtaModel {
    /// All components.
    pub components: IndexVec<ComponentId, Component>,
    /// All ports.
    pub ports: IndexVec<PortId, Port>,
    /// All connections.
    pub connections: IndexVec<ConnectionId, Connection>,
}

impl CtaModel {
    /// An empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a component, optionally nested inside `parent`.
    pub fn add_component(
        &mut self,
        name: impl Into<String>,
        parent: Option<ComponentId>,
    ) -> ComponentId {
        self.components.push(Component {
            name: name.into(),
            parent,
            ports: Vec::new(),
        })
    }

    /// Add a port to `component` with maximum rate `max_rate` (events/s);
    /// `None` leaves the port unbounded.
    ///
    /// # Panics
    /// Panics if `max_rate` is zero or negative.
    pub fn add_port(
        &mut self,
        component: ComponentId,
        name: impl Into<String>,
        max_rate: Option<Rational>,
    ) -> PortId {
        if let Some(r) = max_rate {
            assert!(r.is_positive(), "maximum rates must be positive");
        }
        let id = self.ports.push(Port {
            name: name.into(),
            component,
            max_rate,
            required_rate: None,
        });
        self.components[component].ports.push(id);
        id
    }

    /// Add a port whose rate is fixed by the environment (a source or sink
    /// executing time-triggered at `rate`).
    ///
    /// # Panics
    /// Panics if `rate` is zero or negative.
    pub fn add_required_rate_port(
        &mut self,
        component: ComponentId,
        name: impl Into<String>,
        rate: Rational,
    ) -> PortId {
        assert!(rate.is_positive(), "required rates must be positive");
        let id = self.add_port(component, name, Some(rate));
        self.ports[id].required_rate = Some(rate);
        id
    }

    /// Connect `from` to `to` with constant delay `epsilon` (seconds),
    /// rate-dependent delay `phi` (events) and transfer-rate ratio `gamma`.
    pub fn connect(
        &mut self,
        from: PortId,
        to: PortId,
        epsilon: Rational,
        phi: Rational,
        gamma: Rational,
    ) -> ConnectionId {
        assert!(
            from.index() < self.ports.len() && to.index() < self.ports.len(),
            "connection endpoints must exist"
        );
        assert!(gamma.is_positive(), "transfer rate ratios must be positive");
        self.connections.push(Connection {
            from,
            to,
            epsilon,
            phi,
            gamma,
            buffer: None,
            couples_rates: true,
        })
    }

    /// Connect `from` to `to` with a pure timing constraint: the connection
    /// delays data by `epsilon` seconds but does **not** couple the rates of
    /// its endpoints. Used for `start .. before/after ..` latency constraints
    /// between sources and sinks that run at unrelated rates.
    pub fn connect_constraint(
        &mut self,
        from: PortId,
        to: PortId,
        epsilon: Rational,
    ) -> ConnectionId {
        let id = self.connect(from, to, epsilon, Rational::ZERO, Rational::ONE);
        self.connections[id].couples_rates = false;
        id
    }

    /// Connect `from` to `to` with a rate-dependent delay modelling the
    /// capacity of buffer `buffer` (`phi` is `-δ`); buffer sizing may enlarge
    /// the capacity by making `phi` more negative.
    pub fn connect_buffer(
        &mut self,
        buffer: impl Into<String>,
        from: PortId,
        to: PortId,
        epsilon: Rational,
        phi: Rational,
        gamma: Rational,
    ) -> ConnectionId {
        let id = self.connect(from, to, epsilon, phi, gamma);
        self.connections[id].buffer = Some(buffer.into());
        id
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Number of connections.
    pub fn connection_count(&self) -> usize {
        self.connections.len()
    }

    /// Find a component by name.
    pub fn component_by_name(&self, name: &str) -> Option<ComponentId> {
        self.components.position(|c| c.name == name)
    }

    /// Find a port by `component` and port name.
    pub fn port_by_name(&self, component: ComponentId, name: &str) -> Option<PortId> {
        self.components[component]
            .ports
            .iter()
            .copied()
            .find(|&p| self.ports[p].name == name)
    }

    /// All connections whose source or destination belongs to `component`.
    pub fn connections_of(&self, component: ComponentId) -> Vec<ConnectionId> {
        self.connections
            .iter_enumerated()
            .filter(|(_, c)| {
                self.ports[c.from].component == component || self.ports[c.to].component == component
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// All connections that model buffer capacities, grouped by buffer name.
    pub fn buffer_connections(&self) -> Vec<(String, ConnectionId)> {
        self.connections
            .iter_enumerated()
            .filter_map(|(i, c)| c.buffer.clone().map(|b| (b, i)))
            .collect()
    }

    /// Merge `other` into `self`, returning the offsets by which `other`'s
    /// component, port and connection ids were shifted. This is the
    /// *composition* operation of the CTA model: composing two models yields
    /// another model, and analyses run unchanged on the result.
    pub fn merge(&mut self, other: &CtaModel) -> MergeOffsets {
        let offsets = MergeOffsets {
            components: self.components.len(),
            ports: self.ports.len(),
            connections: self.connections.len(),
        };
        for c in &other.components {
            self.components.push(Component {
                name: c.name.clone(),
                parent: c.parent.map(|p| offsets.component(p)),
                ports: c.ports.iter().map(|&p| offsets.port(p)).collect(),
            });
        }
        for p in &other.ports {
            self.ports.push(Port {
                name: p.name.clone(),
                component: offsets.component(p.component),
                max_rate: p.max_rate,
                required_rate: p.required_rate,
            });
        }
        for c in &other.connections {
            self.connections.push(Connection {
                from: offsets.port(c.from),
                to: offsets.port(c.to),
                epsilon: c.epsilon,
                phi: c.phi,
                gamma: c.gamma,
                buffer: c.buffer.clone(),
                couples_rates: c.couples_rates,
            });
        }
        offsets
    }

    /// Children of `component` in the nesting hierarchy.
    pub fn children(&self, component: ComponentId) -> Vec<ComponentId> {
        self.components
            .iter_enumerated()
            .filter(|(_, c)| c.parent == Some(component))
            .map(|(i, _)| i)
            .collect()
    }

    /// Human-readable summary, one line per component with its port count and
    /// one line per connection — handy for reproducing the structure of the
    /// paper's Figures 7–10 and 12 in examples. The exact rationals are
    /// rendered as such; only here does nothing depend on the output.
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, c) in self.components.iter_enumerated() {
            let parent = c
                .parent
                .map(|p| format!(" (in {})", self.components[p].name))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "component {} `{}`{}: {} ports",
                i,
                c.name,
                parent,
                c.ports.len()
            );
        }
        for (i, c) in self.connections.iter_enumerated() {
            let from = &self.ports[c.from];
            let to = &self.ports[c.to];
            let buffer = c
                .buffer
                .as_deref()
                .map(|b| format!(" buffer={b}"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "connection {}: {}.{} -> {}.{} eps={} phi={} gamma={}{}",
                i,
                self.components[from.component].name,
                from.name,
                self.components[to.component].name,
                to.name,
                c.epsilon,
                c.phi,
                c.gamma,
                buffer
            );
        }
        out
    }
}

/// Offsets returned by [`CtaModel::merge`], translating the merged model's
/// ids into the composed model's id spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergeOffsets {
    /// Offset added to component ids of the merged model.
    pub components: usize,
    /// Offset added to port ids of the merged model.
    pub ports: usize,
    /// Offset added to connection ids of the merged model.
    pub connections: usize,
}

impl MergeOffsets {
    /// Translate a component id of the merged model.
    pub fn component(&self, id: ComponentId) -> ComponentId {
        ComponentId::new(id.index() + self.components)
    }

    /// Translate a port id of the merged model.
    pub fn port(&self, id: PortId) -> PortId {
        PortId::new(id.index() + self.ports)
    }

    /// Translate a connection id of the merged model.
    pub fn connection(&self, id: ConnectionId) -> ConnectionId {
        ConnectionId::new(id.index() + self.connections)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2 µs as an exact rational (seconds).
    fn rho() -> Rational {
        Rational::new(1, 500_000)
    }

    #[test]
    fn build_fig7_single_rate_component() {
        // Fig. 7c: a component with ports for bx (in), by (in), bz (out) and
        // their release counterparts; zero-delay connections between input
        // ports, rho-delay connections from inputs to the output.
        let max = Some(rho().recip());
        let mut m = CtaModel::new();
        let w = m.add_component("wf", None);
        let bx_in = m.add_port(w, "bx_in", max);
        let by_in = m.add_port(w, "by_in", max);
        let bz_out = m.add_port(w, "bz_out", max);
        m.connect(bx_in, by_in, Rational::ZERO, Rational::ZERO, Rational::ONE);
        m.connect(by_in, bx_in, Rational::ZERO, Rational::ZERO, Rational::ONE);
        m.connect(bx_in, bz_out, rho(), Rational::ZERO, Rational::ONE);
        m.connect(by_in, bz_out, rho(), Rational::ZERO, Rational::ONE);
        assert_eq!(m.component_count(), 1);
        assert_eq!(m.port_count(), 3);
        assert_eq!(m.connection_count(), 4);
        assert_eq!(m.port_by_name(w, "bz_out"), Some(bz_out));
        assert_eq!(m.connections_of(w).len(), 4);
    }

    #[test]
    fn connection_delay_at_rate_is_exact() {
        let mut m = CtaModel::new();
        let w = m.add_component("w", None);
        let a = m.add_port(w, "a", None);
        let b = m.add_port(w, "b", None);
        let c = m.connect(
            a,
            b,
            Rational::new(1, 1000),
            Rational::from_int(2),
            Rational::ONE,
        );
        // At 1 kHz: 1 ms + 2/1000 s = exactly 3 ms.
        assert_eq!(
            m.connections[c].delay_at_rate(Rational::from_int(1000)),
            Rational::new(3, 1000)
        );
        // Zero phi ignores the rate entirely (even a zero rate is fine).
        let c2 = m.connect(a, b, Rational::new(1, 200), Rational::ZERO, Rational::ONE);
        assert_eq!(
            m.connections[c2].delay_at_rate(Rational::ZERO),
            Rational::new(1, 200)
        );
    }

    #[test]
    fn buffer_connections_and_capacity() {
        let mut m = CtaModel::new();
        let w = m.add_component("w", None);
        let a = m.add_port(w, "a", Some(Rational::from_int(100)));
        let b = m.add_port(w, "b", Some(Rational::from_int(100)));
        m.connect(a, b, Rational::ZERO, Rational::ONE, Rational::ONE);
        let cid = m.connect_buffer(
            "bx",
            b,
            a,
            Rational::ZERO,
            Rational::from_int(-8),
            Rational::ONE,
        );
        assert_eq!(m.buffer_connections(), vec![("bx".to_string(), cid)]);
        assert_eq!(m.connections[cid].capacity(), Some(Rational::from_int(8)));
        assert_eq!(m.connections[ConnectionId::new(0)].capacity(), None);
    }

    #[test]
    fn merge_offsets_are_applied() {
        let mut a = CtaModel::new();
        let ca = a.add_component("a", None);
        let p0 = a.add_port(ca, "x", Some(Rational::from_int(10)));
        let p1 = a.add_port(ca, "y", Some(Rational::from_int(10)));
        a.connect(p0, p1, Rational::ZERO, Rational::ZERO, Rational::ONE);

        let mut b = CtaModel::new();
        let cb = b.add_component("b", None);
        let q0 = b.add_port(cb, "u", Some(Rational::from_int(20)));
        let q1 = b.add_port(cb, "v", Some(Rational::from_int(20)));
        b.connect(q0, q1, Rational::ONE, Rational::ZERO, Rational::ONE);

        let off = a.merge(&b);
        assert_eq!(off.components, 1);
        assert_eq!(off.ports, 2);
        assert_eq!(off.connections, 1);
        assert_eq!(a.component_count(), 2);
        assert_eq!(a.port_count(), 4);
        assert_eq!(a.connections[ConnectionId::new(1)].from, off.port(q0));
        assert_eq!(a.ports[off.port(q0)].component, off.component(cb));
    }

    #[test]
    fn nesting_and_children() {
        let mut m = CtaModel::new();
        let wa = m.add_component("wA", None);
        let wp0 = m.add_component("wp0", Some(wa));
        let wp1 = m.add_component("wp1", Some(wa));
        let wf = m.add_component("wf", Some(wp0));
        assert_eq!(m.children(wa), vec![wp0, wp1]);
        assert_eq!(m.children(wp0), vec![wf]);
        assert!(m.children(wf).is_empty());
        assert_eq!(m.component_by_name("wp1"), Some(wp1));
    }

    #[test]
    fn required_rate_ports() {
        let mut m = CtaModel::new();
        let src = m.add_component("src", None);
        let p = m.add_required_rate_port(src, "out", Rational::from_int(1000));
        assert_eq!(m.ports[p].required_rate, Some(Rational::from_int(1000)));
        assert_eq!(m.ports[p].max_rate, Some(Rational::from_int(1000)));
    }

    #[test]
    fn describe_mentions_components_and_buffers() {
        let mut m = CtaModel::new();
        let w = m.add_component("wSplitter", None);
        let a = m.add_port(w, "in", Some(Rational::from_int(6_400_000)));
        let b = m.add_port(w, "out", Some(Rational::from_int(4_000_000)));
        m.connect_buffer(
            "vid",
            a,
            b,
            Rational::ZERO,
            Rational::from_int(-16),
            Rational::new(10, 16),
        );
        let d = m.describe();
        assert!(d.contains("wSplitter"));
        assert!(d.contains("buffer=vid"));
        assert!(d.contains("5/8"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_gamma_panics() {
        let mut m = CtaModel::new();
        let w = m.add_component("w", None);
        let a = m.add_port(w, "a", Some(Rational::ONE));
        let b = m.add_port(w, "b", Some(Rational::ONE));
        m.connect(a, b, Rational::ZERO, Rational::ZERO, Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "maximum rates must be positive")]
    fn non_positive_max_rate_panics() {
        let mut m = CtaModel::new();
        let w = m.add_component("w", None);
        m.add_port(w, "a", Some(Rational::ZERO));
    }
}
